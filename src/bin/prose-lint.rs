//! `prose-lint` — static numerical-hazard lints for Fortran files.
//!
//! ```text
//! prose-lint <file.f90> [--format text|json] [--map single|declared] [--ranges]
//! ```
//!
//! Runs the [`prose::analysis::lint`] suite (float equality, absorption-prone
//! accumulators, implicit narrowing, catastrophic-cancellation candidates,
//! uninitialized FP use) and prints one finding per line, each anchored at a
//! `proc:line` site — the same site keys the dynamic shadow guardrails
//! record, so `prose-report --lints` can show static and dynamic hazards
//! side by side.
//!
//! `--map` picks the candidate precision assignment the narrowing lints are
//! evaluated under: `single` (default) lowers every non-parameter FP
//! variable outside the main program to 32-bit — the same variables the
//! tuner treats as search atoms — so the narrowing hazards a maximal
//! lowering would introduce are all visible; `declared` keeps the source
//! declarations and reports only hazards already present.
//!
//! `--ranges` first runs the abstract interpreter over the program under
//! the chosen map and feeds the inferred per-variable value ranges to the
//! lint suite: absorption and cancellation findings are then *certified*
//! (message cites the static ranges) or refuted (structural suspicion
//! dropped), and stores whose range provably exceeds `f32::MAX` gain an
//! `OverflowToInf` finding. If the analysis fails or exhausts its budget
//! the suite falls back to the structural heuristics unchanged.

use prose::analysis::{run_lints_with_ranges, Lint, RangeMap};
use prose::fortran::ast::FpPrecision;
use prose::fortran::sema::ScopeKind;
use prose::fortran::PrecisionMap;
use std::process::ExitCode;

struct Args {
    file: String,
    format: String,
    map: String,
    ranges: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: prose-lint <file.f90> [--format text|json] [--map single|declared] [--ranges]\n\
         options: --format text (default; one `proc:line kind message` per finding)\n\
         or json (machine-readable {{file, map, lints}} document),\n\
         --map single (default; every tunable variable lowered to 32-bit, the\n\
         narrowing hazards of a maximal lowering) or declared (source precisions),\n\
         --ranges (run the abstract interpreter first and drive the absorption,\n\
         cancellation, and overflow lints from the inferred value ranges)"
    );
    std::process::exit(2)
}

fn parse_args() -> Option<Args> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut format = "text".to_string();
    let mut map = "single".to_string();
    let mut ranges = false;
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        let mut next = || -> Option<String> {
            i += 1;
            argv.get(i).cloned()
        };
        match a.as_str() {
            "--format" => {
                format = next()?;
                if format != "text" && format != "json" {
                    return None;
                }
            }
            "--map" => {
                map = next()?;
                if map != "single" && map != "declared" {
                    return None;
                }
            }
            "--ranges" => ranges = true,
            _ if file.is_none() && !a.starts_with("--") => file = Some(a.clone()),
            _ => return None,
        }
        i += 1;
    }
    Some(Args {
        file: file?,
        format,
        map,
        ranges,
    })
}

#[derive(serde::Serialize)]
struct LintDoc {
    file: String,
    map: String,
    /// True when the findings were range-driven (`--ranges`).
    ranges: bool,
    lints: Vec<Lint>,
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else { usage() };
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match prose::fortran::parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: parsing {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let index = match prose::fortran::sema::analyze(&program) {
        Ok(ix) => ix,
        Err(e) => {
            eprintln!("error: analyzing {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    let map = match args.map.as_str() {
        "declared" => PrecisionMap::declared(&index),
        _ => {
            // The tuner's lowering targets: every non-parameter FP variable
            // outside the main program driver.
            let lowered: Vec<_> = index
                .fp_variables()
                .filter(|v| !v.is_parameter && index.scope_info(v.scope).kind != ScopeKind::Main)
                .map(|v| v.id)
                .collect();
            PrecisionMap::uniform(&index, &lowered, FpPrecision::Single)
        }
    };

    // --ranges: infer per-variable value ranges with the abstract
    // interpreter under the same precision map and let the lint suite
    // certify or refute its structural suspicions. Any analysis failure
    // degrades to the empty range map — the structural heuristics.
    let mut ranges = RangeMap::default();
    if args.ranges {
        let inline = prose::interp::CostParams::default().inline_max_stmts;
        match prose::interp::analyze_variant(
            &program,
            &index,
            &map,
            inline,
            prose::interp::DEFAULT_MAX_STEPS,
        ) {
            Ok(rep) => {
                if rep.incomplete {
                    eprintln!(
                        "warning: range analysis incomplete after {} abstract steps; \
                         untouched variables fall back to structural heuristics",
                        rep.steps
                    );
                }
                ranges = rep.range_map();
            }
            Err(e) => eprintln!("warning: range analysis failed ({e}); running without ranges"),
        }
    }

    let lints = run_lints_with_ranges(&program, &index, &map, &ranges);
    if args.format == "json" {
        let doc = LintDoc {
            file: args.file.clone(),
            map: args.map.clone(),
            ranges: args.ranges,
            lints,
        };
        println!("{}", serde_json::to_string(&doc).expect("serialize"));
    } else {
        for l in &lints {
            let var = l
                .variable
                .as_deref()
                .map(|v| format!(" [{v}]"))
                .unwrap_or_default();
            println!("{}: {:?}{var}: {}", l.site, l.kind, l.message);
        }
        println!(
            "{}: {} finding(s) under the `{}` precision map{}",
            args.file,
            lints.len(),
            args.map,
            if args.ranges {
                format!(" ({} statically ranged variable(s))", ranges.len())
            } else {
                String::new()
            }
        );
    }
    ExitCode::SUCCESS
}
