//! `prose-served` — crash-safe tuning-as-a-service daemon.
//!
//! ```text
//! prose-served --port 8080 --jobs-dir jobs \
//!     [--queue-cap 64] [--runners 1] [--drain-ms 2000]
//! ```
//!
//! HTTP surface (JSON in, JSON out, `Connection: close`):
//!
//! * `POST /jobs` — submit `{"program": "<fortran>", "spec": {...}}`;
//!   201 with the content-addressed job id, or 200 when the identical
//!   content was already submitted (idempotent), or 429 when the pending
//!   queue is full.
//! * `GET /jobs` — id + state of every persisted job.
//! * `GET /jobs/<id>` — state, detail, and (when done) the result.
//! * `GET /jobs/<id>/events` — server-sent events tailing the job's
//!   trial journal live, closing with a terminal `state` event.
//! * `POST /jobs/<id>/cancel` — cancel a queued or running job.
//! * `GET /healthz` — queue depth, counters, drain status.
//!
//! The daemon acknowledges a submission only after it is durably
//! persisted, recovers every non-terminal job on restart with zero
//! duplicate interpreter evaluations, and drains gracefully on
//! SIGINT/SIGTERM (in-flight jobs get `--drain-ms` to finish, then are
//! checkpointed back to `queued`). The bound address is written to
//! `<jobs-dir>/served.addr` for scripts that bind port 0.

use prose::serve::{signals, ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: prose-served [--port P] [--host H] [--jobs-dir DIR]\n\
         options: --port P (default 8080; 0 = ephemeral, see <jobs-dir>/served.addr),\n\
         --host H (default 127.0.0.1), --jobs-dir DIR (default jobs),\n\
         --queue-cap N (pending-queue bound; default 64; full queue => HTTP 429),\n\
         --runners N (concurrent job runners; default 1),\n\
         --drain-ms MS (SIGTERM drain window before in-flight jobs are\n\
         checkpointed back to queued; default 2000)"
    );
    std::process::exit(2)
}

fn parse_config() -> Option<ServeConfig> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut host = "127.0.0.1".to_string();
    let mut port = 8080u16;
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        let mut next = || -> Option<String> {
            i += 1;
            argv.get(i).cloned()
        };
        match a.as_str() {
            "--port" => port = next()?.parse().ok()?,
            "--host" => host = next()?,
            "--jobs-dir" => config.jobs_dir = next()?.into(),
            "--queue-cap" => {
                config.queue_cap = next()?.parse::<usize>().ok().filter(|&n| n >= 1)?
            }
            "--runners" => config.runners = next()?.parse::<usize>().ok().filter(|&n| n >= 1)?,
            "--drain-ms" => config.drain_ms = next()?.parse().ok()?,
            _ => return None,
        }
        i += 1;
    }
    config.addr = format!("{host}:{port}").parse().ok()?;
    Some(config)
}

fn main() -> ExitCode {
    let Some(config) = parse_config() else {
        usage()
    };
    signals::install();
    let jobs_dir = config.jobs_dir.clone();
    let server = match Server::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: starting daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: resolving bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts binding port 0 discover the real port here; written
    // atomically so a concurrent reader never sees a torn address.
    let addr_tmp = jobs_dir.join("served.addr.tmp");
    if std::fs::write(&addr_tmp, addr.to_string())
        .and_then(|()| std::fs::rename(&addr_tmp, jobs_dir.join("served.addr")))
        .is_err()
    {
        eprintln!(
            "warning: could not write {}/served.addr",
            jobs_dir.display()
        );
    }
    let rec = server.recovery();
    eprintln!(
        "[prose-served] listening on {addr}; jobs dir {}; recovered {} job(s) ({} finished, {} damaged line(s) quarantined, {} tmp discarded)",
        jobs_dir.display(),
        rec.resumed.len(),
        rec.finished,
        rec.quarantined,
        rec.discarded_tmp
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serving: {e}");
            ExitCode::FAILURE
        }
    }
}
