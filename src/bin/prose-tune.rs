//! `prose-tune` — command-line precision tuning for Fortran files.
//!
//! ```text
//! prose-tune model.f90 --procs heat_step,flux \
//!     --metric maxspace:t:0.01 --threshold 1e-5 \
//!     [--scope hotspot|whole] [--n-runs 1] [--noise 0.0] [--seed 42]
//!     [--budget 400] [--exclude result] [--emit-best best.f90]
//!     [--strategy dd|brute|random] [--samples 100]
//!     [--granularity variable|grouped]
//!     [--journal trials.jsonl] [--resume]
//!     [--variant-path fast|faithful] [--crosscheck K] [--strict]
//!     [--faults nan=P,timeout=P,abort=P,jitter=RSD,seed=S[,kill-after=K]]
//!     [--retry-band B] [--retry-runs N] [--wal-flush record|sync|N]
//!     [--shadow] [--shadow-budget X] [--validate-ensemble N] [--ensemble-seed S]
//!     [--workers N] [--deadline-ms MS] [--retry-attempts K]
//!     [--absint] [--certify cert.json]
//! ```
//!
//! The program must record its correctness quantities with
//! `call prose_record('<key>', x)` (scalar series) or
//! `call prose_record_array('<key>', a)` (field snapshots); pick the
//! matching `--metric`:
//!
//! * `scalar:<key>` — relative error per sample, L2 over the series;
//! * `field:<key>` — relative error per element of the last snapshot, L2;
//! * `maxspace:<key>[:floor]` — max relative error over elements per
//!   snapshot (denominators floored at `floor` × the snapshot max), L2
//!   over snapshots.

use prose::core::ensemble::{validate_ensemble, EnsembleParams};
use prose::core::metrics::CorrectnessMetric;
use prose::core::tuner::{
    config_to_map, tune, tune_brute_force, ModelSpec, PerfScope, SearchGranularity, VariantPath,
};
use std::process::ExitCode;

struct Args {
    file: String,
    procs: Vec<String>,
    metric: CorrectnessMetric,
    threshold: f64,
    scope: PerfScope,
    n_runs: usize,
    noise: f64,
    seed: u64,
    budget: Option<usize>,
    exclude: Vec<String>,
    emit_best: Option<String>,
    strategy: String,
    samples: usize,
    granularity: SearchGranularity,
    journal: Option<String>,
    variant_path: VariantPath,
    crosscheck: usize,
    resume: bool,
    strict: bool,
    faults: Option<prose::faults::FaultConfig>,
    retry_band: f64,
    retry_runs: usize,
    wal_flush: prose::trace::FlushPolicy,
    shadow: bool,
    shadow_budget: Option<f64>,
    ensemble_members: Option<u32>,
    ensemble_seed: u64,
    workers: usize,
    deadline_ms: Option<u64>,
    retry_attempts: u32,
    absint: bool,
    certify: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: prose-tune <file.f90> --procs p1,p2 --metric scalar:<key>|field:<key>|maxspace:<key>[:floor] --threshold X\n\
         options: --scope hotspot|whole (default hotspot), --n-runs N (1), --noise RSD (0),\n\
         --seed S (42), --budget K, --exclude v1,v2, --emit-best out.f90,\n\
         --strategy dd|brute|random (dd), --samples N (random strategy, default 100),\n\
         --granularity variable|grouped (dd strategy; grouped searches static\n\
         precision congruence classes first, then refines surviving classes),\n\
         --journal trials.jsonl (append every trial; reuse to skip re-evaluation),\n\
         --variant-path fast|faithful (fast: template-specialized IR per variant;\n\
         faithful: unparse/reparse/re-lower), --crosscheck K (fast path: re-run the\n\
         first K uncached variants faithfully and check bit-identical results; default 1),\n\
         --strict (abort on a fast/faithful crosscheck divergence instead of\n\
         downgrading to the faithful path), --resume (continue an interrupted search\n\
         from its --journal; replays journaled trials without re-running them),\n\
         --faults nan=P,timeout=P,abort=P,jitter=RSD,seed=S[,kill-after=K]\n\
         (deterministic fault injection for robustness testing),\n\
         --retry-band B (re-measure speedups within B of the acceptance bar with\n\
         escalating sample counts; 0 disables), --retry-runs N (escalation cap, 25),\n\
         --wal-flush record|sync|N (journal flush policy; default record),\n\
         --shadow (run every variant with an fp64 shadow; passing trials whose\n\
         shadow error exceeds the budget or that cancel catastrophically are\n\
         demoted to fail-accuracy), --shadow-budget X (per-metric shadow-error\n\
         budget; defaults to --threshold), --validate-ensemble N (after the\n\
         search, re-validate the final configuration and its runner-ups on N\n\
         held-out input perturbations and demote input-overfit configs),\n\
         --ensemble-seed S (perturbation base seed),\n\
         --workers N (worker-pool width for batch evaluation; default\n\
         $PROSE_WORKERS or 1; results are identical at any width),\n\
         --deadline-ms MS (per-variant wall-clock deadline; kills hung or\n\
         pathologically slow runs as failed-by-deadline; default\n\
         $PROSE_DEADLINE_MS or disabled; results are identical when it\n\
         never fires), --retry-attempts K (re-attempt trials that failed\n\
         by injected timeout or deadline up to K extra times with doubled\n\
         budget and deadline; default $PROSE_RETRY_ATTEMPTS or 0),\n\
         --absint (run the abstract-interpretation pre-pass: atoms whose static\n\
         round-off bound clears the error budget are pre-demoted to 32-bit and\n\
         atoms whose static range overflows f32 are pinned at 64-bit, both\n\
         without spending trials; only the undecided residue is delta-debugged),\n\
         --certify cert.json (after the search, emit a config certificate for the\n\
         final configuration: every finite static bound checked against an\n\
         fp64-shadow run of the same configuration; a violated bound is a\n\
         soundness bug in the static analysis and fails the run)"
    );
    std::process::exit(2)
}

fn parse_args() -> Option<Args> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut procs = Vec::new();
    let mut metric = None;
    let mut threshold = None;
    let mut scope = PerfScope::Hotspot;
    let mut n_runs = 1usize;
    let mut noise = 0.0f64;
    let mut seed = 42u64;
    let mut budget = None;
    let mut exclude = Vec::new();
    let mut emit_best = None;
    let mut strategy = "dd".to_string();
    let mut samples = 100usize;
    let mut granularity = SearchGranularity::default();
    let mut journal = None;
    let mut variant_path = VariantPath::default();
    let mut crosscheck = 1usize;
    let mut resume = false;
    let mut strict = false;
    let mut faults = None;
    let mut retry_band = 0.0f64;
    let mut retry_runs = 25usize;
    let mut wal_flush = prose::trace::FlushPolicy::default();
    let mut shadow = false;
    let mut shadow_budget = None;
    let mut ensemble_members = None;
    let mut ensemble_seed = EnsembleParams::default().seed;
    let mut workers = prose::core::tuner::default_workers();
    let mut deadline_ms = prose::core::tuner::default_deadline_ms();
    let mut retry_attempts = prose::core::tuner::default_retry_attempts();
    let mut absint = false;
    let mut certify = None;

    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        let mut next = || -> Option<String> {
            i += 1;
            argv.get(i).cloned()
        };
        match a.as_str() {
            "--procs" => procs = next()?.split(',').map(str::to_string).collect(),
            "--metric" => match next()?.parse::<CorrectnessMetric>() {
                Ok(m) => metric = Some(m),
                Err(e) => {
                    eprintln!("error: --metric: {e}");
                    return None;
                }
            },
            "--threshold" => threshold = next()?.parse().ok(),
            "--scope" => {
                scope = match next()?.as_str() {
                    "hotspot" => PerfScope::Hotspot,
                    "whole" => PerfScope::WholeModel,
                    _ => return None,
                }
            }
            "--n-runs" => n_runs = next()?.parse().ok()?,
            "--noise" => noise = next()?.parse().ok()?,
            "--seed" => seed = next()?.parse().ok()?,
            "--budget" => budget = Some(next()?.parse().ok()?),
            "--exclude" => exclude = next()?.split(',').map(str::to_string).collect(),
            "--emit-best" => emit_best = next(),
            "--strategy" => strategy = next()?,
            "--samples" => samples = next()?.parse().ok()?,
            "--granularity" => granularity = next()?.parse().ok()?,
            "--journal" => journal = next(),
            "--variant-path" => variant_path = next()?.parse().ok()?,
            "--crosscheck" => crosscheck = next()?.parse().ok()?,
            "--resume" => resume = true,
            "--strict" => strict = true,
            "--faults" => match prose::faults::FaultConfig::parse(&next()?) {
                Ok(f) => faults = Some(f),
                Err(e) => {
                    eprintln!("error: --faults: {e}");
                    return None;
                }
            },
            "--retry-band" => retry_band = next()?.parse().ok()?,
            "--retry-runs" => retry_runs = next()?.parse().ok()?,
            "--wal-flush" => wal_flush = next()?.parse().ok()?,
            "--shadow" => shadow = true,
            "--shadow-budget" => shadow_budget = Some(next()?.parse().ok()?),
            "--validate-ensemble" => ensemble_members = Some(next()?.parse().ok()?),
            "--ensemble-seed" => ensemble_seed = next()?.parse().ok()?,
            "--workers" => workers = next()?.parse::<usize>().ok().filter(|&n| n >= 1)?,
            "--deadline-ms" => deadline_ms = Some(next()?.parse::<u64>().ok().filter(|&n| n >= 1)?),
            "--retry-attempts" => retry_attempts = next()?.parse().ok()?,
            "--absint" => absint = true,
            "--certify" => certify = next(),
            _ if file.is_none() && !a.starts_with("--") => file = Some(a.clone()),
            _ => return None,
        }
        i += 1;
    }
    Some(Args {
        file: file?,
        procs,
        metric: metric?,
        threshold: threshold?,
        scope,
        n_runs,
        noise,
        seed,
        budget,
        exclude,
        emit_best,
        strategy,
        samples,
        granularity,
        journal,
        variant_path,
        crosscheck,
        resume,
        strict,
        faults,
        retry_band,
        retry_runs,
        wal_flush,
        shadow,
        shadow_budget,
        ensemble_members,
        ensemble_seed,
        workers,
        deadline_ms,
        retry_attempts,
        absint,
        certify,
    })
}

/// Append the graceful-shutdown marker record to `journal` and flush it to
/// disk. The marker is provenance, not a trial: preloading skips it because
/// its status is unknown to `variant_from_trial` and its empty config never
/// matches the search's atom count, so a subsequent `--resume` replays the
/// journal exactly as if the run had been interrupted between trials.
fn append_shutdown_marker(path: &std::path::Path, signum: i32) -> std::io::Result<u64> {
    use prose::trace::{FlushPolicy, Journal, TrialRecord};
    let next_seq = Journal::load(path)
        .ok()
        .and_then(|rs| rs.last().map(|r| r.seq + 1))
        .unwrap_or(0);
    let mut journal = Journal::open_append_with(path, FlushPolicy::Sync)?;
    journal.append(&TrialRecord {
        seq: next_seq,
        config: Vec::new(),
        status: "shutdown".to_string(),
        speedup: 0.0,
        error: 0.0,
        cached: true,
        wall_ms: 0.0,
        fraction_single: 0.0,
        wrappers: 0,
        total_cycles: None,
        hotspot_cycles: None,
        stages: Default::default(),
        counters: Default::default(),
        variant_path: String::new(),
        failure_kind: Some(format!("signal:{signum}")),
        fault_kind: None,
        fault_seed: None,
        shadow: None,
        member: None,
        search_granularity: String::new(),
        workers: 0,
        worker: None,
        batch: None,
        attempt: 0,
        job: None,
        static_verdict: None,
        crc: None,
    })?;
    journal.flush()?;
    Ok(next_seq)
}

/// Exit path for a latched SIGINT/SIGTERM: flush the WAL, journal the
/// shutdown marker, and exit with the conventional `128 + signum` code
/// (130 for SIGINT, 143 for SIGTERM) so callers can tell an interrupted
/// search from a failed one.
fn shutdown_exit(journal: Option<&std::path::Path>) -> ExitCode {
    let signum = prose::serve::signals::pending().unwrap_or(prose::serve::signals::SIGINT);
    match journal {
        Some(path) => match append_shutdown_marker(path, signum) {
            Ok(seq) => eprintln!(
                "interrupted by signal {signum}: journal {} flushed, shutdown marker seq {seq}; \
                 continue with --resume",
                path.display()
            ),
            Err(e) => eprintln!(
                "interrupted by signal {signum}: could not append shutdown marker to {}: {e}",
                path.display()
            ),
        },
        None => eprintln!("interrupted by signal {signum} (no --journal; nothing to checkpoint)"),
    }
    ExitCode::from(u8::try_from(128 + signum).unwrap_or(130))
}

/// Run `f`, translating a [`CancelRequested`](prose::core::CancelRequested)
/// unwind (raised by the evaluator when the signal watcher flips the cancel
/// token) into `Err(())`; any other panic propagates.
fn run_cancellable<T>(f: impl FnOnce() -> T) -> Result<T, ()> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            if payload
                .downcast_ref::<prose::core::CancelRequested>()
                .is_some()
            {
                Err(())
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else { usage() };
    if args.procs.is_empty() {
        usage();
    }
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let spec = ModelSpec {
        name: args.file.clone(),
        source,
        hotspot_module: String::new(),
        target_procs: args.procs.clone(),
        metric: args.metric.clone(),
        error_threshold: args.threshold,
        n_runs: args.n_runs,
        noise_rsd: args.noise,
        exclude: args.exclude.clone(),
    };
    let model = match spec.load() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {} search atoms in {:?}",
        args.file,
        model.atoms.len(),
        args.procs
    );
    for a in &model.atoms {
        println!("  {}", model.index.fp_var_path(*a));
    }

    let mut task = match model.task(args.scope, args.seed) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    task.max_variants = args.budget;
    task.journal = args.journal.as_ref().map(Into::into);
    task.variant_path = args.variant_path;
    task.crosscheck = args.crosscheck;
    task.strict = args.strict;
    task.faults = args.faults.clone();
    task.retry_band = args.retry_band;
    task.retry_max_runs = args.retry_runs;
    task.wal_flush = args.wal_flush;
    task.shadow = args.shadow;
    task.shadow_budget = args.shadow_budget;
    task.granularity = args.granularity;
    task.absint = args.absint;
    task.workers = args.workers;
    task.deadline_ms = args.deadline_ms;
    task.retry_attempts = args.retry_attempts;

    // Graceful SIGINT/SIGTERM: latch the signal, flip the evaluator's
    // cancel token, and let the search unwind at the next evaluation
    // boundary — never mid-journal-append, so the WAL stays intact and a
    // later --resume replays every finished trial from cache.
    prose::serve::signals::install();
    let cancel = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    task.cancel = Some(cancel.clone());
    {
        let cancel = cancel.clone();
        std::thread::spawn(move || loop {
            if prose::serve::signals::pending().is_some() {
                cancel.store(true, std::sync::atomic::Ordering::SeqCst);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    if task.workers > 1 {
        println!("parallel evaluation: {} workers", task.workers);
    }
    if let Some(ms) = task.deadline_ms {
        println!(
            "supervision: {ms} ms wall-clock deadline per variant, {} retry attempt(s)",
            task.retry_attempts
        );
    }

    // --resume: continue an interrupted search from its journal. The
    // search itself is deterministic, so replaying it against the
    // journal-preloaded cache reconstructs the monotone bar and
    // best-so-far without a single duplicate interpreter evaluation;
    // only configurations past the crash point run fresh.
    if args.resume {
        let Some(journal) = &task.journal else {
            eprintln!("error: --resume requires --journal");
            return ExitCode::FAILURE;
        };
        // Resume always goes through repair mode: a mid-file corrupted
        // record (torn write, bit rot) is quarantined instead of aborting
        // the resume, and a torn tail is truncated so this process's
        // appends cannot merge into a partial line.
        match prose::trace::Journal::load_repair_or_empty(journal) {
            Ok(report) => {
                let passes = report
                    .records
                    .iter()
                    .filter(|r| r.status == "pass" && !r.cached)
                    .count();
                let best = report
                    .records
                    .iter()
                    .filter(|r| r.status == "pass")
                    .map(|r| r.speedup)
                    .fold(f64::NAN, f64::max);
                let mut notes = String::new();
                if report.torn_tail > 0 {
                    notes.push_str(&format!("; dropped {} torn line(s)", report.torn_tail));
                }
                if report.quarantined > 0 {
                    notes.push_str(&format!(
                        "; quarantined {} damaged record(s) to {}",
                        report.quarantined,
                        report
                            .quarantine_path
                            .as_ref()
                            .map(|p| p.display().to_string())
                            .unwrap_or_default()
                    ));
                }
                println!(
                    "resuming from {}: {} trials ({} unique passing, best speedup {}{})",
                    journal.display(),
                    report.records.len(),
                    passes,
                    if best.is_nan() {
                        "n/a".to_string()
                    } else {
                        format!("{best:.3}")
                    },
                    notes,
                );
            }
            Err(e) => {
                eprintln!("error: --resume: cannot read {}: {e}", journal.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let outcome = match run_cancellable(|| match args.strategy.as_str() {
        "brute" => tune_brute_force(&task),
        "random" => {
            use prose::core::DynamicEvaluator;
            use prose::search::random::RandomSearch;
            match DynamicEvaluator::new(&task) {
                Ok(mut eval) => {
                    let search = RandomSearch::new(args.samples, args.seed).run(&mut eval);
                    let metrics = eval.metrics();
                    Ok(prose::core::tuner::TuningOutcome {
                        search,
                        baseline_hotspot_cycles: eval.baseline.hotspot_cycles,
                        baseline_total_cycles: eval.baseline.total_cycles,
                        hotspot_share: eval.baseline.hotspot_share(),
                        metrics,
                        variants: eval.into_records(),
                    })
                }
                Err(e) => Err(e),
            }
        }
        _ => tune(&task),
    }) {
        Ok(r) => r,
        Err(()) => return shutdown_exit(task.journal.as_deref()),
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: baseline run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let s = outcome.search.status_summary();
    println!(
        "\nexplored {} variants: {:.0}% pass, {:.0}% fail, {:.0}% timeout, {:.0}% error",
        s.total,
        s.pct(s.pass),
        s.pct(s.fail),
        s.pct(s.timeout),
        s.pct(s.error)
    );
    println!(
        "baseline: hotspot {:.0} cycles / total {:.0} cycles ({:.0}% share)",
        outcome.baseline_hotspot_cycles,
        outcome.baseline_total_cycles,
        100.0 * outcome.hotspot_share
    );
    if let Some(journal) = &task.journal {
        println!(
            "journal: {} ({} preloaded, {} cache hits, {} evaluated)",
            journal.display(),
            outcome.metrics.get("cache_preloaded"),
            outcome.metrics.get("cache_hits"),
            outcome.metrics.get("cache_misses")
        );
    }
    if args.shadow {
        println!(
            "shadow guardrail: {} metric-passing variant(s) demoted for excess fp64-shadow error",
            outcome.metrics.get("shadow_demotions")
        );
    }
    if args.absint {
        println!(
            "static pre-pass: {} pre-demoted, {} pinned f64, {} undecided{}",
            outcome.metrics.get("absint_predemoted"),
            outcome.metrics.get("absint_pinned"),
            outcome.metrics.get("absint_undecided"),
            if outcome.metrics.get("absint_joint_fallback") > 0 {
                " (joint re-check dropped the demotion set)"
            } else {
                ""
            }
        );
    }

    match &outcome.search.best {
        Some(best) => {
            println!(
                "best variant: {:.2}x speedup, error {:.3e}, {} of {} variables still 64-bit",
                best.outcome.speedup,
                best.outcome.error,
                best.config.iter().filter(|b| !**b).count(),
                best.config.len()
            );
            if outcome.search.one_minimal {
                let high: Vec<String> = outcome
                    .search
                    .final_config
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !**b)
                    .map(|(i, _)| model.index.fp_var_path(task.atoms[i]))
                    .collect();
                println!("1-minimal 64-bit set: {high:?}");
            }
            if let Some(path) = &args.emit_best {
                let map = config_to_map(&model.index, &model.atoms, &best.config);
                match prose::transform::make_variant(&model.program, &model.index, &map) {
                    Ok(v) => {
                        if let Err(e) = std::fs::write(path, &v.text) {
                            eprintln!("error writing {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote best variant to {path}");
                    }
                    Err(e) => {
                        eprintln!("error: transforming best variant: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        None => {
            println!("no variant satisfied the correctness threshold while beating the baseline");
        }
    }

    // --certify: bind the final configuration to the static analysis'
    // per-variable guarantees and check every finite bound against an
    // fp64-shadow run of the same configuration. A violated bound is a
    // soundness bug in the static analysis (the dynamic guardrails already
    // police accuracy) and fails the run.
    let mut cert_violations = 0usize;
    if let Some(path) = &args.certify {
        if outcome.search.best.is_none() {
            println!("\ncertificate: no passing variant; nothing to certify");
        } else {
            let cert = match prose::core::certify_config(
                &task,
                &args.file,
                &outcome.search.final_config,
            ) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: certify: {e}");
                    return ExitCode::FAILURE;
                }
            };
            cert_violations = cert.violations;
            println!(
                "\ncertificate: {} finite bound(s) checked, {} violation(s); \
                 {} unbounded, {} uncovered{}",
                cert.checks.len(),
                cert.violations,
                cert.unbounded.len(),
                cert.uncovered.len(),
                if cert.incomplete {
                    " (static analysis incomplete)"
                } else {
                    ""
                }
            );
            let mut worst: Vec<_> = cert.checks.iter().collect();
            worst.sort_by(|a, b| b.static_rel.total_cmp(&a.static_rel));
            for c in worst.iter().take(10) {
                println!(
                    "  bound {} ({}): static rel {:.3e}, observed {:.3e} over {} store(s)",
                    c.name, c.kind, c.static_rel, c.observed_rel, c.stores
                );
            }
            if worst.len() > 10 {
                println!(
                    "  ... and {} more bound(s) in the certificate",
                    worst.len() - 10
                );
            }
            for c in cert.checks.iter().filter(|c| !c.sound) {
                println!(
                    "  SOUNDNESS BUG {}: observed rel {:.3e} or hull [{:.3e}, {:.3e}] escapes \
                     static rel {:.3e} hull [{:.3e}, {:.3e}]",
                    c.name,
                    c.observed_rel,
                    c.observed_min,
                    c.observed_max,
                    c.static_rel,
                    c.static_lo,
                    c.static_hi
                );
            }
            let text = serde_json::to_string_pretty(&cert).expect("serialize certificate");
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("error: cannot write certificate {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote certificate to {path}");
        }
    }

    // --validate-ensemble: re-measure the final configuration (plus the
    // runner-up frontier) on held-out input perturbations and demote
    // input-overfit candidates.
    if let Some(members) = args.ensemble_members.filter(|m| *m > 0) {
        let params = EnsembleParams {
            members,
            seed: args.ensemble_seed,
            ..EnsembleParams::default()
        };
        let report = match run_cancellable(|| validate_ensemble(&task, &outcome, &params)) {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => {
                eprintln!("error: ensemble validation failed: {e}");
                return ExitCode::FAILURE;
            }
            Err(()) => return shutdown_exit(task.journal.as_deref()),
        };
        println!(
            "\nensemble validation: {} member(s), seed {}, amplitude {:.1e}",
            params.members, params.seed, params.amplitude
        );
        for (i, cand) in report.candidates.iter().enumerate() {
            let role = if i == 0 { "final" } else { "runner-up" };
            println!(
                "  candidate {i} ({role}): {:.0}% lowered, tuning speedup {:.2}x",
                100.0 * cand.fraction_single,
                cand.tuning_speedup
            );
            for mr in &cand.members {
                println!(
                    "    member {}: {:?}, speedup {:.2}x, error {:.3e}",
                    mr.member,
                    mr.record.outcome.status,
                    mr.record.outcome.speedup,
                    mr.record.outcome.error
                );
            }
            if cand.validated {
                println!(
                    "    validated (min member speedup {:.2}x)",
                    cand.min_member_speedup().unwrap_or(f64::NAN)
                );
            } else {
                println!(
                    "    DEMOTED: input-overfit, failed member(s) {:?}",
                    cand.failed_members()
                );
            }
        }
        if report.final_demoted() {
            println!("ensemble verdict: the search's final configuration is input-overfit");
        }
        match report.winner {
            Some(i) => {
                let cand = &report.candidates[i];
                let high: Vec<String> = cand
                    .config
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !**b)
                    .map(|(j, _)| model.index.fp_var_path(task.atoms[j]))
                    .collect();
                println!(
                    "ensemble verdict: ship candidate {i} ({:.0}% lowered); 64-bit set {high:?}",
                    100.0 * cand.fraction_single
                );
            }
            None => {
                println!(
                    "ensemble verdict: no candidate survived all {} member(s); keep full fp64",
                    params.members
                );
            }
        }
    }
    if cert_violations > 0 {
        eprintln!(
            "error: {cert_violations} certified bound(s) violated by the shadow run \
             (static-analysis soundness bug)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
