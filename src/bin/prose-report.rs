//! `prose-report` — summarize a trial journal into Table II / Figure 5
//! style artifacts plus cache and search-efficiency statistics.
//!
//! ```text
//! prose-report <trials.jsonl> [--csv out.csv] [--guardrails] [--lints lints.json]
//!              [--certify cert.json] [--repair]
//! prose-report --variant-path-bench <fast.jsonl> <faithful.jsonl> [--out BENCH_variant_path.json]
//! ```
//!
//! `--repair` loads the journal in self-healing mode: corrupt mid-file
//! records (torn writes, bit rot — anything that fails to parse or whose
//! CRC32 mismatches) are quarantined into `<journal>.quarantine`, a torn
//! tail is truncated, and the report runs over the surviving records.
//!
//! `--lints` takes the JSON document written by `prose-lint --format json`
//! and renders the static findings next to the journal's dynamic shadow
//! evidence: a lint whose `proc:line` site matches a journaled cancellation
//! site or non-finite origin is flagged as dynamically confirmed.
//!
//! `--certify` takes the config certificate written by `prose-tune
//! --certify` and re-validates it against the journal: every journaled
//! shadow summary whose configuration matches the certificate must observe
//! no more error in its worst variable than the certified static bound. A
//! violation — here or recorded in the certificate itself — is a soundness
//! bug in the static analysis and fails the report.
//!
//! The journal is the JSONL file written by `prose-tune --journal`, by the
//! `prose-bench` search binaries (`results/trials_<model>.jsonl`), or by
//! any [`prose::core::tuner::TuningTask`] with `journal` set. Each record
//! is one evaluation request; `cached` records were answered from the
//! memoization cache without running the interpreter.
//!
//! `--variant-path-bench` compares two journals of the *same* search run
//! once per variant path (`--variant-path fast` / `faithful` on the search
//! binary) and snapshots uncached-evaluation throughput and per-stage wall
//! shares as `BENCH_variant_path.json`.

use prose::trace::{Counters, Journal, TrialRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: prose-report <trials.jsonl> [--csv out.csv] [--guardrails] [--lints lints.json]\n\
         \x20                [--certify cert.json] [--repair]\n\
         \x20      prose-report --variant-path-bench <fast.jsonl> <faithful.jsonl> [--out out.json]\n\
         options: --guardrails (numerical-guardrail section: shadow-error demotions,\n\
         cancellation and non-finite provenance, per-member ensemble records),\n\
         --lints lints.json (static-lint section from `prose-lint --format json`\n\
         output, cross-referenced against the journal's shadow sites),\n\
         --certify cert.json (config-certificate section from `prose-tune --certify`\n\
         output, re-validated against the journal's shadow summaries; any violated\n\
         static bound is a soundness bug and fails the report),\n\
         --repair (self-healing load: quarantine corrupt mid-file records to\n\
         <journal>.quarantine, truncate a torn tail, report on the survivors)"
    );
    std::process::exit(2)
}

/// Uncached-evaluation statistics of one journal, for the variant-path
/// benchmark snapshot.
#[derive(serde::Serialize)]
struct PathStats {
    journal: String,
    /// `variant_path` recorded in the journal (empty for pre-fast-path
    /// journals).
    variant_path: String,
    /// Uncached evaluations (interpreter runs).
    evaluations: u64,
    /// Total wall nanoseconds per pipeline stage, uncached records only.
    stage_ns: BTreeMap<String, u64>,
    /// Each stage's fraction of the summed stage wall time.
    stage_share: BTreeMap<String, f64>,
    /// Uncached evaluations per second of summed stage wall time.
    evals_per_sec: f64,
    mean_eval_ms: f64,
    /// Variant-generation (`transform` + `lower`) milliseconds per uncached
    /// evaluation — the cost the fast path removes; `exec` is identical on
    /// both paths by construction.
    generation_ms_per_eval: f64,
}

fn path_stats(path: &str) -> Result<PathStats, String> {
    let records = Journal::load(path).map_err(|e| format!("cannot read journal {path}: {e}"))?;
    let misses: Vec<&TrialRecord> = records.iter().filter(|r| !r.cached).collect();
    if misses.is_empty() {
        return Err(format!("{path}: no uncached evaluations to measure"));
    }
    let mut stage_ns: BTreeMap<String, u64> = BTreeMap::new();
    for r in &misses {
        for (k, v) in &r.stages {
            *stage_ns.entry(k.clone()).or_insert(0) += v;
        }
    }
    let total_ns: u64 = stage_ns.values().sum();
    let stage_share = stage_ns
        .iter()
        .map(|(k, v)| (k.clone(), *v as f64 / total_ns.max(1) as f64))
        .collect();
    let variant_path = misses
        .iter()
        .find(|r| !r.variant_path.is_empty())
        .map(|r| r.variant_path.clone())
        .unwrap_or_default();
    let gen_ns = stage_ns.get("transform").copied().unwrap_or(0)
        + stage_ns.get("lower").copied().unwrap_or(0);
    Ok(PathStats {
        journal: path.to_string(),
        variant_path,
        evaluations: misses.len() as u64,
        evals_per_sec: misses.len() as f64 / (total_ns as f64 / 1e9),
        mean_eval_ms: total_ns as f64 / 1e6 / misses.len() as f64,
        generation_ms_per_eval: gen_ns as f64 / 1e6 / misses.len() as f64,
        stage_ns,
        stage_share,
    })
}

fn variant_path_bench(argv: &[String]) -> ExitCode {
    let mut out = "results/BENCH_variant_path.json".to_string();
    let mut journals: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                let Some(p) = argv.get(i) else { usage() };
                out = p.clone();
            }
            a if !a.starts_with("--") => journals.push(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if journals.len() != 2 {
        usage();
    }
    let (fast, faithful) = match (path_stats(&journals[0]), path_stats(&journals[1])) {
        (Ok(f), Ok(g)) => (f, g),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ratio = fast.evals_per_sec / faithful.evals_per_sec;
    let gen_ratio = faithful.generation_ms_per_eval / fast.generation_ms_per_eval;
    #[derive(serde::Serialize)]
    struct BenchDoc {
        bench: &'static str,
        description: &'static str,
        fast: PathStats,
        faithful: PathStats,
        /// End-to-end uncached-evaluation throughput ratio (includes
        /// execution, which dominates on the in-repo models).
        throughput_ratio_fast_over_faithful: f64,
        /// Variant-generation (transform+lower) cost ratio — the stage the
        /// fast path replaces.
        generation_speedup_fast_over_faithful: f64,
    }
    let doc = BenchDoc {
        bench: "variant_path",
        description: "Uncached variant-evaluation throughput and per-stage wall shares, \
                      template fast path vs faithful unparse/reparse/re-lower pipeline, \
                      from the two searches' trial journals.",
        fast,
        faithful,
        throughput_ratio_fast_over_faithful: ratio,
        generation_speedup_fast_over_faithful: gen_ratio,
    };
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    if let Err(e) = std::fs::write(&out, text + "\n") {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: fast {:.1} evals/s vs faithful {:.1} evals/s ({ratio:.2}x end-to-end, \
         {gen_ratio:.2}x variant generation)",
        doc.fast.evals_per_sec, doc.faithful.evals_per_sec
    );
    ExitCode::SUCCESS
}

struct Args {
    journal: String,
    csv: Option<String>,
    guardrails: bool,
    lints: Option<String>,
    certify: Option<String>,
    repair: bool,
}

fn parse_args() -> Option<Args> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut journal = None;
    let mut csv = None;
    let mut guardrails = false;
    let mut lints = None;
    let mut certify = None;
    let mut repair = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => {
                i += 1;
                csv = Some(argv.get(i)?.clone());
            }
            "--guardrails" => guardrails = true,
            "--lints" => {
                i += 1;
                lints = Some(argv.get(i)?.clone());
            }
            "--certify" => {
                i += 1;
                certify = Some(argv.get(i)?.clone());
            }
            "--repair" => repair = true,
            a if journal.is_none() && !a.starts_with("--") => journal = Some(a.to_string()),
            _ => return None,
        }
        i += 1;
    }
    Some(Args {
        journal: journal?,
        csv,
        guardrails,
        lints,
        certify,
        repair,
    })
}

/// The supervision section: wall-clock deadline kills, transient-failure
/// retries, single-flight watchdog re-elections, and quarantined journal
/// records. Journals written before the supervision layer existed carry
/// none of these fields (all serde-defaulted) and report zeros.
fn print_supervision(records: &[TrialRecord], journal: &str) {
    println!();
    println!("== supervision ==");

    let deadline_kills = records
        .iter()
        .filter(|r| r.failure_kind.as_deref() == Some("deadline"))
        .count();
    println!("  deadline kills:      {deadline_kills}");

    // A record was retried when the journal also holds the same config at
    // the next attempt ordinal; group the retried failures by kind.
    let attempts_seen: std::collections::HashSet<(&[bool], u32)> = records
        .iter()
        .map(|r| (r.config.as_slice(), r.attempt))
        .collect();
    let mut retried_by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    for r in records {
        if attempts_seen.contains(&(r.config.as_slice(), r.attempt + 1)) {
            let kind = r.failure_kind.as_deref().unwrap_or("unknown");
            *retried_by_kind.entry(kind).or_insert(0) += 1;
        }
    }
    let retry_records = records.iter().filter(|r| r.attempt > 0).count();
    let recovered: std::collections::HashSet<&[bool]> = records
        .iter()
        .filter(|r| r.attempt > 0 && r.status == "pass")
        .map(|r| r.config.as_slice())
        .collect();
    println!("  retry attempts:      {retry_records}");
    if !retried_by_kind.is_empty() {
        let desc: Vec<String> = retried_by_kind
            .iter()
            .map(|(k, n)| format!("{k}={n}"))
            .collect();
        println!("  retried failures:    {}", desc.join(", "));
        println!("  recovered by retry:  {} config(s)", recovered.len());
    }

    let mut merged = Counters::new();
    for r in records {
        merged.merge(&r.counters);
    }
    println!(
        "  watchdog re-elections: {}",
        merged.get("watchdog_reelections")
    );

    let qpath = prose::trace::quarantine_path_for(std::path::Path::new(journal));
    match std::fs::read_to_string(&qpath) {
        Ok(s) => {
            let n = s.lines().filter(|l| !l.trim().is_empty()).count();
            println!("  quarantined records: {n} (in {})", qpath.display());
        }
        Err(_) => println!("  quarantined records: none"),
    }
}

/// The `--guardrails` section: everything the journal knows about shadow
/// execution, error provenance, and held-out ensemble validation. Older
/// journals (written before these fields existed) simply report that no
/// guardrail data is present — every field is serde-defaulted.
fn print_guardrails(records: &[TrialRecord]) {
    println!();
    println!("== numerical guardrails ==");

    let shadowed: Vec<&TrialRecord> = records.iter().filter(|r| r.shadow.is_some()).collect();
    if shadowed.is_empty() && records.iter().all(|r| r.member.is_none()) {
        println!("  no shadow or ensemble data in this journal (pre-guardrail run?)");
        return;
    }
    println!(
        "  shadowed trials:     {} of {} records",
        shadowed.len(),
        records.len()
    );

    // Demotions: the scalar metric said pass, the fp64 shadow said no.
    let demoted: Vec<&TrialRecord> = shadowed
        .iter()
        .filter(|r| r.shadow.as_ref().is_some_and(|s| s.demoted))
        .copied()
        .collect();
    println!("  shadow demotions:    {}", demoted.len());
    for r in demoted.iter().take(10) {
        let s = r.shadow.as_ref().unwrap();
        println!(
            "    trial {}: worst rel {:.3e} in {}{}",
            r.seq,
            s.worst_rel,
            s.worst_var.as_deref().unwrap_or("?"),
            if s.cancellations > 0 {
                format!(
                    ", {} cancellation(s){}",
                    s.cancellations,
                    s.cancellation_site
                        .as_deref()
                        .map(|site| format!(" worst at {site}"))
                        .unwrap_or_default()
                )
            } else {
                String::new()
            }
        );
    }
    if demoted.len() > 10 {
        println!("    ... and {} more", demoted.len() - 10);
    }

    // Worst shadow error over all shadowed trials, demoted or not.
    if let Some(worst) = shadowed
        .iter()
        .max_by(|a, b| {
            let (sa, sb) = (a.shadow.as_ref().unwrap(), b.shadow.as_ref().unwrap());
            sa.worst_rel.total_cmp(&sb.worst_rel)
        })
        .and_then(|r| r.shadow.as_ref())
    {
        println!(
            "  worst shadow error:  {:.3e} in {}",
            worst.worst_rel,
            worst.worst_var.as_deref().unwrap_or("?")
        );
    }

    // Non-finite provenance: genuine numerical blow-ups vs harness faults.
    let genuine: Vec<&TrialRecord> = shadowed
        .iter()
        .filter(|r| {
            r.shadow
                .as_ref()
                .is_some_and(|s| s.nonfinite_origin.is_some() && !s.nonfinite_injected)
        })
        .copied()
        .collect();
    let injected = shadowed
        .iter()
        .filter(|r| r.shadow.as_ref().is_some_and(|s| s.nonfinite_injected))
        .count();
    if !genuine.is_empty() || injected > 0 {
        println!(
            "  non-finite origins:  {} genuine, {} fault-injected",
            genuine.len(),
            injected
        );
        for r in genuine.iter().take(5) {
            let s = r.shadow.as_ref().unwrap();
            println!(
                "    trial {}: first produced by {}",
                r.seq,
                s.nonfinite_origin.as_deref().unwrap_or("?")
            );
        }
    }

    // Held-out ensemble members, grouped by member id.
    let mut by_member: BTreeMap<u32, (usize, usize, usize)> = BTreeMap::new();
    for r in records {
        if let Some(m) = r.member {
            let e = by_member.entry(m).or_insert((0, 0, 0));
            e.0 += 1;
            if r.status == "pass" {
                e.1 += 1;
            }
            if r.cached {
                e.2 += 1;
            }
        }
    }
    if by_member.is_empty() {
        println!("  ensemble members:    none journaled");
    } else {
        println!("  ensemble members:    {}", by_member.len());
        for (m, (n, pass, cached)) in &by_member {
            println!("    member {m}: {n} trial(s), {pass} pass, {cached} replayed from journal");
        }
    }
}

/// The document written by `prose-lint --format json`.
#[derive(serde::Deserialize)]
struct LintDoc {
    file: String,
    map: String,
    lints: Vec<prose::analysis::Lint>,
}

/// The `--lints` section: static numerical-hazard findings rendered next to
/// the journal's dynamic shadow evidence. The lints carry `proc:line` sites
/// in the same key space as the shadow machinery's cancellation sites and
/// non-finite origins, so a static hazard the shadow actually observed at
/// run time is marked as dynamically confirmed. Journals written before the
/// shadow fields existed simply yield no confirmations.
fn print_lints(doc: &LintDoc, records: &[TrialRecord]) {
    println!();
    println!("== static numerical-hazard lints ==");
    println!(
        "  {}: {} finding(s) under the `{}` precision map",
        doc.file,
        doc.lints.len(),
        doc.map
    );

    // Dynamic sites the shadow machinery attributed hazards to, normalized
    // back to bare `proc:line` keys ("fun:12 (24.0 bits)" -> "fun:12",
    // "sub at fun:12" -> "fun:12").
    let mut dynamic_sites: BTreeMap<String, &'static str> = BTreeMap::new();
    for r in records {
        let Some(s) = &r.shadow else { continue };
        if let Some(site) = &s.cancellation_site {
            let key = site.split_whitespace().next().unwrap_or(site).to_string();
            dynamic_sites.entry(key).or_insert("cancellation observed");
        }
        if let Some(origin) = s
            .nonfinite_origin
            .as_deref()
            .filter(|_| !s.nonfinite_injected)
        {
            let key = origin.rsplit(" at ").next().unwrap_or(origin).to_string();
            dynamic_sites.entry(key).or_insert("non-finite origin");
        }
    }

    let mut confirmed = 0usize;
    for l in &doc.lints {
        let var = l
            .variable
            .as_deref()
            .map(|v| format!(" [{v}]"))
            .unwrap_or_default();
        let dynamic = match dynamic_sites.get(&l.site) {
            Some(kind) => {
                confirmed += 1;
                format!("  <- shadow: {kind} at this site")
            }
            None => String::new(),
        };
        println!("  {}: {:?}{var}: {}{dynamic}", l.site, l.kind, l.message);
    }
    if dynamic_sites.is_empty() {
        println!("  no dynamic shadow sites in this journal to cross-reference");
    } else {
        println!(
            "  dynamically confirmed: {confirmed} of {} static finding(s) \
             ({} shadow site(s) in journal)",
            doc.lints.len(),
            dynamic_sites.len()
        );
    }
}

/// The `--certify` section: the config certificate written by `prose-tune
/// --certify`, re-validated against the journal. Two layers of evidence:
/// the certificate's own checks (shadow run at certification time) and the
/// journal's shadow summaries for every record whose configuration matches
/// the certified one. Returns the total violation count — anything above
/// zero means the static analysis promised a bound the dynamics broke.
fn print_certify(cert: &prose::core::Certificate, records: &[TrialRecord]) -> usize {
    println!();
    println!("== config certificate ==");
    println!(
        "  certified config:    {} ({:.0}% lowered, budget {:.3e})",
        cert.file,
        100.0 * cert.fraction_single,
        cert.budget
    );
    println!(
        "  static bounds:       {} finite checked, {} unbounded, {} uncovered{}",
        cert.checks.len(),
        cert.unbounded.len(),
        cert.uncovered.len(),
        if cert.incomplete {
            " (analysis incomplete)"
        } else {
            ""
        }
    );
    println!("  certificate violations: {}", cert.violations);
    for c in cert.checks.iter().filter(|c| !c.sound) {
        println!(
            "    SOUNDNESS BUG {}: observed rel {:.3e} vs static {:.3e}",
            c.name, c.observed_rel, c.static_rel
        );
    }

    let (matching, checked, violating) = prose::core::crosscheck_journal(cert, records);
    println!(
        "  journal cross-check: {matching} matching record(s), {checked} with shadow \
         summaries, {} violation(s)",
        violating.len()
    );
    for seq in violating.iter().take(10) {
        println!("    SOUNDNESS BUG: trial {seq} observed more error than the certified bound");
    }
    cert.violations + violating.len()
}

/// The service-job section: a journal that lives in a `prose-served`
/// `jobs/<id>/` directory (sibling `state.jsonl` WAL) or whose records
/// carry `job` stamps gets its job id and current state printed. Standalone
/// `prose-tune` journals have neither and skip the section; records from
/// writers predating the service layer read the stamp as `None`
/// (serde-defaulted), so old journals keep loading unchanged.
fn print_job(records: &[TrialRecord], journal: &str) {
    let dir = std::path::Path::new(journal).parent();
    let state_path = dir.map(|d| d.join("state.jsonl")).filter(|p| p.is_file());
    let stamped: Option<&str> = records.iter().find_map(|r| r.job.as_deref());
    if stamped.is_none() && state_path.is_none() {
        return;
    }
    println!();
    println!("== service job ==");
    let id = stamped
        .map(str::to_string)
        .or_else(|| {
            dir.and_then(|d| d.file_name())
                .map(|n| n.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "unknown".to_string());
    println!("  job id:              {id}");
    let stamped_count = records.iter().filter(|r| r.job.is_some()).count();
    println!(
        "  stamped records:     {stamped_count} of {} carry the job id",
        records.len()
    );
    if let Some(path) = state_path {
        match prose::trace::load_states(&path) {
            Ok(states) => {
                let current = states
                    .last()
                    .map(|s| s.state)
                    .unwrap_or(prose::trace::JobState::Queued);
                println!("  state:               {}", current.name());
                if let Some(last) = states.last().filter(|s| !s.detail.is_empty()) {
                    println!("  detail:              {}", last.detail);
                }
                let history: Vec<&str> = states.iter().map(|s| s.state.name()).collect();
                println!("  transitions:         {}", history.join(" -> "));
            }
            Err(e) => println!("  state:               unreadable ({e})"),
        }
    } else {
        println!("  state:               no state WAL next to this journal");
    }
}

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--variant-path-bench") {
        return variant_path_bench(&argv[1..]);
    }
    let Some(args) = parse_args() else { usage() };
    let records = if args.repair {
        match Journal::load_repair(std::path::Path::new(&args.journal)) {
            Ok(rep) => {
                if rep.damaged() > 0 {
                    println!(
                        "repair: {} damaged record(s) quarantined{}, {} torn line(s) dropped",
                        rep.quarantined,
                        rep.quarantine_path
                            .as_ref()
                            .map(|p| format!(" to {}", p.display()))
                            .unwrap_or_default(),
                        rep.torn_tail
                    );
                } else {
                    println!("repair: journal healthy, nothing to do");
                }
                rep.records
            }
            Err(e) => {
                eprintln!("error: cannot repair journal {}: {e}", args.journal);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match Journal::load(&args.journal) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot read journal {}: {e}", args.journal);
                return ExitCode::FAILURE;
            }
        }
    };
    if records.is_empty() {
        println!("{}: empty journal", args.journal);
        return ExitCode::SUCCESS;
    }

    // ---- cache / search efficiency ------------------------------------
    let total = records.len();
    let hits: Vec<&TrialRecord> = records.iter().filter(|r| r.cached).collect();
    let misses: Vec<&TrialRecord> = records.iter().filter(|r| !r.cached).collect();
    let mut unique: BTreeMap<&[bool], &TrialRecord> = BTreeMap::new();
    for r in &records {
        unique.entry(&r.config).or_insert(r);
    }
    println!("journal: {} ({} records)", args.journal, total);
    print_job(&records, &args.journal);
    println!();
    println!("== cache / search efficiency ==");
    println!("  requests:            {total}");
    println!("  unique configs:      {}", unique.len());
    println!("  interpreter runs:    {}", misses.len());
    println!(
        "  cache hits:          {} ({:.1}% of requests)",
        hits.len(),
        pct(hits.len(), total)
    );
    let wall_ms: f64 = records.iter().map(|r| r.wall_ms).sum();
    let miss_ms: f64 = misses.iter().map(|r| r.wall_ms).sum();
    if !misses.is_empty() && !hits.is_empty() {
        let mean_miss = miss_ms / misses.len() as f64;
        println!(
            "  est. time saved:     {:.1} ms ({} hits x {:.2} ms mean evaluation)",
            hits.len() as f64 * mean_miss,
            hits.len(),
            mean_miss
        );
    }
    println!("  journal wall time:   {wall_ms:.1} ms");
    let mut by_path: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &misses {
        let p = if r.variant_path.is_empty() {
            "unknown"
        } else {
            r.variant_path.as_str()
        };
        *by_path.entry(p).or_insert(0) += 1;
    }
    if by_path.keys().any(|k| *k != "unknown") {
        let desc: Vec<String> = by_path.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!("  variant paths:       {}", desc.join(", "));
    }

    // ---- parallel evaluation ------------------------------------------
    // Rounds are the evaluator's batch ordinals (deterministic across
    // worker counts); per-round wall clock separates the serial cost
    // (sum of trial walls) from the critical path (slowest trial per
    // round), which is what a perfectly scheduled pool pays.
    let workers_seen = records.iter().map(|r| r.workers).max().unwrap_or(0);
    if workers_seen > 0 {
        let mut rounds: BTreeMap<u64, (usize, f64, f64)> = BTreeMap::new();
        for r in &records {
            if let Some(b) = r.batch {
                let e = rounds.entry(b).or_insert((0, 0.0, 0.0));
                e.0 += 1;
                e.1 += r.wall_ms;
                e.2 = e.2.max(r.wall_ms);
            }
        }
        println!();
        println!("== parallel evaluation ==");
        println!("  workers:             {workers_seen}");
        let pool_trials = records.iter().filter(|r| r.worker.is_some()).count();
        println!("  pool-executed:       {pool_trials} of {total} trials ran on a pool worker");
        if !rounds.is_empty() {
            let serial_ms: f64 = rounds.values().map(|(_, sum, _)| sum).sum();
            let critical_ms: f64 = rounds.values().map(|(_, _, max)| max).sum();
            let mean_per_round =
                rounds.values().map(|(n, _, _)| *n).sum::<usize>() as f64 / rounds.len() as f64;
            println!("  evaluation rounds:   {}", rounds.len());
            println!("  trials per round:    {mean_per_round:.1} mean");
            println!(
                "  wall clock per round: {:.2} ms mean (serial-equivalent), \
                 {:.2} ms mean critical path",
                serial_ms / rounds.len() as f64,
                critical_ms / rounds.len() as f64
            );
            if critical_ms > 0.0 {
                println!(
                    "  round parallelism:   {:.2}x available (serial {serial_ms:.1} ms / \
                     critical path {critical_ms:.1} ms)",
                    serial_ms / critical_ms
                );
            }
        }
    }

    // ---- Table II-style status breakdown over unique configs ----------
    let mut by_status: BTreeMap<&str, usize> = BTreeMap::new();
    for r in unique.values() {
        *by_status.entry(r.status.as_str()).or_insert(0) += 1;
    }
    println!();
    println!("== variants explored (Table II style) ==");
    for (status, n) in &by_status {
        println!("  {status:<16} {n:>6}  ({:.1}%)", pct(*n, unique.len()));
    }
    let mut by_failure: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_fault: BTreeMap<&str, usize> = BTreeMap::new();
    for r in unique.values() {
        if let Some(f) = &r.failure_kind {
            *by_failure.entry(f.as_str()).or_insert(0) += 1;
        }
        if let Some(f) = &r.fault_kind {
            *by_fault.entry(f.as_str()).or_insert(0) += 1;
        }
    }
    if !by_failure.is_empty() {
        println!("  failure kinds:");
        for (kind, n) in &by_failure {
            println!("    {kind:<14} {n:>6}  ({:.1}%)", pct(*n, unique.len()));
        }
    }
    if !by_fault.is_empty() {
        let desc: Vec<String> = by_fault.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!("  injected faults:     {}", desc.join(", "));
    }
    let best = unique
        .values()
        .filter(|r| r.status == "pass")
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup));
    match best {
        Some(b) => println!(
            "  best pass: {:.2}x speedup, error {:.3e}, {:.0}% of atoms at 32-bit",
            b.speedup,
            b.error,
            100.0 * b.fraction_single
        ),
        None => println!("  best pass: none"),
    }

    // ---- Figure 5-style scatter (speedup vs fraction lowered) ---------
    println!();
    println!("== pass variants by fraction lowered (Figure 5 style) ==");
    let mut buckets: Vec<(usize, f64)> = vec![(0, 0.0); 10];
    for r in unique.values().filter(|r| r.status == "pass") {
        let b = ((r.fraction_single * 10.0) as usize).min(9);
        buckets[b].0 += 1;
        buckets[b].1 = buckets[b].1.max(r.speedup);
    }
    for (i, (n, best)) in buckets.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        println!(
            "  {:>3.0}-{:>3.0}% lowered: {:>5} pass, best {best:.2}x  {}",
            i as f64 * 10.0,
            (i + 1) as f64 * 10.0,
            n,
            "#".repeat((*n).min(60))
        );
    }

    // ---- per-stage timing + aggregate counters ------------------------
    let mut stage_ns: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counters = Counters::new();
    for r in &records {
        for (k, v) in &r.stages {
            *stage_ns.entry(k.as_str()).or_insert(0) += v;
        }
        counters.merge(&r.counters);
    }
    if !stage_ns.is_empty() {
        println!();
        println!("== stage wall time (uncached evaluations) ==");
        for (stage, ns) in &stage_ns {
            println!(
                "  {stage:<12} {:>10.1} ms total, {:>8.3} ms/run",
                *ns as f64 / 1e6,
                *ns as f64 / 1e6 / misses.len().max(1) as f64
            );
        }
    }
    if !counters.is_empty() {
        println!();
        println!("== interpreter counters (all evaluations) ==");
        for (k, v) in counters.iter() {
            println!("  {k:<22} {v}");
        }
    }

    // ---- supervision: deadlines, retries, watchdog, quarantine --------
    print_supervision(&records, &args.journal);

    // ---- numerical guardrails (--guardrails) --------------------------
    if args.guardrails {
        print_guardrails(&records);
    }

    // ---- static lints vs dynamic shadow evidence (--lints) ------------
    if let Some(path) = &args.lints {
        let doc: LintDoc = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: cannot read lint document {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_lints(&doc, &records);
    }

    // ---- config certificate vs journaled shadow evidence (--certify) --
    let mut cert_violations = 0usize;
    if let Some(path) = &args.certify {
        let cert: prose::core::Certificate = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot read certificate {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        cert_violations = print_certify(&cert, &records);
    }

    // ---- optional CSV export ------------------------------------------
    if let Some(path) = &args.csv {
        let mut csv = String::from(
            "seq,cached,status,failure_kind,fault_kind,speedup,error,fraction_single,wrappers,wall_ms\n",
        );
        for r in &records {
            let error = if r.error.is_finite() {
                format!("{:e}", r.error)
            } else {
                String::new()
            };
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.seq,
                r.cached,
                r.status,
                r.failure_kind.as_deref().unwrap_or(""),
                r.fault_kind.as_deref().unwrap_or(""),
                r.speedup,
                error,
                r.fraction_single,
                r.wrappers,
                r.wall_ms
            ));
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("wrote {path}");
    }
    if cert_violations > 0 {
        eprintln!(
            "error: {cert_violations} static-bound violation(s) \
             (static-analysis soundness bug)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
