//! `prose-report` — summarize a trial journal into Table II / Figure 5
//! style artifacts plus cache and search-efficiency statistics.
//!
//! ```text
//! prose-report <trials.jsonl> [--csv out.csv]
//! ```
//!
//! The journal is the JSONL file written by `prose-tune --journal`, by the
//! `prose-bench` search binaries (`results/trials_<model>.jsonl`), or by
//! any [`prose::core::tuner::TuningTask`] with `journal` set. Each record
//! is one evaluation request; `cached` records were answered from the
//! memoization cache without running the interpreter.

use prose::trace::{Counters, Journal, TrialRecord};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: prose-report <trials.jsonl> [--csv out.csv]");
    std::process::exit(2)
}

struct Args {
    journal: String,
    csv: Option<String>,
}

fn parse_args() -> Option<Args> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut journal = None;
    let mut csv = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => {
                i += 1;
                csv = Some(argv.get(i)?.clone());
            }
            a if journal.is_none() && !a.starts_with("--") => journal = Some(a.to_string()),
            _ => return None,
        }
        i += 1;
    }
    Some(Args {
        journal: journal?,
        csv,
    })
}

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else { usage() };
    let records = match Journal::load(&args.journal) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read journal {}: {e}", args.journal);
            return ExitCode::FAILURE;
        }
    };
    if records.is_empty() {
        println!("{}: empty journal", args.journal);
        return ExitCode::SUCCESS;
    }

    // ---- cache / search efficiency ------------------------------------
    let total = records.len();
    let hits: Vec<&TrialRecord> = records.iter().filter(|r| r.cached).collect();
    let misses: Vec<&TrialRecord> = records.iter().filter(|r| !r.cached).collect();
    let mut unique: BTreeMap<&[bool], &TrialRecord> = BTreeMap::new();
    for r in &records {
        unique.entry(&r.config).or_insert(r);
    }
    println!("journal: {} ({} records)", args.journal, total);
    println!();
    println!("== cache / search efficiency ==");
    println!("  requests:            {total}");
    println!("  unique configs:      {}", unique.len());
    println!("  interpreter runs:    {}", misses.len());
    println!(
        "  cache hits:          {} ({:.1}% of requests)",
        hits.len(),
        pct(hits.len(), total)
    );
    let wall_ms: f64 = records.iter().map(|r| r.wall_ms).sum();
    let miss_ms: f64 = misses.iter().map(|r| r.wall_ms).sum();
    if !misses.is_empty() && !hits.is_empty() {
        let mean_miss = miss_ms / misses.len() as f64;
        println!(
            "  est. time saved:     {:.1} ms ({} hits x {:.2} ms mean evaluation)",
            hits.len() as f64 * mean_miss,
            hits.len(),
            mean_miss
        );
    }
    println!("  journal wall time:   {wall_ms:.1} ms");

    // ---- Table II-style status breakdown over unique configs ----------
    let mut by_status: BTreeMap<&str, usize> = BTreeMap::new();
    for r in unique.values() {
        *by_status.entry(r.status.as_str()).or_insert(0) += 1;
    }
    println!();
    println!("== variants explored (Table II style) ==");
    for (status, n) in &by_status {
        println!("  {status:<16} {n:>6}  ({:.1}%)", pct(*n, unique.len()));
    }
    let best = unique
        .values()
        .filter(|r| r.status == "pass")
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup));
    match best {
        Some(b) => println!(
            "  best pass: {:.2}x speedup, error {:.3e}, {:.0}% of atoms at 32-bit",
            b.speedup,
            b.error,
            100.0 * b.fraction_single
        ),
        None => println!("  best pass: none"),
    }

    // ---- Figure 5-style scatter (speedup vs fraction lowered) ---------
    println!();
    println!("== pass variants by fraction lowered (Figure 5 style) ==");
    let mut buckets: Vec<(usize, f64)> = vec![(0, 0.0); 10];
    for r in unique.values().filter(|r| r.status == "pass") {
        let b = ((r.fraction_single * 10.0) as usize).min(9);
        buckets[b].0 += 1;
        buckets[b].1 = buckets[b].1.max(r.speedup);
    }
    for (i, (n, best)) in buckets.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        println!(
            "  {:>3.0}-{:>3.0}% lowered: {:>5} pass, best {best:.2}x  {}",
            i as f64 * 10.0,
            (i + 1) as f64 * 10.0,
            n,
            "#".repeat((*n).min(60))
        );
    }

    // ---- per-stage timing + aggregate counters ------------------------
    let mut stage_ns: BTreeMap<&str, u64> = BTreeMap::new();
    let mut counters = Counters::new();
    for r in &records {
        for (k, v) in &r.stages {
            *stage_ns.entry(k.as_str()).or_insert(0) += v;
        }
        counters.merge(&r.counters);
    }
    if !stage_ns.is_empty() {
        println!();
        println!("== stage wall time (uncached evaluations) ==");
        for (stage, ns) in &stage_ns {
            println!(
                "  {stage:<12} {:>10.1} ms total, {:>8.3} ms/run",
                *ns as f64 / 1e6,
                *ns as f64 / 1e6 / misses.len().max(1) as f64
            );
        }
    }
    if !counters.is_empty() {
        println!();
        println!("== interpreter counters (all evaluations) ==");
        for (k, v) in counters.iter() {
            println!("  {k:<22} {v}");
        }
    }

    // ---- optional CSV export ------------------------------------------
    if let Some(path) = &args.csv {
        let mut csv =
            String::from("seq,cached,status,speedup,error,fraction_single,wrappers,wall_ms\n");
        for r in &records {
            let error = if r.error.is_finite() {
                format!("{:e}", r.error)
            } else {
                String::new()
            };
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.seq,
                r.cached,
                r.status,
                r.speedup,
                error,
                r.fraction_single,
                r.wrappers,
                r.wall_ms
            ));
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
