//! The service layer: `prose-served`'s durable job queue, restart
//! recovery, and HTTP/1.1 front end — dependency-free (`std::net` plus
//! the workspace's existing `serde_json`).
//!
//! ## Durability contract
//!
//! 1. **Ack-after-persist** — a submission is acknowledged only after the
//!    job's directory (`jobs/<id>/{spec.json, program.f90}`) is fully
//!    written, fsynced, and atomically renamed into place, and its
//!    `queued` transition is in the job-state WAL. A `kill -9` at any
//!    instant leaves either no job or a recoverable one — never a
//!    half-acknowledged one.
//! 2. **Restart recovery** — on startup the daemon scans the jobs
//!    directory: orphaned `.tmp-*` submissions are discarded (they were
//!    never acknowledged), terminal jobs serve their cached results, and
//!    every `queued`/`running` job is re-queued after its trial journal
//!    is repaired ([`prose_trace::Journal::load_repair`]); resumed jobs
//!    replay journaled trials from the evaluator's preloaded cache, so an
//!    interrupted search finishes with **zero duplicate interpreter
//!    evaluations** and a final configuration byte-identical to an
//!    uninterrupted run.
//! 3. **Idempotent submission** — job ids are content-addressed
//!    ([`prose_core::job_id_for`]): resubmitting identical content
//!    returns the existing job (HTTP 200, not 201), and a completed job
//!    answers instantly from its persisted `result.json`.
//! 4. **Graceful degradation** — the pending queue is bounded; a full
//!    queue rejects new work with HTTP 429 instead of accepting jobs it
//!    may lose. On SIGTERM/SIGINT the daemon stops accepting, gives
//!    in-flight jobs a drain window, then cancels them at an evaluation
//!    boundary — cancelled-for-drain jobs checkpoint back to `queued`,
//!    so the next process resumes them from their journals.
//!
//! Live progress is streamed as server-sent events by tailing the job's
//! JSONL trial journal ([`prose_trace::JournalTail`]): the journal **is**
//! the event format.

use prose_core::job::{job_id_for, run_job, JobError, JobRequest, JobResult, JobSpec};
use prose_trace::jobstate::{append_state, current_state, JobState};
use prose_trace::{Journal, JournalTail};
use serde::Serialize;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-wide signal latch, dependency-free: `std` already links libc
/// on Unix, so the raw `signal(2)` binding costs nothing. Handlers only
/// store into an atomic — every loop in this crate polls. (glibc's
/// `signal` installs BSD semantics with `SA_RESTART`, so nothing here may
/// rely on syscalls being interrupted; the accept loop is non-blocking
/// and every wait is a bounded timeout.)
pub mod signals {
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    static PENDING: AtomicUsize = AtomicUsize::new(0);

    #[cfg(unix)]
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        // Async-signal-safe: a single atomic store.
        PENDING.store(signum as usize, Ordering::SeqCst);
    }

    /// Install the latch for SIGINT and SIGTERM. No-op off Unix.
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    /// The most recent latched signal, if any (not cleared).
    pub fn pending() -> Option<i32> {
        match PENDING.load(Ordering::SeqCst) {
            0 => None,
            s => Some(s as i32),
        }
    }

    /// Latch a signal from process context (tests, in-process shutdown).
    pub fn raise(signum: i32) {
        PENDING.store(signum as usize, Ordering::SeqCst);
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`port 0` = ephemeral; see [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Durable job store; created if missing.
    pub jobs_dir: PathBuf,
    /// Pending-queue bound: submissions beyond it get HTTP 429.
    pub queue_cap: usize,
    /// Concurrent job runners (each job may itself use a worker pool).
    pub runners: usize,
    /// SIGTERM drain window before in-flight jobs are checkpointed.
    pub drain_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            jobs_dir: PathBuf::from("jobs"),
            queue_cap: 64,
            runners: 1,
            drain_ms: 2_000,
        }
    }
}

/// What the recovery scan found at startup.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Jobs re-queued (were `queued` or `running` when the last process
    /// died).
    pub resumed: Vec<String>,
    /// Terminal jobs now serving cached results.
    pub finished: usize,
    /// Damaged journal lines quarantined during repair.
    pub quarantined: u64,
    /// Unacknowledged `.tmp-*` submission leftovers discarded.
    pub discarded_tmp: usize,
}

struct Inner {
    jobs_dir: PathBuf,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    queue_cap: usize,
    /// Serializes the exists-check → persist → enqueue submission path,
    /// so N concurrent identical submissions create exactly one job.
    submit_lock: Mutex<()>,
    /// Cancel tokens of currently running jobs, plus explicit client
    /// cancel requests (to distinguish them from drain checkpoints).
    running: Mutex<HashMap<String, Arc<AtomicBool>>>,
    cancel_requested: Mutex<HashSet<String>>,
    shutdown: AtomicBool,
    draining: AtomicBool,
    submitted: AtomicU64,
    duplicates: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
}

impl Inner {
    fn job_dir(&self, id: &str) -> PathBuf {
        self.jobs_dir.join(id)
    }

    fn state_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("state.jsonl")
    }

    fn journal_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("journal.jsonl")
    }

    fn result_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("result.json")
    }

    fn job_exists(&self, id: &str) -> bool {
        self.job_dir(id).join("spec.json").is_file()
    }

    fn state_of(&self, id: &str) -> JobState {
        current_state(self.state_path(id)).unwrap_or(JobState::Queued)
    }

    fn result_of(&self, id: &str) -> Option<JobResult> {
        let text = std::fs::read_to_string(self.result_path(id)).ok()?;
        serde_json::from_str(&text).ok()
    }
}

/// The daemon: bound listener + durable queue + runner pool.
pub struct Server {
    inner: Arc<Inner>,
    listener: TcpListener,
    runner_handles: Vec<std::thread::JoinHandle<()>>,
    recovery: RecoveryReport,
    drain_ms: u64,
}

impl Server {
    /// Bind, recover persisted jobs, and start the runner pool. Returns
    /// with the listener live; call [`Server::run`] to serve.
    pub fn new(config: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.jobs_dir)?;
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            jobs_dir: config.jobs_dir.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_cap: config.queue_cap.max(1),
            submit_lock: Mutex::new(()),
            running: Mutex::new(HashMap::new()),
            cancel_requested: Mutex::new(HashSet::new()),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let recovery = recover_jobs(&inner)?;
        let runner_handles = (0..config.runners.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || runner_loop(&inner))
            })
            .collect();
        Ok(Server {
            inner,
            listener,
            runner_handles,
            recovery,
            drain_ms: config.drain_ms,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// What startup recovery found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Ask the daemon to drain and exit (same path as SIGTERM).
    pub fn request_shutdown(&self) {
        signals::raise(signals::SIGTERM);
    }

    /// Serve until SIGINT/SIGTERM, then drain: stop accepting, give
    /// in-flight jobs `drain_ms` to finish, checkpoint the rest back to
    /// `queued`, flush every WAL, and return cleanly.
    pub fn run(mut self) -> io::Result<()> {
        while signals::pending().is_none() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || handle_connection(&inner, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => return Err(e),
            }
        }
        eprintln!(
            "[prose-served] signal {:?}: draining ({} ms window)",
            signals::pending(),
            self.drain_ms
        );
        // Stop pulling queued work, but let in-flight jobs finish within
        // the drain window.
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        let deadline = Instant::now() + Duration::from_millis(self.drain_ms);
        while Instant::now() < deadline {
            if lock_plain(&self.inner.running).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Window over: cancel the stragglers at their next evaluation
        // boundary; they checkpoint back to `queued` for the next process.
        for token in lock_plain(&self.inner.running).values() {
            token.store(true, Ordering::SeqCst);
        }
        for h in self.runner_handles.drain(..) {
            let _ = h.join();
        }
        eprintln!("[prose-served] drained; exiting");
        Ok(())
    }
}

fn lock_plain<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Startup scan: discard unacknowledged tmp dirs, re-queue every
/// non-terminal job (repairing its journal first), count the rest.
fn recover_jobs(inner: &Arc<Inner>) -> io::Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    let mut ids: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&inner.jobs_dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(".tmp-") {
            // Never acknowledged: the client was told nothing, so there
            // is nothing to recover.
            let _ = std::fs::remove_dir_all(entry.path());
            report.discarded_tmp += 1;
            continue;
        }
        if entry.path().join("spec.json").is_file() {
            ids.push(name);
        }
    }
    ids.sort();
    for id in ids {
        let state = inner.state_of(&id);
        if state.is_terminal() {
            report.finished += 1;
            continue;
        }
        // `running` means the last process died mid-job; its journal may
        // end in a torn line or injected damage. Repair before resuming
        // so the evaluator's preload sees every intact trial.
        let rep = Journal::load_repair_or_empty(inner.journal_path(&id))
            .map_err(|e| io::Error::new(e.kind(), format!("repairing job {id}: {e}")))?;
        report.quarantined += u64::from(rep.damaged());
        if state == JobState::Running {
            append_state(
                inner.state_path(&id),
                JobState::Queued,
                "recovered after restart",
            )?;
        }
        lock_plain(&inner.queue).push_back(id.clone());
        report.resumed.push(id);
    }
    inner.queue_cv.notify_all();
    Ok(report)
}

/// One runner thread: pull job ids until shutdown.
fn runner_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut q = lock_plain(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    break id;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        };
        run_one(inner, &id);
    }
}

/// Execute one queued job end to end, journaling every state transition.
fn run_one(inner: &Arc<Inner>, id: &str) {
    let cancel = Arc::new(AtomicBool::new(false));
    {
        // Registration and the terminal-state check share the `running`
        // lock with the cancel endpoint: either the cancel lands first
        // (we observe a terminal state and skip) or we register first
        // (the endpoint flips our token). No lost cancels.
        let mut running = lock_plain(&inner.running);
        if inner.state_of(id).is_terminal() {
            return;
        }
        running.insert(id.to_string(), Arc::clone(&cancel));
    }
    if lock_plain(&inner.cancel_requested).contains(id) {
        cancel.store(true, Ordering::SeqCst);
    }
    let request = match load_request(&inner.job_dir(id)) {
        Ok(r) => r,
        Err(e) => {
            let _ = append_state(inner.state_path(id), JobState::Failed, &e);
            lock_plain(&inner.running).remove(id);
            return;
        }
    };
    let _ = append_state(inner.state_path(id), JobState::Running, "");
    let outcome = run_job(&request, &inner.journal_path(id), Some(Arc::clone(&cancel)));
    lock_plain(&inner.running).remove(id);
    match outcome {
        Ok(result) => {
            // Result before state: `done` in the WAL implies result.json
            // exists. A kill between them leaves `running`, and the next
            // process re-runs the job as pure cache replay.
            if let Err(e) = persist_result(&inner.result_path(id), &result) {
                let _ = append_state(
                    inner.state_path(id),
                    JobState::Failed,
                    &format!("persisting result: {e}"),
                );
                return;
            }
            let _ = append_state(inner.state_path(id), JobState::Done, "");
            inner.completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::Cancelled) => {
            let explicit = lock_plain(&inner.cancel_requested).remove(id);
            if !explicit && inner.draining.load(Ordering::SeqCst) {
                // Drain checkpoint: back to `queued`; the next process
                // resumes from the journal with zero duplicate work.
                let _ = append_state(
                    inner.state_path(id),
                    JobState::Queued,
                    "checkpointed by drain",
                );
            } else {
                let _ = append_state(inner.state_path(id), JobState::Cancelled, "client cancel");
            }
        }
        Err(e) => {
            let _ = append_state(inner.state_path(id), JobState::Failed, &e.to_string());
        }
    }
}

fn load_request(dir: &Path) -> Result<JobRequest, String> {
    let spec_text = std::fs::read_to_string(dir.join("spec.json"))
        .map_err(|e| format!("reading spec.json: {e}"))?;
    let spec = JobSpec::parse(&spec_text)?;
    let program = std::fs::read_to_string(dir.join("program.f90"))
        .map_err(|e| format!("reading program.f90: {e}"))?;
    Ok(JobRequest { program, spec })
}

/// Write `result.json` durably: tmp file, fsync, atomic rename.
fn persist_result(path: &Path, result: &JobResult) -> io::Result<()> {
    let text = serde_json::to_string_pretty(result)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Fsync a directory so a just-renamed entry survives power loss.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// The ack-after-persist submission path. Returns `(id, created)`; the
/// `Err` branch is an HTTP status + message.
fn submit(inner: &Arc<Inner>, request: &JobRequest) -> Result<(String, bool), (u16, String)> {
    let id = job_id_for(&request.program, &request.spec);
    let _guard = lock_plain(&inner.submit_lock);
    if inner.job_exists(&id) {
        inner.duplicates.fetch_add(1, Ordering::Relaxed);
        return Ok((id, false));
    }
    if lock_plain(&inner.queue).len() >= inner.queue_cap {
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        return Err((
            429,
            format!("queue full ({} pending); retry later", inner.queue_cap),
        ));
    }
    // Persist into a tmp dir, fsync everything, then atomically rename:
    // the job becomes visible all-or-nothing.
    let tmp = inner
        .jobs_dir
        .join(format!(".tmp-{id}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let persist = (|| -> io::Result<()> {
        std::fs::create_dir_all(&tmp)?;
        for (name, contents) in [
            ("spec.json", request.spec.canonical()),
            ("program.f90", request.program.clone()),
        ] {
            let mut f = std::fs::File::create(tmp.join(name))?;
            f.write_all(contents.as_bytes())?;
            f.sync_all()?;
        }
        fsync_dir(&tmp)?;
        std::fs::rename(&tmp, inner.job_dir(&id))?;
        fsync_dir(&inner.jobs_dir)?;
        append_state(inner.state_path(&id), JobState::Queued, "")
    })();
    if let Err(e) = persist {
        let _ = std::fs::remove_dir_all(&tmp);
        return Err((500, format!("persisting job: {e}")));
    }
    lock_plain(&inner.queue).push_back(id.clone());
    inner.queue_cv.notify_all();
    inner.submitted.fetch_add(1, Ordering::Relaxed);
    Ok((id, true))
}

// ---------------------------------------------------------------------
// HTTP front end (hand-rolled HTTP/1.1, `Connection: close` throughout).
// ---------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad request line",
        ));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
    }
    // Bound request bodies (16 MiB): graceful degradation includes not
    // buffering an unbounded upload.
    if content_length > 16 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

fn write_response(stream: &mut TcpStream, code: u16, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(code),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

fn write_json<T: Serialize>(stream: &mut TcpStream, code: u16, body: &T) {
    let body = serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string());
    write_response(stream, code, "application/json", body.as_bytes());
}

/// `{"error": "..."}` — every non-2xx body.
#[derive(Serialize)]
struct ErrorBody {
    error: String,
}

fn write_error(stream: &mut TcpStream, code: u16, error: impl Into<String>) {
    write_json(
        stream,
        code,
        &ErrorBody {
            error: error.into(),
        },
    );
}

/// `GET /jobs/<id>` (and submission) response body.
#[derive(Serialize)]
struct StatusBody {
    id: String,
    state: String,
    detail: String,
    result: Option<JobResult>,
    created: Option<bool>,
}

/// `GET /healthz` response body.
#[derive(Serialize)]
struct HealthBody {
    status: String,
    queued: usize,
    running: usize,
    submitted: u64,
    duplicates: u64,
    rejected: u64,
    completed: u64,
    draining: bool,
}

/// One entry of the `GET /jobs` listing.
#[derive(Serialize)]
struct JobEntry {
    id: String,
    state: String,
}

#[derive(Serialize)]
struct JobsBody {
    jobs: Vec<JobEntry>,
}

/// `POST /jobs/<id>/cancel` response body.
#[derive(Serialize)]
struct CancelBody {
    id: String,
    state: String,
}

fn status_body(inner: &Inner, id: &str, created: Option<bool>) -> StatusBody {
    let state = inner.state_of(id);
    let detail = prose_trace::jobstate::load_states(inner.state_path(id))
        .ok()
        .and_then(|s| s.last().map(|r| r.detail.clone()))
        .unwrap_or_default();
    let result = (state == JobState::Done)
        .then(|| inner.result_of(id))
        .flatten();
    StatusBody {
        id: id.to_string(),
        state: state.name().to_string(),
        detail,
        result,
        created,
    }
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let body = HealthBody {
                status: "ok".to_string(),
                queued: lock_plain(&inner.queue).len(),
                running: lock_plain(&inner.running).len(),
                submitted: inner.submitted.load(Ordering::Relaxed),
                duplicates: inner.duplicates.load(Ordering::Relaxed),
                rejected: inner.rejected.load(Ordering::Relaxed),
                completed: inner.completed.load(Ordering::Relaxed),
                draining: inner.draining.load(Ordering::SeqCst),
            };
            write_json(&mut stream, 200, &body);
        }
        ("POST", ["jobs"]) => {
            let job = match std::str::from_utf8(&request.body)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    serde_json::from_str::<JobRequest>(text).map_err(|e| e.to_string())
                }) {
                Ok(j) => j,
                Err(e) => {
                    write_error(&mut stream, 400, format!("bad request: {e}"));
                    return;
                }
            };
            if inner.draining.load(Ordering::SeqCst) {
                write_error(&mut stream, 429, "draining; retry later");
                return;
            }
            match submit(inner, &job) {
                Ok((id, created)) => {
                    let body = status_body(inner, &id, Some(created));
                    write_json(&mut stream, if created { 201 } else { 200 }, &body);
                }
                Err((code, msg)) => write_error(&mut stream, code, msg),
            }
        }
        ("GET", ["jobs"]) => {
            let mut ids: Vec<String> = std::fs::read_dir(&inner.jobs_dir)
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .filter(|e| e.path().join("spec.json").is_file())
                        .map(|e| e.file_name().to_string_lossy().into_owned())
                        .collect()
                })
                .unwrap_or_default();
            ids.sort();
            let jobs = ids
                .into_iter()
                .map(|id| {
                    let state = inner.state_of(&id).name().to_string();
                    JobEntry { id, state }
                })
                .collect();
            write_json(&mut stream, 200, &JobsBody { jobs });
        }
        ("GET", ["jobs", id]) => {
            if !inner.job_exists(id) {
                write_error(&mut stream, 404, "no such job");
                return;
            }
            write_json(&mut stream, 200, &status_body(inner, id, None));
        }
        ("GET", ["jobs", id, "events"]) => {
            if !inner.job_exists(id) {
                write_error(&mut stream, 404, "no such job");
                return;
            }
            stream_events(inner, &mut stream, id);
        }
        ("POST", ["jobs", id, "cancel"]) => {
            if !inner.job_exists(id) {
                write_error(&mut stream, 404, "no such job");
                return;
            }
            let state = {
                let running = lock_plain(&inner.running);
                let state = inner.state_of(id);
                if state.is_terminal() {
                    state
                } else {
                    lock_plain(&inner.cancel_requested).insert(id.to_string());
                    if let Some(token) = running.get(*id) {
                        // Running: the runner observes the token at its
                        // next evaluation boundary and journals the
                        // cancellation itself.
                        token.store(true, Ordering::SeqCst);
                        state
                    } else {
                        // Still queued: journal the cancel now; the
                        // runner skips terminal jobs.
                        let _ = append_state(
                            inner.state_path(id),
                            JobState::Cancelled,
                            "client cancel",
                        );
                        lock_plain(&inner.cancel_requested).remove(*id);
                        JobState::Cancelled
                    }
                }
            };
            let body = CancelBody {
                id: id.to_string(),
                state: state.name().to_string(),
            };
            write_json(&mut stream, 202, &body);
        }
        (_, ["jobs", ..]) | (_, ["healthz"]) => {
            write_error(&mut stream, 405, "method not allowed");
        }
        _ => {
            write_error(&mut stream, 404, "not found");
        }
    }
}

/// Server-sent events: every trial-journal line as a `data:` frame, then
/// one `state` event when the job reaches a terminal state.
fn stream_events(inner: &Arc<Inner>, stream: &mut TcpStream, id: &str) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut tail = JournalTail::new(inner.journal_path(id));
    loop {
        match tail.poll() {
            Ok(lines) => {
                for line in lines {
                    if stream
                        .write_all(format!("data: {line}\n\n").as_bytes())
                        .is_err()
                    {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
        if stream.flush().is_err() {
            return;
        }
        let state = inner.state_of(id);
        if state.is_terminal() {
            let _ = stream.write_all(
                format!("event: state\ndata: {{\"state\":\"{}\"}}\n\n", state.name()).as_bytes(),
            );
            let _ = stream.flush();
            return;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_cap >= 1);
        assert!(c.runners >= 1);
        assert_eq!(c.addr.ip().to_string(), "127.0.0.1");
    }

    #[test]
    fn status_text_covers_served_codes() {
        for code in [200, 201, 202, 400, 404, 405, 429] {
            assert_ne!(status_text(code), "Internal Server Error", "{code}");
        }
        assert_eq!(status_text(500), "Internal Server Error");
    }
}
