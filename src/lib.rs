//! # prose — automated precision tuning for Fortran weather & climate models
//!
//! A from-scratch Rust reproduction of *"Toward Automated Precision Tuning
//! of Weather and Climate Models: A Case Study"* (SC 2024): the PROSE
//! pipeline for automated, performance-guided floating-point precision
//! tuning (FPPT) of Fortran programs, together with every substrate the
//! paper's evaluation depends on — a Fortran front end, static analyses, a
//! source-to-source transformer with wrapper synthesis, a mixed-precision
//! interpreter with an analytical performance model, the delta-debugging
//! search, and miniature MPAS-A / ADCIRC / MOM6 workloads.
//!
//! This crate is a facade: it re-exports the workspace members so
//! downstream users can depend on one crate.
//!
//! ```
//! use prose::models::{funarc, ModelSize};
//! use prose::core::tuner::{tune_brute_force, PerfScope};
//!
//! // The paper's motivating example: enumerate all 256 funarc variants.
//! let model = funarc::funarc(ModelSize::Small).load().unwrap();
//! let task = model.task(PerfScope::WholeModel, 7).unwrap();
//! let outcome = tune_brute_force(&task).unwrap();
//! assert_eq!(outcome.search.trace.len(), 256);
//! let best = outcome.search.best.unwrap();
//! assert!(best.outcome.speedup > 1.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Workspace crate | Role |
//! |---|---|---|
//! | [`fortran`] | `prose-fortran` | lexer, parser, AST, sema, unparser |
//! | [`analysis`] | `prose-analysis` | flow graph, taint reduction, vectorization legality, static cost |
//! | [`interp`] | `prose-interp` | mixed-precision interpreter + cost model + GPTL-style timers |
//! | [`transform`] | `prose-transform` | declaration rewriting + wrapper synthesis + diffs |
//! | [`search`] | `prose-search` | delta debugging, brute force, random baseline |
//! | [`core`] | `prose-core` | the end-to-end tuning pipeline (Figure 1) |
//! | [`models`] | `prose-models` | the four embedded mini-models |
//! | [`trace`] | `prose-trace` | trial journal, stage clocks, metric counters |
//! | [`faults`] | `prose-faults` | deterministic fault injection for robustness testing |
//! | [`serve`] | (this crate) | `prose-served`'s durable job queue + HTTP front end |

pub mod serve;

pub use prose_analysis as analysis;
pub use prose_core as core;
pub use prose_faults as faults;
pub use prose_fortran as fortran;
pub use prose_interp as interp;
pub use prose_models as models;
pub use prose_search as search;
pub use prose_trace as trace;
pub use prose_transform as transform;
