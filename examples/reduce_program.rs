//! Taint-based program reduction (Section III-C): extract the minimal
//! sub-program needed to transform a set of target variables — the trick
//! the paper used to feed ROSE only code it could handle.
//!
//! Run: `cargo run --release --example reduce_program`

use prose::analysis::reduce_program;
use prose::models::{adcirc, ModelSize};

fn main() {
    let model = adcirc::adcirc(ModelSize::Small)
        .load()
        .expect("mini-ADCIRC loads");
    let full_text = prose::fortran::unparse(&model.program);

    // Target just the solver driver's convergence parameters.
    let jcg = model.index.scope_of_procedure("jcg").expect("jcg exists");
    let targets: Vec<_> = ["delnnm", "delnn_old", "rho"]
        .iter()
        .filter_map(|n| model.index.fp_var_id(jcg, n))
        .collect();
    println!(
        "targets: {:?}",
        targets
            .iter()
            .map(|t| model.index.fp_var_path(*t))
            .collect::<Vec<_>>()
    );

    let reduced = reduce_program(&model.program, &model.index, &targets);
    let reduced_text = prose::fortran::unparse(&reduced);
    println!(
        "\nfull program: {} lines | reduced program: {} lines",
        full_text.lines().count(),
        reduced_text.lines().count()
    );

    // The reduction keeps exactly what a transformer needs: declarations,
    // the statements passing targets to calls, and their transitive defs.
    println!("\n--- reduced program ---\n{reduced_text}");

    // It is still a valid program: parse + re-analyze.
    let reparsed = prose::fortran::parse_program(&reduced_text).expect("reduced parses");
    prose::fortran::analyze(&reparsed).expect("reduced analyzes");
    println!("reduced program re-parses and re-analyzes: ok");
}
