//! The headline experiment of the paper, end to end: tune the mini-MPAS-A
//! hotspot with the delta-debugging search, then contrast hotspot-guided
//! and whole-model-guided results (Sections IV-B vs IV-C).
//!
//! Run: `cargo run --release --example tune_mpas`

use prose::core::tuner::{tune, PerfScope};
use prose::models::{mpas, ModelSize};

fn main() {
    let size = ModelSize::Small; // switch to ModelSize::Paper for the full runs
    let model = mpas::mpas_a(size).load().expect("mini-MPAS loads");
    println!(
        "mini-MPAS-A: {} search atoms in the atm_time_integration work routines",
        model.atoms.len()
    );

    // Section IV-B: hotspot-guided search.
    let task = model.task(PerfScope::Hotspot, 11).unwrap();
    println!("\n=== hotspot-guided search (Figure 5 / Table II) ===");
    let hot = tune(&task).expect("baseline runs");
    let s = hot.search.status_summary();
    println!(
        "explored {} variants | pass {:.0}% fail {:.0}% timeout {:.0}% | best {:.2}x",
        s.total,
        s.pct(s.pass),
        s.pct(s.fail),
        s.pct(s.timeout),
        s.best_speedup
    );
    println!(
        "baseline hotspot share: {:.0}% of total cycles",
        100.0 * hot.hotspot_share
    );
    let high: Vec<String> = hot
        .search
        .final_config
        .iter()
        .enumerate()
        .filter(|(_, low)| !**low)
        .map(|(i, _)| model.index.fp_var_path(task.atoms[i]))
        .collect();
    println!("1-minimal 64-bit set ({}): {:?}", high.len(), high);

    // Section IV-C: the same tuning guided by whole-model time.
    let task_w = model.task(PerfScope::WholeModel, 11).unwrap();
    println!("\n=== whole-model-guided search (Figure 7) ===");
    let whole = tune(&task_w).expect("baseline runs");
    let sw = whole.search.status_summary();
    println!(
        "explored {} variants | best {:.2}x (hotspot-guided best was {:.2}x)",
        sw.total, sw.best_speedup, s.best_speedup
    );
    println!(
        "the gap is the casting overhead of moving full-precision state into the\n\
         reduced-precision hotspot every call — the paper's accelerator-offload analogy"
    );

    // Show the two most interesting variants' cluster structure.
    println!("\nhotspot-guided variant clusters (fraction 32-bit -> speedup):");
    let mut completed: Vec<_> = hot
        .variants
        .iter()
        .filter(|v| v.outcome.speedup > 0.0)
        .collect();
    completed.sort_by(|a, b| a.fraction_single.total_cmp(&b.fraction_single));
    for v in completed.iter().step_by((completed.len() / 12).max(1)) {
        println!(
            "  {:>4.0}% 32-bit -> {:>5.2}x ({:?})",
            v.fraction_single * 100.0,
            v.outcome.speedup,
            v.outcome.status
        );
    }
}
