//! Inspect the anatomy of a single mixed-precision variant: the
//! transformation (declaration rewrites + synthesized wrappers), the flow-
//! graph invariant, the static cost estimate, and the dynamic measurement —
//! on the mini-MOM6 "variant 58" scenario from Section IV-B, where
//! `zonal_mass_flux` keeps its large arrays in 64-bit while its callees run
//! in 32-bit and casting eats the run.
//!
//! Run: `cargo run --release --example inspect_variant`

use prose::analysis::flow::FpFlowGraph;
use prose::analysis::static_cost::static_penalty;
use prose::core::tuner::PerfScope;
use prose::core::DynamicEvaluator;
use prose::fortran::PrecisionMap;
use prose::models::{mom6, ModelSize};

fn main() {
    let model = mom6::mom6(ModelSize::Small)
        .load()
        .expect("mini-MOM6 loads");
    let task = model.task(PerfScope::Hotspot, 58).unwrap();
    let eval = DynamicEvaluator::new(&task).expect("baseline runs");

    // Variant 58's shape: zonal_mass_flux stays 64-bit, its callees
    // (ppm_reconstruction, ppm_limit_pos, the adjusters, row_transport)
    // go 32-bit.
    let keep_f64 = "zonal_mass_flux";
    let config: Vec<bool> = model
        .atoms
        .iter()
        .map(|a| {
            let scope = model
                .index
                .scope_info(model.index.fp_var(*a).scope)
                .name
                .clone();
            scope != keep_f64 && scope != "continuity_ppm" && scope != "merid_mass_flux"
        })
        .collect();
    let lowered = config.iter().filter(|b| **b).count();
    println!(
        "variant: {} of {} atoms lowered (callees 32-bit, flux assemblers 64-bit)",
        lowered,
        config.len()
    );

    // Static view: the flow graph shows the mismatched parameter-passing
    // edges, and the cost model prices them (calls x elements).
    let map = {
        let mut m = PrecisionMap::declared(&model.index);
        for (i, low) in config.iter().enumerate() {
            if *low {
                m.set(model.atoms[i], prose::fortran::ast::FpPrecision::Single);
            }
        }
        m
    };
    let graph = FpFlowGraph::build(&model.program, &model.index);
    let mismatches = graph.mismatches(&model.index, &map);
    println!(
        "\nflow graph: {} call sites, {} precision-mismatched edges",
        graph.sites().len(),
        mismatches.len()
    );
    for m in mismatches.iter().take(8) {
        let site = &graph.sites()[m.site];
        println!(
            "  {} -> {} arg #{} `{}` ({} -> {} bit{})",
            model.index.scope_info(site.caller).name,
            site.callee,
            m.arg_index + 1,
            m.param,
            m.caller_precision.kind() as u32 * 8,
            m.callee_precision.kind() as u32 * 8,
            if m.is_array { ", array" } else { "" }
        );
    }
    println!(
        "static casting penalty estimate: {:.0} cycle units",
        static_penalty(&graph, &model.index, &map)
    );

    // Transform: see the wrappers that repair those edges.
    let variant =
        prose::transform::make_variant(&model.program, &model.index, &map).expect("transforms");
    println!("\nsynthesized wrappers: {:?}", variant.wrappers);
    let g2 = FpFlowGraph::build(&variant.program, &variant.index);
    let clean = g2.invariant_holds(&variant.index, &PrecisionMap::declared(&variant.index));
    println!("post-transform flow invariant holds: {clean}");

    // Dynamic view: measure it.
    let rec = eval.eval_one(&config);
    println!(
        "\ndynamic evaluation: {:?}, hotspot speedup {:.2}x, error {:.2e}",
        rec.outcome.status, rec.outcome.speedup, rec.outcome.error
    );
    if let Some(total) = rec.total_cycles {
        let extra = (total - eval.baseline.total_cycles).max(0.0);
        println!(
            "whole-model cycles {:.0} vs baseline {:.0}: {:.0}% of the run is overhead
             (array casting at every wrapped call plus the devectorized flux loops)",
            total,
            eval.baseline.total_cycles,
            100.0 * extra / total
        );
    }
    if let Some(detail) = &rec.detail {
        println!("detail: {detail}");
    }
}
