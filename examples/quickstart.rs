//! Quickstart: tune your own Fortran program end to end.
//!
//! Feeds a small user-written Fortran model through the full Figure-1
//! cycle — search-space construction, delta-debugging search,
//! source-to-source transformation with wrapper synthesis, and dynamic
//! evaluation — and prints the resulting mixed-precision diff.
//!
//! Run: `cargo run --release --example quickstart`

use prose::core::metrics::CorrectnessMetric;
use prose::core::tuner::{config_to_map, tune, ModelSpec, PerfScope};
use prose::transform::diff::changed_hunks;

const USER_MODEL: &str = r#"
module heat
contains
  ! An explicit heat-equation step with an energy-conservation fixer whose
  ! reference offset makes it precision-sensitive: the fixer is a
  ! catastrophic cancellation that recovers ~0 in 64-bit but an O(1e-3)
  ! artifact in 32-bit. It is per-call scalar work, so keeping it in
  ! 64-bit costs nothing — the kind of variable the search isolates.
  subroutine heat_step(t, tnew, n, alpha)
    real(kind=8), intent(in) :: t(0:n+1)
    real(kind=8), intent(out) :: tnew(0:n+1)
    integer, intent(in) :: n
    real(kind=8), intent(in) :: alpha
    real(kind=8) :: lap, ref0, esum, corr
    integer :: i
    esum = 0.0d0
    do i = 1, n
      lap = t(i+1) - 2.0d0 * t(i) + t(i-1)
      tnew(i) = t(i) + alpha * lap
      esum = esum + lap * lap
    end do
    ! conservation fixer against a reference energy (the knob):
    ref0 = 1.0d4
    corr = ((ref0 + esum) - ref0 - esum) * 10.0d0
    do i = 1, n
      tnew(i) = tnew(i) + corr
    end do
    tnew(0) = t(0)
    tnew(n+1) = t(n+1)
  end subroutine heat_step
end module heat
program main
  use heat
  implicit none
  integer :: n, steps, i, s
  real(kind=8) :: t(0:202), tnew(0:202), alpha
  n = 200
  steps = 60
  alpha = 0.2d0
  do i = 0, n + 1
    t(i) = 300.0d0 + 10.0d0 * exp(-((i - 100) * 0.05d0) ** 2)
  end do
  do s = 1, steps
    call heat_step(t, tnew, n, alpha)
    do i = 0, n + 1
      t(i) = tnew(i)
    end do
    ! driver-side work so the hotspot is a minority share
    do i = 1, n
      tnew(i) = tnew(i) + 1.0d-9 * sin(0.01d0 * i) * cos(0.02d0 * s)
    end do
  end do
  call prose_record_array('t', t)
end program main
"#;

fn main() {
    // 1. Describe the tuning experiment: target procedures, correctness
    //    metric, threshold, and the noise model for the speedup metric.
    let spec = ModelSpec {
        name: "heat".into(),
        source: USER_MODEL.into(),
        hotspot_module: "heat".into(),
        target_procs: vec!["heat_step".into()],
        metric: CorrectnessMetric::MaxOverSpaceL2OverTime {
            key: "t".into(),
            floor_frac: 0.01,
        },
        error_threshold: 1.0e-5,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec![],
    };

    // 2. Load: parse, analyze, and build the search space (FP declarations
    //    in the hotspot procedures).
    let model = spec.load().expect("model parses and analyzes");
    println!("search space: {} atoms", model.atoms.len());
    for a in &model.atoms {
        println!("  {}", model.index.fp_var_path(*a));
    }

    // 3. Tune: delta-debugging search with hotspot-scoped timing.
    let task = model.task(PerfScope::Hotspot, 42).unwrap();
    let outcome = tune(&task).expect("baseline runs");
    let summary = outcome.search.status_summary();
    println!(
        "\nexplored {} variants: {} pass / {} fail / {} error / {} timeout",
        summary.total, summary.pass, summary.fail, summary.error, summary.timeout
    );

    let best = outcome
        .search
        .best
        .as_ref()
        .expect("found an accepted variant");
    println!(
        "best variant: {:.2}x speedup, error {:.2e} ({} of {} vars still 64-bit)",
        best.outcome.speedup,
        best.outcome.error,
        best.config.iter().filter(|b| !**b).count(),
        best.config.len(),
    );
    println!("1-minimal: {}", outcome.search.one_minimal);

    // 4. Materialize the chosen variant as Fortran source and show the diff.
    let map = config_to_map(&model.index, &model.atoms, &outcome.search.final_config);
    let variant = prose::transform::make_variant(&model.program, &model.index, &map)
        .expect("variant transforms");
    println!("\n--- mixed-precision diff (final 1-minimal variant) ---");
    println!(
        "{}",
        changed_hunks(&prose::fortran::unparse(&model.program), &variant.text, 1)
    );
}
