//! # prose-faults
//!
//! Deterministic fault injection for the tuning pipeline.
//!
//! The paper's search must survive hostile variants by design: candidates
//! crash, produce NaN/Inf, time out, and timing noise near the acceptance
//! boundary walks the search into wrong minima. This crate supplies the
//! *adversary* for testing that posture — a seeded, per-trial fault plan
//! that the interpreter and evaluator consult:
//!
//! * **NaN/Inf results** ([`InjectedFault::NonFinite`]) — the interpreter
//!   aborts with a non-finite error after a drawn number of events.
//! * **Spurious timeouts** ([`InjectedFault::Timeout`]) — the interpreter
//!   reports a budget timeout that the cost model did not earn.
//! * **Mid-run aborts** ([`InjectedFault::Abort`]) — the interpreter
//!   panics mid-execution (payload [`InjectedAbort`]), exercising the
//!   evaluator's `catch_unwind` containment.
//! * **Event-loop hangs** ([`InjectedFault::Hang`]) — the interpreter
//!   stalls without advancing modeled state; only a wall-clock deadline
//!   can kill it, exercising the supervision layer end-to-end.
//! * **Amplified timing jitter** ([`TrialFaults::jitter_factors`]) — extra
//!   multiplicative log-normal noise on the measured cycles, stressing the
//!   median-of-n re-evaluation defense.
//! * **Journal corruption** ([`TrialFaults::corrupt_record`]) — the
//!   evaluator flips a byte in the serialized journal line for this trial,
//!   exercising CRC detection and `load_repair` quarantine.
//! * **Process kill** ([`FaultConfig::kill_after`]) — after N journal
//!   appends the evaluator raises an [`InjectedKill`] panic *outside* its
//!   containment boundary, standing in for `kill -9` in crash-safe-resume
//!   tests.
//!
//! Every decision is a pure function of `(config seed, trial id)`, so a
//! failing trial reproduces bit-for-bit given its journaled seed, and a
//! resumed search re-derives the same plan for every configuration.
//!
//! The crate is a leaf with no knowledge of Fortran, searches, or the
//! interpreter; it only hands out plans.

use serde::{Deserialize, Serialize};

/// Injection probabilities and amplitudes for one experiment.
///
/// All-zero (the [`Default`]) means no injection anywhere; components are
/// independent so a config can, say, inject only jitter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-trial probability of an injected non-finite result.
    pub nan: f64,
    /// Per-trial probability of a spurious timeout.
    pub timeout: f64,
    /// Per-trial probability of a mid-run abort (interpreter panic).
    pub abort: f64,
    /// Per-trial probability of an event-loop hang (stall that only a
    /// wall-clock deadline can kill; always pair with a deadline).
    #[serde(default)]
    pub hang: f64,
    /// Per-trial probability of flipping one byte in the trial's
    /// serialized journal record (detected by CRC, repaired by
    /// quarantine). Independent of the discrete interpreter faults.
    #[serde(default)]
    pub corrupt_record: f64,
    /// Relative standard deviation of extra multiplicative timing jitter
    /// (0 disables; compare the paper's 1%–9% observed run-time RSD).
    pub jitter: f64,
    /// Base seed; per-trial plans derive from `seed` and the trial id.
    pub seed: u64,
    /// Raise an uncontained [`InjectedKill`] panic once this many journal
    /// records have been appended (crash-safe-resume testing).
    pub kill_after: Option<u64>,
}

impl FaultConfig {
    /// Does this config inject anything at all?
    pub fn is_active(&self) -> bool {
        self.nan > 0.0
            || self.timeout > 0.0
            || self.abort > 0.0
            || self.hang > 0.0
            || self.corrupt_record > 0.0
            || self.jitter > 0.0
            || self.kill_after.is_some()
    }

    /// Parse a `key=value` comma list:
    /// `nan=0.1,timeout=0.05,abort=0.02,jitter=0.3,seed=7,kill-after=12`.
    ///
    /// Unknown keys, malformed numbers, and probabilities outside [0, 1]
    /// are errors; every key is optional.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |slot: &mut f64| -> Result<(), String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("fault spec `{key}`: bad number `{value}`"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fault spec `{key}`: probability {v} outside [0,1]"));
                }
                *slot = v;
                Ok(())
            };
            match key {
                "nan" => prob(&mut cfg.nan)?,
                "timeout" => prob(&mut cfg.timeout)?,
                "abort" => prob(&mut cfg.abort)?,
                "hang" => prob(&mut cfg.hang)?,
                "corrupt-record" | "corrupt_record" => prob(&mut cfg.corrupt_record)?,
                "jitter" => {
                    cfg.jitter = value
                        .parse()
                        .map_err(|_| format!("fault spec `jitter`: bad number `{value}`"))?;
                    if cfg.jitter.is_nan() || cfg.jitter < 0.0 {
                        return Err(format!("fault spec `jitter`: {value} must be >= 0"));
                    }
                }
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec `seed`: bad integer `{value}`"))?
                }
                "kill-after" | "kill_after" => {
                    cfg.kill_after =
                        Some(value.parse().map_err(|_| {
                            format!("fault spec `kill-after`: bad integer `{value}`")
                        })?)
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        if cfg.nan + cfg.timeout + cfg.abort + cfg.hang > 1.0 {
            return Err("fault probabilities nan+timeout+abort+hang exceed 1".into());
        }
        Ok(cfg)
    }

    /// Derive the deterministic fault plan for one configuration. The plan
    /// is a pure function of `(base seed, config contents)` — never of
    /// evaluation order or thread scheduling — so serial, parallel, and
    /// resumed searches all inject identical faults per configuration.
    pub fn plan_for_config(&self, config: &[bool]) -> TrialFaults {
        self.plan(config_hash(config))
    }

    /// [`FaultConfig::plan_for_config`] for a retry attempt. Attempt 0 is
    /// bit-identical to `plan_for_config` (so retry-off searches and old
    /// journals are unchanged); attempts 1.. derive independent streams,
    /// which is what makes an injected transient *transient* — a retried
    /// trial re-draws its fault. Still a pure function of
    /// `(seed, config, attempt)`, never of scheduling.
    pub fn plan_for_config_attempt(&self, config: &[bool], attempt: u32) -> TrialFaults {
        let h = config_hash(config);
        if attempt == 0 {
            self.plan(h)
        } else {
            self.plan(mix(h ^ u64::from(attempt).wrapping_mul(0xd1342543de82ef95)))
        }
    }

    /// Derive the deterministic fault plan for one trial. `trial_id` should
    /// identify the evaluated configuration (not the evaluation order), so
    /// a resumed search re-derives identical plans.
    pub fn plan(&self, trial_id: u64) -> TrialFaults {
        let seed = mix(self.seed ^ trial_id.wrapping_mul(0x9e3779b97f4a7c15));
        let mut state = seed;
        let u = unit(splitmix64(&mut state));
        // One discrete fault at most per trial, chosen by stacked ranges.
        let after_events = 1 + splitmix64(&mut state) % 2048;
        let fault = if u < self.nan {
            Some(InjectedFault::NonFinite { after_events })
        } else if u < self.nan + self.timeout {
            Some(InjectedFault::Timeout { after_events })
        } else if u < self.nan + self.timeout + self.abort {
            Some(InjectedFault::Abort { after_events })
        } else if u < self.nan + self.timeout + self.abort + self.hang {
            Some(InjectedFault::Hang { after_events })
        } else {
            None
        };
        // Independent draw, after the discrete-fault stream, so enabling
        // corruption never perturbs which interpreter fault a trial draws.
        let corrupt_record =
            self.corrupt_record > 0.0 && unit(splitmix64(&mut state)) < self.corrupt_record;
        TrialFaults {
            seed,
            fault,
            jitter_rsd: self.jitter,
            corrupt_record,
        }
    }
}

/// The injector's decision for one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialFaults {
    /// The derived per-trial seed — journaled so the trial reproduces.
    pub seed: u64,
    /// The discrete fault to fire inside the interpreter, if any.
    pub fault: Option<InjectedFault>,
    /// Amplitude of the extra timing jitter (0 = none).
    pub jitter_rsd: f64,
    /// Flip one byte in this trial's serialized journal record.
    pub corrupt_record: bool,
}

impl TrialFaults {
    /// Journal-facing name of the injected fault, if any (`nan`,
    /// `timeout`, `abort`, or `jitter` when only jitter is active).
    pub fn kind_name(&self) -> Option<&'static str> {
        match &self.fault {
            Some(InjectedFault::NonFinite { .. }) => Some("nan"),
            Some(InjectedFault::Timeout { .. }) => Some("timeout"),
            Some(InjectedFault::Abort { .. }) => Some("abort"),
            Some(InjectedFault::Hang { .. }) => Some("hang"),
            None if self.jitter_rsd > 0.0 => Some("jitter"),
            None => None,
        }
    }

    /// Deterministic byte-flip position for this trial's corrupted journal
    /// record: `(offset % len, bit)` derived from the trial seed. Never
    /// targets the final newline, so corruption damages the record itself
    /// rather than merging two lines.
    pub fn corrupt_at(&self, len: usize) -> Option<(usize, u8)> {
        if !self.corrupt_record || len == 0 {
            return None;
        }
        let mut state = mix(self.seed ^ 0x243f6a8885a308d3);
        let off = (splitmix64(&mut state) % len as u64) as usize;
        // Flip a low bit: enough to break JSON or the CRC, deterministic.
        let bit = 1u8 << (splitmix64(&mut state) % 7);
        Some((off, bit))
    }

    /// Deterministic multiplicative jitter factors for `n` measurement
    /// runs. A prefix-stable stream: `jitter_factors(m)` for `m > n`
    /// extends `jitter_factors(n)`, so the escalating median-of-n
    /// re-evaluation sees a growing sample of the *same* noise process.
    pub fn jitter_factors(&self, n: usize) -> Vec<f64> {
        if self.jitter_rsd == 0.0 {
            return vec![1.0; n];
        }
        let mut state = mix(self.seed ^ 0x6a09e667f3bcc909);
        (0..n)
            .map(|_| {
                // Box–Muller from two uniform draws; amplitude `jitter`.
                let u1 = unit(splitmix64(&mut state)).max(f64::EPSILON);
                let u2 = unit(splitmix64(&mut state));
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (self.jitter_rsd * z).exp()
            })
            .collect()
    }
}

/// A fault the interpreter fires mid-run. `after_events` counts
/// interpreter events; if the run finishes earlier the fault fires at
/// termination instead, so a planned fault always manifests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedFault {
    /// Abort with a non-finite-result error after `after_events` events.
    NonFinite { after_events: u64 },
    /// Abort with a spurious budget timeout after `after_events` events.
    Timeout { after_events: u64 },
    /// Panic (payload [`InjectedAbort`]) after `after_events` events.
    Abort { after_events: u64 },
    /// Stall the event loop after `after_events` events. The stall
    /// advances no modeled state and ignores the cycle budget and event
    /// limit — only a wall-clock deadline terminates it.
    Hang { after_events: u64 },
}

impl InjectedFault {
    pub fn after_events(&self) -> u64 {
        match self {
            InjectedFault::NonFinite { after_events }
            | InjectedFault::Timeout { after_events }
            | InjectedFault::Abort { after_events }
            | InjectedFault::Hang { after_events } => *after_events,
        }
    }
}

/// Panic payload of an injected mid-run abort. The evaluator's
/// `catch_unwind` containment downcasts to this to classify the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedAbort {
    /// Interpreter events executed when the abort fired.
    pub after_events: u64,
}

/// Panic payload of the kill switch ([`FaultConfig::kill_after`]). Raised
/// *outside* the evaluator's containment boundary — it deliberately tears
/// down the whole search, like a process kill, leaving only the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedKill {
    /// Journal records appended when the kill fired.
    pub appended: u64,
}

/// Order-independent hash of a precision configuration: FNV-1a over the
/// atom bits, finalized through the splitmix64 mixer so nearby configs
/// (one bit apart) land in unrelated fault-plan streams. This is the
/// trial-id scheme the evaluator feeds to [`FaultConfig::plan_for_config`];
/// it depends only on the configuration's contents, never on when or on
/// which worker the trial runs.
pub fn config_hash(config: &[bool]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in config {
        h ^= u64::from(*b) + 1;
        h = h.wrapping_mul(0x100000001b3);
    }
    mix(h)
}

/// Order-sensitive hash of arbitrary bytes: FNV-1a over the content,
/// finalized through the splitmix64 mixer — the byte-level sibling of
/// [`config_hash`]. This is the content-addressing primitive the service
/// layer uses to derive job ids from submissions (program + spec), so
/// identical submissions collapse to the same id across processes and
/// clients.
pub fn content_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a(0xcbf29ce484222325, bytes))
}

/// 128-bit content address over a sequence of byte parts, rendered as 32
/// lowercase hex digits. Parts are length-prefixed before hashing, so
/// `["ab", "c"]` and `["a", "bc"]` address different content. Two
/// independent FNV streams (the standard offset basis and a decorrelated
/// one) make accidental collisions implausible at any realistic job count.
pub fn content_id(parts: &[&[u8]]) -> String {
    let mut h1: u64 = 0xcbf29ce484222325;
    let mut h2: u64 = 0xcbf29ce484222325 ^ 0x9e3779b97f4a7c15;
    for part in parts {
        let len = (part.len() as u64).to_le_bytes();
        h1 = fnv1a(fnv1a(h1, &len), part);
        h2 = fnv1a(fnv1a(h2, &len), part);
    }
    format!("{:016x}{:016x}", mix(h1), mix(h2 ^ 0x6a09e667f3bcc909))
}

/// One FNV-1a round over `bytes`, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64: tiny, seedable, dependency-free PRNG step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    mix(*state)
}

fn mix(z: u64) -> u64 {
    let mut z = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Map a u64 to [0, 1).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive() {
        let cfg = FaultConfig::default();
        assert!(!cfg.is_active());
        assert_eq!(cfg.plan(7).fault, None);
        assert_eq!(cfg.plan(7).kind_name(), None);
        assert_eq!(cfg.plan(7).jitter_factors(3), vec![1.0; 3]);
    }

    #[test]
    fn parse_full_spec() {
        let cfg =
            FaultConfig::parse("nan=0.1,timeout=0.05,abort=0.02,jitter=0.3,seed=7,kill-after=12")
                .unwrap();
        assert_eq!(cfg.nan, 0.1);
        assert_eq!(cfg.timeout, 0.05);
        assert_eq!(cfg.abort, 0.02);
        assert_eq!(cfg.jitter, 0.3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.kill_after, Some(12));
        assert!(cfg.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultConfig::parse("nan").is_err());
        assert!(FaultConfig::parse("nan=2.0").is_err());
        assert!(FaultConfig::parse("nan=-0.5").is_err());
        assert!(FaultConfig::parse("wat=1").is_err());
        assert!(FaultConfig::parse("jitter=abc").is_err());
        assert!(FaultConfig::parse("nan=0.6,timeout=0.6").is_err());
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
    }

    #[test]
    fn plans_are_deterministic_per_trial() {
        let cfg = FaultConfig::parse("nan=0.3,timeout=0.3,abort=0.2,jitter=0.1,seed=42").unwrap();
        for trial in 0..50u64 {
            assert_eq!(cfg.plan(trial), cfg.plan(trial));
        }
        // Different trials draw different plans (overwhelmingly likely
        // across 200 trials at these probabilities).
        let distinct: std::collections::HashSet<_> = (0..200u64)
            .map(|t| format!("{:?}", cfg.plan(t).fault))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn fault_mix_roughly_matches_probabilities() {
        let cfg = FaultConfig::parse("nan=0.25,timeout=0.25,abort=0.25,seed=9").unwrap();
        let n = 4000;
        let mut counts = [0usize; 4]; // nan, timeout, abort, none
        for t in 0..n as u64 {
            match cfg.plan(t).fault {
                Some(InjectedFault::NonFinite { .. }) => counts[0] += 1,
                Some(InjectedFault::Timeout { .. }) => counts[1] += 1,
                Some(InjectedFault::Abort { .. }) => counts[2] += 1,
                Some(InjectedFault::Hang { .. }) => unreachable!("hang=0 here"),
                None => counts[3] += 1,
            }
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.05, "fault mix skewed: {counts:?}");
        }
    }

    #[test]
    fn jitter_stream_is_prefix_stable_and_roughly_sized() {
        let cfg = FaultConfig::parse("jitter=0.2,seed=3").unwrap();
        let plan = cfg.plan(11);
        assert_eq!(plan.kind_name(), Some("jitter"));
        let short = plan.jitter_factors(4);
        let long = plan.jitter_factors(16);
        assert_eq!(&long[..4], &short[..]);
        let big = plan.jitter_factors(4000);
        let mean = big.iter().sum::<f64>() / big.len() as f64;
        let rsd = (big.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / big.len() as f64)
            .sqrt()
            / mean;
        assert!((rsd - 0.2).abs() < 0.05, "observed jitter rsd {rsd}");
    }

    #[test]
    fn config_keyed_plans_ignore_evaluation_order() {
        // Regression: fault seeds are keyed by splitmix64(config hash),
        // not by arrival order. Evaluating the same configs in any
        // permutation must derive identical per-config plans.
        let cfg = FaultConfig::parse("nan=0.3,timeout=0.3,abort=0.2,jitter=0.1,seed=42").unwrap();
        let configs: Vec<Vec<bool>> = (0..32u32)
            .map(|i| (0..5).map(|b| i >> b & 1 == 1).collect())
            .collect();
        let forward: Vec<TrialFaults> = configs.iter().map(|c| cfg.plan_for_config(c)).collect();
        let mut backward: Vec<TrialFaults> = configs
            .iter()
            .rev()
            .map(|c| cfg.plan_for_config(c))
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
        // The plan seed is exactly splitmix64-mixed FNV over the bits.
        for (c, p) in configs.iter().zip(&forward) {
            assert_eq!(p.seed, cfg.plan(config_hash(c)).seed);
        }
        // Adjacent configs (Hamming distance 1) land in distinct streams.
        let seeds: std::collections::HashSet<u64> = forward.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), configs.len());
    }

    #[test]
    fn config_hash_is_order_and_content_sensitive() {
        assert_eq!(config_hash(&[true, false]), config_hash(&[true, false]));
        assert_ne!(config_hash(&[true, false]), config_hash(&[false, true]));
        assert_ne!(config_hash(&[]), config_hash(&[false]));
    }

    #[test]
    fn parse_hang_and_corrupt_record() {
        let cfg = FaultConfig::parse("hang=0.2,corrupt-record=0.5,seed=3").unwrap();
        assert_eq!(cfg.hang, 0.2);
        assert_eq!(cfg.corrupt_record, 0.5);
        assert!(cfg.is_active());
        assert!(FaultConfig::parse("hang=1.5").is_err());
        assert!(FaultConfig::parse("corrupt_record=-0.1").is_err());
        assert!(FaultConfig::parse("nan=0.5,timeout=0.3,hang=0.3").is_err());
        // hang=1.0 always injects a hang.
        let cfg = FaultConfig::parse("hang=1.0,seed=5").unwrap();
        for t in 0..50u64 {
            let p = cfg.plan(t);
            assert!(matches!(p.fault, Some(InjectedFault::Hang { .. })));
            assert_eq!(p.kind_name(), Some("hang"));
        }
    }

    #[test]
    fn new_fault_kinds_do_not_perturb_existing_draws() {
        // With hang=0 and corrupt-record=0 the per-trial discrete-fault
        // draw is bit-identical to a config that never heard of them —
        // the back-compat contract for old journals and retry-off runs.
        let base = FaultConfig::parse("nan=0.3,timeout=0.3,abort=0.2,jitter=0.1,seed=42").unwrap();
        let with = FaultConfig::parse(
            "nan=0.3,timeout=0.3,abort=0.2,jitter=0.1,seed=42,hang=0.0,corrupt-record=0.0",
        )
        .unwrap();
        for t in 0..200u64 {
            assert_eq!(base.plan(t), with.plan(t));
        }
        // Enabling corruption never changes which discrete fault fires.
        let corrupting = FaultConfig::parse(
            "nan=0.3,timeout=0.3,abort=0.2,jitter=0.1,seed=42,corrupt-record=1.0",
        )
        .unwrap();
        for t in 0..200u64 {
            assert_eq!(base.plan(t).fault, corrupting.plan(t).fault);
            assert!(corrupting.plan(t).corrupt_record);
        }
    }

    #[test]
    fn attempt_zero_plans_match_plan_for_config() {
        let cfg = FaultConfig::parse("nan=0.3,timeout=0.3,hang=0.2,seed=7").unwrap();
        let configs: Vec<Vec<bool>> = (0..32u32)
            .map(|i| (0..5).map(|b| i >> b & 1 == 1).collect())
            .collect();
        for c in &configs {
            assert_eq!(cfg.plan_for_config(c), cfg.plan_for_config_attempt(c, 0));
        }
        // Later attempts derive distinct, deterministic streams.
        let c = &configs[3];
        let a1 = cfg.plan_for_config_attempt(c, 1);
        let a2 = cfg.plan_for_config_attempt(c, 2);
        assert_eq!(a1, cfg.plan_for_config_attempt(c, 1));
        assert_ne!(a1.seed, a2.seed);
        assert_ne!(a1.seed, cfg.plan_for_config(c).seed);
        // A timeout=1.0 config stays faulted on every attempt (permanent
        // faults are permanent); a 50% fault clears on some attempt for
        // nearly every config (transients are transient).
        let always = FaultConfig::parse("timeout=1.0,seed=1").unwrap();
        for a in 0..4 {
            assert!(always.plan_for_config_attempt(c, a).fault.is_some());
        }
        let sometimes = FaultConfig::parse("timeout=0.5,seed=1").unwrap();
        let cleared = configs
            .iter()
            .filter(|c| (0..6).any(|a| sometimes.plan_for_config_attempt(c, a).fault.is_none()));
        assert!(cleared.count() >= 30);
    }

    #[test]
    fn corrupt_at_is_deterministic_and_in_bounds() {
        let cfg = FaultConfig::parse("corrupt-record=1.0,seed=11").unwrap();
        for t in 0..100u64 {
            let p = cfg.plan(t);
            assert!(p.corrupt_record);
            let (off, bit) = p.corrupt_at(257).unwrap();
            assert_eq!(p.corrupt_at(257), Some((off, bit)));
            assert!(off < 257);
            assert!(bit != 0 && bit < 0x80);
            assert_eq!(p.corrupt_at(0), None);
        }
        let clean = FaultConfig::default().plan(4);
        assert_eq!(clean.corrupt_at(100), None);
    }

    #[test]
    fn after_events_is_positive_and_bounded() {
        let cfg = FaultConfig::parse("nan=1.0,seed=5").unwrap();
        for t in 0..100u64 {
            let f = cfg.plan(t).fault.expect("nan=1.0 always injects");
            assert!((1..=2048).contains(&f.after_events()));
        }
    }

    #[test]
    fn content_hash_is_deterministic_and_content_sensitive() {
        assert_eq!(
            content_hash(b"program funarc"),
            content_hash(b"program funarc")
        );
        assert_ne!(
            content_hash(b"program funarc"),
            content_hash(b"program funarC")
        );
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        // Byte-level hashing is decoupled from the bool-vector hash: the
        // same logical content through either entry point need not agree,
        // but neither may drift (fault plans key off config_hash).
        assert_eq!(config_hash(&[true, false]), config_hash(&[true, false]));
    }

    #[test]
    fn content_id_is_stable_and_part_boundary_sensitive() {
        let id = content_id(&[b"spec", b"program"]);
        assert_eq!(id.len(), 32);
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(id, content_id(&[b"spec", b"program"]));
        // Length prefixing keeps part boundaries significant.
        assert_ne!(
            content_id(&[b"spec", b"program"]),
            content_id(&[b"specp", b"rogram"])
        );
        assert_ne!(
            content_id(&[b"spec", b"program"]),
            content_id(&[b"spec program"])
        );
        assert_ne!(content_id(&[b"", b"x"]), content_id(&[b"x", b""]));
    }
}
