//! # prose-transform
//!
//! Source-to-source generation of mixed-precision variants:
//!
//! 1. **Declaration rewriting** — apply a [`PrecisionMap`] to every FP
//!    variable declaration, splitting grouped declarations whose entities
//!    now differ in kind (producing exactly the Figure-3 style diff).
//! 2. **Wrapper synthesis** — Fortran permits implicit kind conversion only
//!    through assignment, so every precision-mismatched parameter-passing
//!    edge gets an explicit wrapper procedure (Figure 4): dummies with the
//!    caller-side kinds, assignment-converted temporaries with the
//!    callee-side kinds (element-wise copy loops for arrays, `intent`-aware
//!    in both directions), and a forwarded call. Call sites are rewritten to
//!    target the wrapper, and `use, only:` lists are extended so wrappers
//!    stay visible.
//! 3. **Round trip** — the variant is unparsed to Fortran text and re-parsed,
//!    mirroring the paper's unparse-and-reinsert step; [`make_variant`]
//!    returns both the text and the re-analyzed AST.
//!
//! After transformation the FP flow-graph invariant holds: no
//! parameter-passing edge connects differently-kinded endpoints.

pub mod diff;
pub mod rewrite;
pub mod template;
pub mod wrapper;

pub use diff::unified_diff;
pub use rewrite::apply_precision;
pub use template::{PlannedWrapper, VariantPlan, VariantTemplate, MAIN_BODY_KEY};
pub use wrapper::synthesize_wrappers;

use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::ProgramIndex;
use prose_fortran::{analyze, parse_program, unparse, FortranError, Program};

/// A fully generated mixed-precision variant.
#[derive(Debug)]
pub struct Variant {
    /// The transformed program (parsed back from `text`).
    pub program: Program,
    /// Semantic index of the transformed program.
    pub index: ProgramIndex,
    /// The unparsed Fortran source of the variant.
    pub text: String,
    /// Names of wrapper procedures that were synthesized.
    pub wrappers: Vec<String>,
}

/// Generate a compilable mixed-precision variant of `program` under `map`:
/// rewrite declarations, synthesize wrappers, unparse, re-parse, re-analyze.
///
/// The full unparse → parse → analyze round trip is intentional: it
/// guarantees the variant is valid *source*, not just a valid AST, exactly
/// as the paper's pipeline re-inserted unparsed code into the model build.
pub fn make_variant(
    program: &Program,
    index: &ProgramIndex,
    map: &PrecisionMap,
) -> Result<Variant, FortranError> {
    let mut variant = program.clone();
    apply_precision(&mut variant, index, map);
    let wrappers = synthesize_wrappers(&mut variant, index, map);
    let text = unparse(&variant);
    let reparsed = parse_program(&text)?;
    let new_index = analyze(&reparsed)?;
    Ok(Variant {
        program: reparsed,
        index: new_index,
        text,
        wrappers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_analysis::flow::FpFlowGraph;
    use prose_fortran::ast::FpPrecision;

    const SRC: &str = r#"
module m
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0
  end function flux
  subroutine kernel(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = flux(u(i))
    end do
  end subroutine kernel
end module m
program main
  use m, only: kernel
  real(kind=8) :: a(8), b(8)
  integer :: k
  do k = 1, 8
    a(k) = 0.25d0 * k
  end do
  call kernel(a, b, 8)
  call prose_record('b1', b(1))
end program main
"#;

    fn setup() -> (Program, ProgramIndex) {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    #[test]
    fn identity_map_produces_wrapperless_identical_semantics() {
        let (p, ix) = setup();
        let map = PrecisionMap::declared(&ix);
        let v = make_variant(&p, &ix, &map).unwrap();
        assert!(v.wrappers.is_empty());
        assert_eq!(v.program, p);
    }

    #[test]
    fn lowering_callee_dummy_synthesizes_wrapper_and_restores_invariant() {
        let (p, ix) = setup();
        let mut map = PrecisionMap::declared(&ix);
        let flux = ix.scope_of_procedure("flux").unwrap();
        map.set(ix.fp_var_id(flux, "q").unwrap(), FpPrecision::Single);
        map.set(ix.fp_var_id(flux, "f").unwrap(), FpPrecision::Single);
        let v = make_variant(&p, &ix, &map).unwrap();
        assert_eq!(v.wrappers.len(), 1);
        assert!(v.wrappers[0].starts_with("flux_w"));
        // The flow graph of the variant (under its own declared precisions)
        // has no mismatched edges — the Figure-4 invariant.
        let g = FpFlowGraph::build(&v.program, &v.index);
        let declared = PrecisionMap::declared(&v.index);
        assert!(g.invariant_holds(&v.index, &declared), "text:\n{}", v.text);
        // kernel's loop now calls the wrapper.
        assert!(v.text.contains(&v.wrappers[0]));
    }

    #[test]
    fn lowering_whole_hotspot_needs_boundary_wrapper_only() {
        let (p, ix) = setup();
        let atoms = ix.atoms();
        // Lower everything except main's arrays: boundary at main→kernel.
        let mut map = PrecisionMap::declared(&ix);
        for a in &atoms {
            let v = ix.fp_var(*a);
            let sname = ix.scope_info(v.scope).name.clone();
            if sname != "main" {
                map.set(*a, FpPrecision::Single);
            }
        }
        let v = make_variant(&p, &ix, &map).unwrap();
        // flux↔kernel edges are consistent (both single); only kernel needs
        // a wrapper for main's double arrays.
        assert_eq!(v.wrappers.len(), 1, "text:\n{}", v.text);
        assert!(v.wrappers[0].starts_with("kernel_w"));
        let g = FpFlowGraph::build(&v.program, &v.index);
        let declared = PrecisionMap::declared(&v.index);
        assert!(g.invariant_holds(&v.index, &declared), "text:\n{}", v.text);
    }

    #[test]
    fn use_only_list_extended_with_wrapper() {
        let (p, ix) = setup();
        let atoms = ix.atoms();
        let mut map = PrecisionMap::declared(&ix);
        for a in &atoms {
            let v = ix.fp_var(*a);
            if ix.scope_info(v.scope).name != "main" {
                map.set(*a, FpPrecision::Single);
            }
        }
        let v = make_variant(&p, &ix, &map).unwrap();
        let main = v.program.main.as_ref().unwrap();
        let only = main.uses[0].only.as_ref().unwrap();
        assert!(only.iter().any(|n| n.starts_with("kernel_w")), "{only:?}");
    }

    #[test]
    fn variant_text_differs_only_in_declarations_for_uniform_lowering() {
        let (p, ix) = setup();
        let atoms = ix.atoms();
        let map = PrecisionMap::uniform(&ix, &atoms, FpPrecision::Single);
        let v = make_variant(&p, &ix, &map).unwrap();
        // Uniform lowering needs no wrappers at all.
        assert!(v.wrappers.is_empty(), "text:\n{}", v.text);
        assert!(v.text.contains("real(kind=4), intent(in) :: u(n)"));
        assert!(!v.text.contains("real(kind=8) :: q"));
    }
}
