//! Declaration rewriting: apply a precision assignment to the AST.
//!
//! Grouped declarations whose entities end up with different kinds are
//! split, preserving entity order — so the unparsed variant diffs against
//! the original exactly like the paper's Figure 3:
//!
//! ```fortran
//! -  real(kind=8) :: s1, h, t1, t2, dppi
//! +  real(kind=8) :: s1
//! +  real(kind=4) :: h, t1, t2, dppi
//! ```

use prose_fortran::ast::*;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId};

/// Rewrite every FP declaration in `program` to the precision assigned by
/// `map`. The program structure (statements, bodies) is untouched.
pub fn apply_precision(program: &mut Program, index: &ProgramIndex, map: &PrecisionMap) {
    for m in &mut program.modules {
        let scope = index
            .module_scope(&m.name)
            .expect("index built from this program");
        rewrite_decls(&mut m.decls, scope, index, map);
        for p in &mut m.procedures {
            let pscope = index
                .scope_of_procedure(&p.name)
                .expect("indexed procedure");
            rewrite_decls(&mut p.decls, pscope, index, map);
        }
    }
    if let Some(mp) = &mut program.main {
        let scope = main_scope(index);
        rewrite_decls(&mut mp.decls, scope, index, map);
        for p in &mut mp.procedures {
            let pscope = index
                .scope_of_procedure(&p.name)
                .expect("indexed procedure");
            rewrite_decls(&mut p.decls, pscope, index, map);
        }
    }
}

fn main_scope(index: &ProgramIndex) -> ScopeId {
    (0..index.scope_count())
        .map(ScopeId)
        .find(|s| index.scope_info(*s).kind == prose_fortran::sema::ScopeKind::Main)
        .expect("program has a main scope")
}

fn rewrite_decls(
    decls: &mut Vec<Declaration>,
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
) {
    let mut out: Vec<Declaration> = Vec::with_capacity(decls.len());
    for d in decls.drain(..) {
        if !d.type_spec.is_fp() {
            out.push(d);
            continue;
        }
        // Partition entities by their assigned precision, preserving order
        // within each partition, double first when the original was double
        // (cosmetic: matches the paper's diffs).
        let mut groups: Vec<(FpPrecision, Vec<EntityDecl>)> = Vec::new();
        for e in d.entities.iter() {
            let target = match index.fp_var_id(scope, &e.name) {
                Some(id) => map.get(id),
                None => d.type_spec.fp_precision().unwrap(),
            };
            match groups.iter_mut().find(|(p, _)| *p == target) {
                Some((_, list)) => list.push(e.clone()),
                None => groups.push((target, vec![e.clone()])),
            }
        }
        for (prec, entities) in groups {
            out.push(Declaration {
                type_spec: TypeSpec::Real(prec),
                attrs: d.attrs.clone(),
                entities,
                span: d.span,
            });
        }
    }
    *decls = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program, unparse};

    #[test]
    fn splits_grouped_declaration_like_figure_3() {
        let src = "module m\ncontains\nsubroutine funarc()\n real(kind=8) :: s1, h, t1, t2, dppi\n s1 = 0.0d0\n h = 0.0d0\n t1 = 0.0d0\n t2 = 0.0d0\n dppi = 0.0d0\nend subroutine funarc\nend module m\n";
        let mut p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let scope = ix.scope_of_procedure("funarc").unwrap();
        let mut map = PrecisionMap::declared(&ix);
        for name in ["h", "t1", "t2", "dppi"] {
            map.set(ix.fp_var_id(scope, name).unwrap(), FpPrecision::Single);
        }
        apply_precision(&mut p, &ix, &map);
        let text = unparse(&p);
        assert!(text.contains("real(kind=8) :: s1\n"), "{text}");
        assert!(text.contains("real(kind=4) :: h, t1, t2, dppi"), "{text}");
    }

    #[test]
    fn identity_assignment_leaves_program_unchanged() {
        let src = "module m\n real(kind=8) :: a, b\n real(kind=4) :: c\nend module m\n";
        let mut p = parse_program(src).unwrap();
        let orig = p.clone();
        let ix = analyze(&p).unwrap();
        apply_precision(&mut p, &ix, &PrecisionMap::declared(&ix));
        assert_eq!(p, orig);
    }

    #[test]
    fn attrs_are_preserved_across_split() {
        let src = "module m\ncontains\nsubroutine s(a, b, n)\n real(kind=8), intent(inout) :: a(n), b(n)\n integer, intent(in) :: n\n a(1) = b(1)\nend subroutine s\nend module m\n";
        let mut p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let scope = ix.scope_of_procedure("s").unwrap();
        let mut map = PrecisionMap::declared(&ix);
        map.set(ix.fp_var_id(scope, "b").unwrap(), FpPrecision::Single);
        apply_precision(&mut p, &ix, &map);
        let text = unparse(&p);
        assert!(
            text.contains("real(kind=8), intent(inout) :: a(n)"),
            "{text}"
        );
        assert!(
            text.contains("real(kind=4), intent(inout) :: b(n)"),
            "{text}"
        );
    }

    #[test]
    fn raising_a_single_to_double_works_too() {
        let src = "module m\n real(kind=4) :: x\nend module m\n";
        let mut p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let scope = ix.module_scope("m").unwrap();
        let mut map = PrecisionMap::declared(&ix);
        map.set(ix.fp_var_id(scope, "x").unwrap(), FpPrecision::Double);
        apply_precision(&mut p, &ix, &map);
        assert!(unparse(&p).contains("real(kind=8) :: x"));
    }

    #[test]
    fn rewritten_program_still_analyzes() {
        let src = "module m\n real(kind=8) :: a(4)\ncontains\nsubroutine s()\n integer :: i\n do i = 1, 4\n a(i) = 1.0d0\n end do\nend subroutine s\nend module m\n";
        let mut p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let scope = ix.module_scope("m").unwrap();
        let mut map = PrecisionMap::declared(&ix);
        map.set(ix.fp_var_id(scope, "a").unwrap(), FpPrecision::Single);
        apply_precision(&mut p, &ix, &map);
        analyze(&p).expect("rewritten program analyzes");
    }
}
