//! Wrapper synthesis for mixed-precision parameter passing (Figure 4).
//!
//! The Fortran standard allows implicit kind conversion *only through the
//! assignment operator*, so a call whose actual argument kind differs from
//! the callee's dummy kind needs an explicit wrapper: a procedure whose
//! dummies carry the caller-side kinds, whose locals carry the callee-side
//! kinds, and whose body converts via assignment (element-wise loops for
//! arrays) around a forwarded call.
//!
//! Conversion direction follows intent:
//!
//! * copy-in for `intent(in)`, `intent(inout)`, and unspecified intent;
//! * copy-out for `intent(out)` and `intent(inout)` only (the paper's
//!   Figure 4 wrapper likewise does not copy back its by-value-style input).
//!   Model sources therefore must declare intent on mutated dummies — all
//!   bundled models do.
//!
//! Wrappers are named `{callee}_w{sig}` where `sig` spells the caller-side
//! kind of each parameter (`4`/`8` for reals, `x` otherwise), giving one
//! shared wrapper per distinct call signature.

use prose_analysis::typing::adapted_precision;
use prose_fortran::ast::*;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId, ScopeKind};
use prose_fortran::span::Span;
use std::collections::BTreeMap;

/// Synthesize wrappers for every precision-mismatched call in `program`
/// (which must already be declaration-rewritten under `map`), rewrite the
/// call sites, and extend `use` lists. Returns the new wrapper names.
pub fn synthesize_wrappers(
    program: &mut Program,
    index: &ProgramIndex,
    map: &PrecisionMap,
) -> Vec<String> {
    // Pass 1: find demands and rewrite call references. (The per-site
    // decisions are recorded for the template fast path; the faithful
    // path discards them.)
    let mut demands: BTreeMap<String, Demand> = BTreeMap::new();
    let mut decisions: Vec<Option<String>> = Vec::new();

    // Collect (scope, body) pairs to rewrite.
    let mut scoped_bodies: Vec<(ScopeId, &mut Vec<Stmt>)> = Vec::new();
    for m in &mut program.modules {
        for p in &mut m.procedures {
            let scope = index.scope_of_procedure(&p.name).expect("indexed");
            scoped_bodies.push((scope, &mut p.body));
        }
    }
    if let Some(mp) = &mut program.main {
        let scope = main_scope(index);
        scoped_bodies.push((scope, &mut mp.body));
        for p in &mut mp.procedures {
            let scope = index.scope_of_procedure(&p.name).expect("indexed");
            scoped_bodies.push((scope, &mut p.body));
        }
    }
    for (scope, body) in scoped_bodies {
        for s in body.iter_mut() {
            rewrite_stmt(s, scope, index, map, &mut demands, &mut decisions);
        }
    }

    // Pass 2: build wrapper procedures and insert them.
    let mut names: Vec<String> = Vec::new();
    for (wname, demand) in &demands {
        let wrapper = build_wrapper(wname, demand, program, index, map);
        insert_wrapper(program, index, &demand.callee, wrapper);
        names.push(wname.clone());
    }

    // Pass 3: extend `use, only:` lists that import a wrapped callee.
    if !demands.is_empty() {
        let mut additions: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (wname, demand) in &demands {
            additions
                .entry(demand.callee.clone())
                .or_default()
                .push(wname.clone());
        }
        extend_uses(program, &additions);
    }
    names
}

/// One wrapper to generate: the callee plus caller-side kinds per parameter.
pub(crate) struct Demand {
    pub(crate) callee: String,
    /// Caller-side precision for FP params, `None` for non-FP params.
    sig: Vec<Option<FpPrecision>>,
    is_function: bool,
}

pub(crate) fn main_scope(index: &ProgramIndex) -> ScopeId {
    (0..index.scope_count())
        .map(ScopeId)
        .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
        .expect("program has a main scope")
}

/// Rewrite one statement, registering wrapper demands and appending one
/// entry to `decisions` per user call site encountered, in walk order
/// (`None` = call left on the original callee). The fast path replays
/// these decisions onto the pre-lowered IR, whose call sites it visits in
/// the same order.
pub(crate) fn rewrite_stmt(
    s: &mut Stmt,
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    demands: &mut BTreeMap<String, Demand>,
    decisions: &mut Vec<Option<String>>,
) {
    match s {
        Stmt::Call { name, args, .. } => {
            for a in args.iter_mut() {
                rewrite_expr(a, scope, index, map, demands, decisions);
            }
            if index.procedure(name).is_some() {
                let w = demand_for(name, args, false, scope, index, map, demands);
                decisions.push(w.clone());
                if let Some(w) = w {
                    *name = w;
                }
            }
        }
        Stmt::Assign { target, value, .. } => {
            if let LValue::Index { indices, .. } = target {
                for ix in indices.iter_mut() {
                    rewrite_expr(ix, scope, index, map, demands, decisions);
                }
            }
            rewrite_expr(value, scope, index, map, demands, decisions);
        }
        Stmt::If {
            arms, else_body, ..
        } => {
            for (cond, body) in arms.iter_mut() {
                rewrite_expr(cond, scope, index, map, demands, decisions);
                for b in body.iter_mut() {
                    rewrite_stmt(b, scope, index, map, demands, decisions);
                }
            }
            if let Some(body) = else_body {
                for b in body.iter_mut() {
                    rewrite_stmt(b, scope, index, map, demands, decisions);
                }
            }
        }
        Stmt::Do {
            start,
            end,
            step,
            body,
            ..
        } => {
            rewrite_expr(start, scope, index, map, demands, decisions);
            rewrite_expr(end, scope, index, map, demands, decisions);
            if let Some(st) = step {
                rewrite_expr(st, scope, index, map, demands, decisions);
            }
            for b in body.iter_mut() {
                rewrite_stmt(b, scope, index, map, demands, decisions);
            }
        }
        Stmt::DoWhile { cond, body, .. } => {
            rewrite_expr(cond, scope, index, map, demands, decisions);
            for b in body.iter_mut() {
                rewrite_stmt(b, scope, index, map, demands, decisions);
            }
        }
        Stmt::Print { items, .. } => {
            for e in items.iter_mut() {
                rewrite_expr(e, scope, index, map, demands, decisions);
            }
        }
        Stmt::Allocate { items, .. } => {
            for (_, dims) in items.iter_mut() {
                for d in dims.iter_mut() {
                    match d {
                        DimSpec::Upper(e) => rewrite_expr(e, scope, index, map, demands, decisions),
                        DimSpec::Range(lo, hi) => {
                            rewrite_expr(lo, scope, index, map, demands, decisions);
                            rewrite_expr(hi, scope, index, map, demands, decisions);
                        }
                        DimSpec::Deferred => {}
                    }
                }
            }
        }
        _ => {}
    }
}

fn rewrite_expr(
    e: &mut Expr,
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    demands: &mut BTreeMap<String, Demand>,
    decisions: &mut Vec<Option<String>>,
) {
    match e {
        Expr::NameRef { name, args } => {
            for a in args.iter_mut() {
                rewrite_expr(a, scope, index, map, demands, decisions);
            }
            // Only function references (not array indexing) are calls.
            let is_function = index.lookup(scope, name).is_none()
                && index.procedure(name).is_some_and(|p| p.is_function);
            if is_function {
                let w = demand_for(name, args, true, scope, index, map, demands);
                decisions.push(w.clone());
                if let Some(w) = w {
                    *name = w;
                }
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            rewrite_expr(lhs, scope, index, map, demands, decisions);
            rewrite_expr(rhs, scope, index, map, demands, decisions);
        }
        Expr::Un { operand, .. } => rewrite_expr(operand, scope, index, map, demands, decisions),
        _ => {}
    }
}

/// If the call has mismatched FP args, register a demand and return the
/// wrapper name to call instead.
#[allow(clippy::too_many_arguments)]
fn demand_for(
    callee: &str,
    args: &[Expr],
    is_function: bool,
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    demands: &mut BTreeMap<String, Demand>,
) -> Option<String> {
    let pinfo = index.procedure(callee)?;
    let mut sig: Vec<Option<FpPrecision>> = Vec::with_capacity(pinfo.params.len());
    let mut any_mismatch = false;
    for (i, param) in pinfo.params.iter().enumerate() {
        let dummy = index.lookup(pinfo.scope, param)?;
        let Some(_declared) = dummy.ty.fp_precision() else {
            sig.push(None);
            continue;
        };
        let callee_prec = match index.fp_var_id(pinfo.scope, param) {
            Some(id) => map.get(id),
            None => dummy.ty.fp_precision().unwrap(),
        };
        let caller_prec = match args
            .get(i)
            .and_then(|a| adapted_precision(index, scope, map, a))
        {
            Some(p) => p,
            // Kind-generic actuals (pure literals) convert for free at the
            // call: no wrapper needed.
            None => callee_prec,
        };
        if caller_prec != callee_prec {
            any_mismatch = true;
        }
        sig.push(Some(caller_prec));
    }
    if !any_mismatch {
        return None;
    }
    let sig_str: String = sig
        .iter()
        .map(|s| match s {
            Some(FpPrecision::Single) => '4',
            Some(FpPrecision::Double) => '8',
            None => 'x',
        })
        .collect();
    let wname = format!("{callee}_w{sig_str}");
    demands.entry(wname.clone()).or_insert_with(|| Demand {
        callee: callee.to_string(),
        sig,
        is_function,
    });
    Some(wname)
}

/// Find a procedure definition in the (possibly already extended) program.
fn find_procedure<'a>(program: &'a Program, name: &str) -> Option<&'a Procedure> {
    program
        .modules
        .iter()
        .flat_map(|m| m.procedures.iter())
        .chain(program.main.iter().flat_map(|mp| mp.procedures.iter()))
        .find(|p| p.name == name)
}

/// Build the wrapper procedure AST for one demand.
///
/// Derives callee-side kinds from `map` rather than the declaration text,
/// so it works both on a declaration-rewritten variant (faithful path,
/// where the two agree) and on the pristine baseline AST (fast path).
pub(crate) fn build_wrapper(
    wname: &str,
    demand: &Demand,
    program: &Program,
    index: &ProgramIndex,
    map: &PrecisionMap,
) -> Procedure {
    let callee_ast =
        find_procedure(program, &demand.callee).expect("callee definition exists in program");
    let pinfo = index.procedure(&demand.callee).expect("callee indexed");
    let sp = Span::default();

    let mut decls: Vec<Declaration> = Vec::new();
    let mut pre: Vec<Stmt> = Vec::new();
    let mut post: Vec<Stmt> = Vec::new();
    let mut fwd_args: Vec<Expr> = Vec::new();
    let mut max_rank = 0usize;
    let mut temps_deferred: Vec<(String, usize, String)> = Vec::new(); // (temp, rank, param)

    for (i, param) in callee_ast.params.iter().enumerate() {
        // Locate the param's declaration in the (rewritten) callee AST.
        let (decl, entity) = callee_ast
            .decls
            .iter()
            .find_map(|d| d.entities.iter().find(|e| &e.name == param).map(|e| (d, e)))
            .expect("dummy argument declared (checked by sema)");
        let dims: Option<Vec<DimSpec>> = decl.dims_for(entity).map(|d| d.to_vec());
        let intent = decl.intent();
        let callee_side = match decl.type_spec {
            TypeSpec::Real(declared) => TypeSpec::Real(
                index
                    .fp_var_id(pinfo.scope, param)
                    .map(|id| map.get(id))
                    .unwrap_or(declared),
            ),
            other => other,
        };

        // The wrapper's dummy: caller-side kind for mismatched FP params.
        let caller_side = match (demand.sig[i], callee_side) {
            (Some(p), TypeSpec::Real(_)) => TypeSpec::Real(p),
            _ => callee_side,
        };
        let mut attrs: Vec<Attr> = Vec::new();
        if let Some(it) = intent {
            attrs.push(Attr::Intent(it));
        }
        decls.push(Declaration {
            type_spec: caller_side,
            attrs,
            entities: vec![EntityDecl {
                name: param.clone(),
                dims: dims.clone(),
                init: None,
            }],
            span: sp,
        });

        let mismatched = caller_side != callee_side;
        if !mismatched {
            fwd_args.push(Expr::Var(param.clone()));
            continue;
        }

        // Temp with the callee-side kind.
        let temp = format!("{param}_tmp");
        let rank = dims.as_ref().map(|d| d.len()).unwrap_or(0);
        max_rank = max_rank.max(rank);
        let is_deferred = dims
            .as_ref()
            .is_some_and(|d| d.iter().any(|x| matches!(x, DimSpec::Deferred)));
        let temp_attrs: Vec<Attr> = if is_deferred {
            vec![Attr::Allocatable]
        } else {
            vec![]
        };
        decls.push(Declaration {
            type_spec: callee_side,
            attrs: temp_attrs,
            entities: vec![EntityDecl {
                name: temp.clone(),
                dims: dims.clone(),
                init: None,
            }],
            span: sp,
        });
        if is_deferred {
            temps_deferred.push((temp.clone(), rank, param.clone()));
        }

        let copy_in = !matches!(intent, Some(Intent::Out));
        let copy_out = matches!(intent, Some(Intent::Out) | Some(Intent::InOut));
        match &dims {
            None => {
                if copy_in {
                    pre.push(assign_var(&temp, Expr::Var(param.clone())));
                }
                if copy_out {
                    post.push(assign_var(param, Expr::Var(temp.clone())));
                }
            }
            Some(dspec) => {
                if copy_in {
                    pre.push(copy_loop(&temp, param, dspec, param));
                }
                if copy_out {
                    post.push(copy_loop(param, &temp, dspec, param));
                }
            }
        }
        fwd_args.push(Expr::Var(temp));
    }

    // Loop counters.
    if max_rank > 0 {
        decls.push(Declaration {
            type_spec: TypeSpec::Integer,
            attrs: vec![],
            entities: (1..=max_rank)
                .map(|d| EntityDecl {
                    name: format!("prose_i{d}"),
                    dims: None,
                    init: None,
                })
                .collect(),
            span: sp,
        });
    }

    // Allocations for deferred-shape temps, before any copy-in.
    let mut body: Vec<Stmt> = Vec::new();
    for (temp, rank, param) in &temps_deferred {
        let dims: Vec<DimSpec> = (1..=*rank)
            .map(|d| DimSpec::Upper(size_of(param, *rank, d)))
            .collect();
        body.push(Stmt::Allocate {
            items: vec![(temp.clone(), dims)],
            span: sp,
        });
    }
    body.extend(pre);

    let kind = if demand.is_function {
        let result = "prose_res".to_string();
        // Result kind: the callee's result kind under the map (assignment at
        // the original call site converts further if needed).
        let ret = pinfo.return_type.expect("function has return type");
        let ret = match (ret, pinfo.result.as_deref()) {
            (TypeSpec::Real(_), Some(r)) => match index.fp_var_id(pinfo.scope, r) {
                Some(id) => TypeSpec::Real(map.get(id)),
                None => ret,
            },
            _ => ret,
        };
        decls.push(Declaration {
            type_spec: ret,
            attrs: vec![],
            entities: vec![EntityDecl {
                name: result.clone(),
                dims: None,
                init: None,
            }],
            span: sp,
        });
        body.push(Stmt::Assign {
            target: LValue::Var(result.clone()),
            value: Expr::NameRef {
                name: demand.callee.clone(),
                args: fwd_args,
            },
            span: sp,
        });
        ProcKind::Function { result }
    } else {
        body.push(Stmt::Call {
            name: demand.callee.clone(),
            args: fwd_args,
            span: sp,
        });
        ProcKind::Subroutine
    };
    body.extend(post);

    Procedure {
        kind,
        name: wname.to_string(),
        params: callee_ast.params.clone(),
        uses: vec![],
        decls,
        body,
        span: sp,
    }
}

fn assign_var(name: &str, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue::Var(name.to_string()),
        value,
        span: Span::default(),
    }
}

/// `size(param, d)`.
fn size_of(param: &str, rank: usize, d: usize) -> Expr {
    if rank == 1 {
        Expr::NameRef {
            name: "size".into(),
            args: vec![Expr::Var(param.into())],
        }
    } else {
        Expr::NameRef {
            name: "size".into(),
            args: vec![Expr::Var(param.into()), Expr::IntLit(d as i64)],
        }
    }
}

/// Element-wise copy `dst(idx…) = src(idx…)` as a nested loop over `dspec`.
fn copy_loop(dst: &str, src: &str, dspec: &[DimSpec], size_target: &str) -> Stmt {
    let sp = Span::default();
    let rank = dspec.len();
    let idx: Vec<Expr> = (1..=rank)
        .map(|d| Expr::Var(format!("prose_i{d}")))
        .collect();
    let mut stmt = Stmt::Assign {
        target: LValue::Index {
            name: dst.to_string(),
            indices: idx.clone(),
        },
        value: Expr::NameRef {
            name: src.to_string(),
            args: idx,
        },
        span: sp,
    };
    for (d, spec) in dspec.iter().enumerate() {
        let (lo, hi) = match spec {
            DimSpec::Upper(e) => (Expr::IntLit(1), e.clone()),
            DimSpec::Range(lo, hi) => (lo.clone(), hi.clone()),
            DimSpec::Deferred => (Expr::IntLit(1), size_of(size_target, rank, d + 1)),
        };
        stmt = Stmt::Do {
            var: format!("prose_i{}", d + 1),
            start: lo,
            end: hi,
            step: None,
            body: vec![stmt],
            span: sp,
        };
    }
    stmt
}

/// Insert the wrapper next to its callee (same module or main `contains`).
fn insert_wrapper(program: &mut Program, index: &ProgramIndex, callee: &str, wrapper: Procedure) {
    let pinfo = index.procedure(callee).expect("callee indexed");
    match &pinfo.module {
        Some(mname) => {
            if let Some(m) = program.module_mut(mname) {
                m.procedures.push(wrapper);
                return;
            }
            // The callee's "module" may actually be the main program name.
            if let Some(mp) = &mut program.main {
                if &mp.name == mname {
                    mp.procedures.push(wrapper);
                    return;
                }
            }
            panic!("module `{mname}` not found for wrapper insertion");
        }
        None => panic!("procedure `{callee}` has no owning container"),
    }
}

/// Add wrapper names to every `use, only:` list importing their callee.
fn extend_uses(program: &mut Program, additions: &BTreeMap<String, Vec<String>>) {
    let extend = |uses: &mut Vec<UseStmt>| {
        for u in uses.iter_mut() {
            if let Some(only) = &mut u.only {
                let mut to_add = Vec::new();
                for (callee, wrappers) in additions {
                    if only.iter().any(|n| n == callee) {
                        for w in wrappers {
                            if !only.contains(w) {
                                to_add.push(w.clone());
                            }
                        }
                    }
                }
                only.extend(to_add);
            }
        }
    };
    for m in &mut program.modules {
        extend(&mut m.uses);
        for p in &mut m.procedures {
            extend(&mut p.uses);
        }
    }
    if let Some(mp) = &mut program.main {
        extend(&mut mp.uses);
        for p in &mut mp.procedures {
            extend(&mut p.uses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::apply_precision;
    use prose_fortran::{analyze, parse_program, unparse};

    fn run(src: &str, lower: &[(&str, &str)]) -> (Program, Vec<String>, String) {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let mut map = PrecisionMap::declared(&ix);
        for (proc, var) in lower {
            let scope = if let Some(s) = ix.scope_of_procedure(proc) {
                s
            } else {
                ix.module_scope(proc).unwrap()
            };
            let id = ix.fp_var_id(scope, var).unwrap();
            map.set(id, map.get(id).flipped());
        }
        let mut variant = p.clone();
        apply_precision(&mut variant, &ix, &map);
        let wrappers = synthesize_wrappers(&mut variant, &ix, &map);
        let text = unparse(&variant);
        (variant, wrappers, text)
    }

    const FUN: &str = r#"
module m
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1
    t1 = x * x
  end function fun
  subroutine driver(out)
    real(kind=8), intent(out) :: out
    real(kind=4) :: h
    h = 0.5
    out = fun(dble(h))
  end subroutine driver
end module m
"#;

    #[test]
    fn figure_4_style_function_wrapper() {
        // Lower fun's x: driver passes a double expression into a single dummy.
        let (variant, wrappers, text) = run(FUN, &[("fun", "x")]);
        assert_eq!(wrappers, vec!["fun_w8".to_string()]);
        // Wrapper declares a single-kind temp and assigns through it.
        assert!(
            text.contains("function fun_w8(x) result(prose_res)"),
            "{text}"
        );
        assert!(text.contains("x_tmp = x"), "{text}");
        assert!(text.contains("prose_res = fun(x_tmp)"), "{text}");
        // The variant re-analyzes.
        analyze(&variant).expect("variant analyzes");
    }

    const ARR: &str = r#"
module m
contains
  subroutine work(u, v, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(inout) :: v(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      v(i) = v(i) + u(i)
    end do
  end subroutine work
end module m
program main
  use m, only: work
  real(kind=8) :: a(4), b(4)
  integer :: k
  do k = 1, 4
    a(k) = 1.0d0
    b(k) = 2.0d0
  end do
  call work(a, b, 4)
end program main
"#;

    #[test]
    fn array_wrapper_copies_in_and_out_by_intent() {
        // Lower both dummies of work; main's arrays stay double.
        let (variant, wrappers, text) = run(ARR, &[("work", "u"), ("work", "v")]);
        assert_eq!(wrappers.len(), 1);
        assert!(wrappers[0].starts_with("work_w88"));
        // intent(in) u: copy-in only. intent(inout) v: both directions.
        let copy_ins = text.matches("u_tmp(prose_i1) = u(prose_i1)").count();
        let v_in = text.matches("v_tmp(prose_i1) = v(prose_i1)").count();
        let v_out = text.matches("v(prose_i1) = v_tmp(prose_i1)").count();
        assert_eq!(copy_ins, 1, "{text}");
        assert_eq!(v_in, 1, "{text}");
        assert_eq!(v_out, 1, "{text}");
        assert_eq!(text.matches("u(prose_i1) = u_tmp(prose_i1)").count(), 0);
        analyze(&variant).expect("variant analyzes");
        // Call site rewritten.
        assert!(
            text.contains(&format!("call {}(a, b, 4)", wrappers[0])),
            "{text}"
        );
    }

    #[test]
    fn matching_calls_are_not_wrapped() {
        let (_, wrappers, _) = run(ARR, &[]);
        assert!(wrappers.is_empty());
    }

    #[test]
    fn shared_wrapper_for_same_signature() {
        let src = r#"
module m
contains
  function half(q) result(h)
    real(kind=8) :: q, h
    h = q * 0.5d0
  end function half
  subroutine caller(a, b)
    real(kind=8) :: a, b
    a = half(a) + half(b)
    b = half(b)
  end subroutine caller
end module m
"#;
        let (_, wrappers, text) = run(src, &[("half", "q"), ("half", "h")]);
        assert_eq!(wrappers.len(), 1, "{text}");
        assert_eq!(text.matches("function half_w8(").count(), 1);
        assert_eq!(text.matches("half_w8(").count(), 4, "{text}"); // 3 sites + 1 def
    }

    #[test]
    fn deferred_shape_dummy_gets_allocatable_temp() {
        let src = r#"
module m
contains
  subroutine norm(u, r)
    real(kind=8), intent(in) :: u(:)
    real(kind=8), intent(out) :: r
    integer :: i
    r = 0.0d0
    do i = 1, size(u)
      r = r + u(i) * u(i)
    end do
  end subroutine norm
end module m
program main
  use m, only: norm
  real(kind=8) :: a(4), s
  integer :: k
  do k = 1, 4
    a(k) = 1.0d0
  end do
  call norm(a, s)
end program main
"#;
        let (variant, wrappers, text) = run(src, &[("norm", "u")]);
        assert_eq!(wrappers.len(), 1);
        assert!(
            text.contains("real(kind=4), allocatable :: u_tmp(:)"),
            "{text}"
        );
        assert!(text.contains("allocate(u_tmp(size(u)))"), "{text}");
        analyze(&variant).expect("variant analyzes");
    }

    #[test]
    fn two_dimensional_copy_loops_nest() {
        let src = r#"
module m
contains
  subroutine fill(g, nx, ny)
    real(kind=8), intent(inout) :: g(nx, ny)
    integer, intent(in) :: nx, ny
    integer :: i, j
    do j = 1, ny
      do i = 1, nx
        g(i, j) = g(i, j) + 1.0d0
      end do
    end do
  end subroutine fill
end module m
program main
  use m, only: fill
  real(kind=8) :: grid(3, 2)
  integer :: i, j
  do j = 1, 2
    do i = 1, 3
      grid(i, j) = 0.0d0
    end do
  end do
  call fill(grid, 3, 2)
end program main
"#;
        let (variant, wrappers, text) = run(src, &[("fill", "g")]);
        assert_eq!(wrappers.len(), 1);
        assert!(
            text.contains("g_tmp(prose_i1, prose_i2) = g(prose_i1, prose_i2)"),
            "{text}"
        );
        assert!(text.contains("do prose_i2 = 1, ny"), "{text}");
        assert!(text.contains("do prose_i1 = 1, nx"), "{text}");
        analyze(&variant).expect("variant analyzes");
    }
}
