//! Line-based unified diff between the original program and a variant —
//! the artifact the paper shows in Figure 3.

/// Produce a unified-style diff of two texts (no context collapsing: small
/// model sources read better in full). Lines are prefixed with ` `, `-`,
/// or `+`.
pub fn unified_diff(original: &str, variant: &str) -> String {
    let a: Vec<&str> = original.lines().collect();
    let b: Vec<&str> = variant.lines().collect();
    let ops = diff_ops(&a, &b);
    let mut out = String::new();
    for op in ops {
        match op {
            Op::Keep(s) => {
                out.push_str("  ");
                out.push_str(s);
            }
            Op::Del(s) => {
                out.push_str("- ");
                out.push_str(s);
            }
            Op::Add(s) => {
                out.push_str("+ ");
                out.push_str(s);
            }
        }
        out.push('\n');
    }
    out
}

/// Only the changed lines (with -/+ prefixes), plus up to `context` lines
/// around each hunk — the compact Figure-3 presentation.
pub fn changed_hunks(original: &str, variant: &str, context: usize) -> String {
    let a: Vec<&str> = original.lines().collect();
    let b: Vec<&str> = variant.lines().collect();
    let ops = diff_ops(&a, &b);

    // Mark which op indices to keep: changes plus `context` around them.
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if !matches!(op, Op::Keep(_)) {
            let lo = i.saturating_sub(context);
            let hi = (i + context + 1).min(ops.len());
            for k in keep.iter_mut().take(hi).skip(lo) {
                *k = true;
            }
        }
    }
    let mut out = String::new();
    let mut last_kept = true;
    for (i, op) in ops.iter().enumerate() {
        if !keep[i] {
            if last_kept {
                out.push_str("...\n");
            }
            last_kept = false;
            continue;
        }
        last_kept = true;
        match op {
            Op::Keep(s) => {
                out.push_str("  ");
                out.push_str(s);
            }
            Op::Del(s) => {
                out.push_str("- ");
                out.push_str(s);
            }
            Op::Add(s) => {
                out.push_str("+ ");
                out.push_str(s);
            }
        }
        out.push('\n');
    }
    out
}

enum Op<'a> {
    Keep(&'a str),
    Del(&'a str),
    Add(&'a str),
}

/// Myers-style LCS diff via dynamic programming (the inputs are small model
/// sources; O(n·m) is fine and simple).
fn diff_ops<'a>(a: &[&'a str], b: &[&'a str]) -> Vec<Op<'a>> {
    let n = a.len();
    let m = b.len();
    // lcs[i][j] = LCS length of a[i..], b[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push(Op::Keep(a[i]));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push(Op::Del(a[i]));
            i += 1;
        } else {
            out.push(Op::Add(b[j]));
            j += 1;
        }
    }
    while i < n {
        out.push(Op::Del(a[i]));
        i += 1;
    }
    while j < m {
        out.push(Op::Add(b[j]));
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_no_changes() {
        let d = unified_diff("a\nb\n", "a\nb\n");
        assert!(d.lines().all(|l| l.starts_with("  ")));
    }

    #[test]
    fn single_line_change() {
        let d = unified_diff("x = 1\ny = 2\nz = 3\n", "x = 1\ny = 9\nz = 3\n");
        assert!(d.contains("- y = 2"));
        assert!(d.contains("+ y = 9"));
        assert!(d.contains("  x = 1"));
    }

    #[test]
    fn insertion_and_deletion() {
        let d = unified_diff("a\nb\nc\n", "a\nc\nd\n");
        assert!(d.contains("- b"));
        assert!(d.contains("+ d"));
    }

    #[test]
    fn figure_3_shape() {
        let original = "subroutine funarc(result)\n  real(kind=8) :: s1, h, t1, t2, dppi\nend subroutine funarc\n";
        let variant = "subroutine funarc(result)\n  real(kind=8) :: s1\n  real(kind=4) :: h, t1, t2, dppi\nend subroutine funarc\n";
        let d = unified_diff(original, variant);
        assert!(
            d.contains("- real(kind=8) :: s1, h, t1, t2, dppi")
                || d.contains("-   real(kind=8) :: s1, h, t1, t2, dppi"),
            "{d}"
        );
        assert!(d.contains("+"), "{d}");
    }

    #[test]
    fn hunks_collapse_unchanged_regions() {
        let mut a = String::new();
        let mut b = String::new();
        for i in 0..50 {
            a.push_str(&format!("line {i}\n"));
            b.push_str(&format!("line {i}\n"));
        }
        b = b.replace("line 25", "line twenty-five");
        let h = changed_hunks(&a, &b, 1);
        assert!(h.contains("..."));
        assert!(h.contains("- line 25"));
        assert!(h.contains("+ line twenty-five"));
        assert!(h.contains("  line 24"));
        assert!(h.contains("  line 26"));
        assert!(!h.contains("line 10"));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(unified_diff("", ""), "");
        let d = unified_diff("", "new\n");
        assert!(d.contains("+ new"));
        let d = unified_diff("old\n", "");
        assert!(d.contains("- old"));
    }
}
