//! Variant templates: the transform-side half of the fast path.
//!
//! [`make_variant`](crate::make_variant) pays a full program clone, wrapper
//! synthesis over the whole AST, and an unparse → reparse → reanalyze round
//! trip for every probed configuration. A [`VariantTemplate`] is built once
//! per tuning task from the *baseline* program and hoists everything that
//! does not depend on the precision map: it keeps only the body statements
//! that contain user call sites (the only statements wrapper rewriting can
//! touch). [`VariantTemplate::instantiate`] then replays the exact faithful
//! rewrite — the same [`wrapper`](crate::wrapper) demand and naming logic,
//! on per-variant clones of just those statements — and emits a
//! [`VariantPlan`]: the synthesized wrapper procedure ASTs plus the per-site
//! retarget decisions, with no text round trip.
//!
//! Decision streams are keyed by caller procedure name (the main program
//! body uses [`MAIN_BODY_KEY`]) and ordered by the shared statement walk, so
//! the interpreter-side template can replay them onto pre-lowered IR whose
//! call sites it visits in the same order.

use crate::wrapper::{build_wrapper, main_scope, rewrite_stmt, Demand};
use prose_fortran::ast::{DimSpec, Expr, LValue, Procedure, Program, Stmt};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Decision-stream key for call sites in the main program body.
pub const MAIN_BODY_KEY: &str = "@main";

/// Per-task precomputation for fast variant generation.
pub struct VariantTemplate<'a> {
    program: &'a Program,
    index: &'a ProgramIndex,
    callers: Vec<CallerSites>,
}

/// One caller body's precision-sensitive statements.
struct CallerSites {
    /// Decision key: procedure name, or [`MAIN_BODY_KEY`] for the main body.
    proc: String,
    scope: ScopeId,
    /// Top-level body statements containing at least one user call site, in
    /// body order. Site-free statements are dropped — they contribute no
    /// decisions and never change under a precision map.
    stmts: Vec<Stmt>,
}

/// A wrapper procedure to lower for one variant.
pub struct PlannedWrapper {
    pub name: String,
    /// The wrapped user procedure; the wrapper lives in its scope.
    pub callee: String,
    pub ast: Procedure,
}

/// Everything variant-specific the fast path needs from the transform side.
pub struct VariantPlan {
    /// Wrappers in deterministic (name-sorted) order, matching the order
    /// [`crate::synthesize_wrappers`] returns on the faithful path.
    pub wrappers: Vec<PlannedWrapper>,
    /// Per caller procedure: the wrapper decision for each user call site in
    /// walk order (`None` = call left on the original callee).
    pub decisions: HashMap<String, Vec<Option<String>>>,
}

impl VariantPlan {
    /// Wrapper names in the same order as [`Self::wrappers`].
    pub fn wrapper_names(&self) -> Vec<String> {
        self.wrappers.iter().map(|w| w.name.clone()).collect()
    }

    /// Caller procedure names per wrapper, derived from the decision
    /// streams. The fast-path replacement for re-walking the variant's flow
    /// graph when scoping hotspot cycles.
    pub fn wrapper_callers(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (proc, ds) in &self.decisions {
            for w in ds.iter().flatten() {
                out.entry(w.clone()).or_default().insert(proc.clone());
            }
        }
        out
    }
}

impl<'a> VariantTemplate<'a> {
    /// Scan the baseline program once, keeping only call-site-bearing
    /// statements per caller body.
    pub fn new(program: &'a Program, index: &'a ProgramIndex) -> Self {
        let mut callers: Vec<CallerSites> = Vec::new();
        let mut add = |proc: String, scope: ScopeId, body: &[Stmt]| {
            let stmts: Vec<Stmt> = body
                .iter()
                .filter(|s| stmt_has_site(s, scope, index))
                .cloned()
                .collect();
            if !stmts.is_empty() {
                callers.push(CallerSites { proc, scope, stmts });
            }
        };
        for m in &program.modules {
            for p in &m.procedures {
                let scope = index.scope_of_procedure(&p.name).expect("indexed");
                add(p.name.clone(), scope, &p.body);
            }
        }
        if let Some(mp) = &program.main {
            add(MAIN_BODY_KEY.to_string(), main_scope(index), &mp.body);
            for p in &mp.procedures {
                let scope = index.scope_of_procedure(&p.name).expect("indexed");
                add(p.name.clone(), scope, &p.body);
            }
        }
        VariantTemplate {
            program,
            index,
            callers,
        }
    }

    /// Replay the faithful wrapper rewrite for `map` over the stored
    /// statements (cloned per variant, so nested-call renaming behaves
    /// identically) and build the demanded wrappers from the baseline AST.
    pub fn instantiate(&self, map: &PrecisionMap) -> VariantPlan {
        let mut demands: BTreeMap<String, Demand> = BTreeMap::new();
        let mut decisions: HashMap<String, Vec<Option<String>>> = HashMap::new();
        for c in &self.callers {
            let mut ds: Vec<Option<String>> = Vec::new();
            for s in &c.stmts {
                let mut s = s.clone();
                rewrite_stmt(&mut s, c.scope, self.index, map, &mut demands, &mut ds);
            }
            decisions.insert(c.proc.clone(), ds);
        }
        let wrappers = demands
            .iter()
            .map(|(wname, demand)| PlannedWrapper {
                name: wname.clone(),
                callee: demand.callee.clone(),
                ast: build_wrapper(wname, demand, self.program, self.index, map),
            })
            .collect();
        VariantPlan {
            wrappers,
            decisions,
        }
    }
}

/// Whether rewriting could touch this statement: it (transitively) contains
/// a user call site. Mirrors the [`crate::wrapper`] statement walk exactly —
/// under-approximating here would desynchronize the decision streams.
fn stmt_has_site(s: &Stmt, scope: ScopeId, index: &ProgramIndex) -> bool {
    match s {
        Stmt::Call { name, args, .. } => {
            index.procedure(name).is_some() || args.iter().any(|a| expr_has_site(a, scope, index))
        }
        Stmt::Assign { target, value, .. } => {
            let in_target = match target {
                LValue::Index { indices, .. } => {
                    indices.iter().any(|ix| expr_has_site(ix, scope, index))
                }
                LValue::Var(_) => false,
            };
            in_target || expr_has_site(value, scope, index)
        }
        Stmt::If {
            arms, else_body, ..
        } => {
            arms.iter().any(|(cond, body)| {
                expr_has_site(cond, scope, index)
                    || body.iter().any(|b| stmt_has_site(b, scope, index))
            }) || else_body
                .as_ref()
                .is_some_and(|body| body.iter().any(|b| stmt_has_site(b, scope, index)))
        }
        Stmt::Do {
            start,
            end,
            step,
            body,
            ..
        } => {
            expr_has_site(start, scope, index)
                || expr_has_site(end, scope, index)
                || step
                    .as_ref()
                    .is_some_and(|e| expr_has_site(e, scope, index))
                || body.iter().any(|b| stmt_has_site(b, scope, index))
        }
        Stmt::DoWhile { cond, body, .. } => {
            expr_has_site(cond, scope, index) || body.iter().any(|b| stmt_has_site(b, scope, index))
        }
        Stmt::Print { items, .. } => items.iter().any(|e| expr_has_site(e, scope, index)),
        Stmt::Allocate { items, .. } => items.iter().any(|(_, dims)| {
            dims.iter().any(|d| match d {
                DimSpec::Upper(e) => expr_has_site(e, scope, index),
                DimSpec::Range(lo, hi) => {
                    expr_has_site(lo, scope, index) || expr_has_site(hi, scope, index)
                }
                DimSpec::Deferred => false,
            })
        }),
        _ => false,
    }
}

fn expr_has_site(e: &Expr, scope: ScopeId, index: &ProgramIndex) -> bool {
    match e {
        Expr::NameRef { name, args } => {
            let is_function = index.lookup(scope, name).is_none()
                && index.procedure(name).is_some_and(|p| p.is_function);
            is_function || args.iter().any(|a| expr_has_site(a, scope, index))
        }
        Expr::Bin { lhs, rhs, .. } => {
            expr_has_site(lhs, scope, index) || expr_has_site(rhs, scope, index)
        }
        Expr::Un { operand, .. } => expr_has_site(operand, scope, index),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_variant;
    use prose_fortran::ast::FpPrecision;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module m
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0
  end function flux
  subroutine kernel(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = flux(u(i))
    end do
  end subroutine kernel
end module m
program main
  use m, only: kernel
  real(kind=8) :: a(8), b(8)
  integer :: k
  do k = 1, 8
    a(k) = 0.25d0 * k
  end do
  call kernel(a, b, 8)
  call prose_record('b1', b(1))
end program main
"#;

    fn setup() -> (Program, ProgramIndex) {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    #[test]
    fn identity_map_plans_no_wrappers_and_all_none_decisions() {
        let (p, ix) = setup();
        let t = VariantTemplate::new(&p, &ix);
        let plan = t.instantiate(&PrecisionMap::declared(&ix));
        assert!(plan.wrappers.is_empty());
        // kernel has one site (flux), main has one (kernel).
        assert_eq!(plan.decisions["kernel"], vec![None]);
        assert_eq!(plan.decisions[MAIN_BODY_KEY], vec![None]);
    }

    #[test]
    fn plan_matches_faithful_wrapper_set_and_retargets_sites() {
        let (p, ix) = setup();
        let mut map = PrecisionMap::declared(&ix);
        let flux = ix.scope_of_procedure("flux").unwrap();
        map.set(ix.fp_var_id(flux, "q").unwrap(), FpPrecision::Single);
        map.set(ix.fp_var_id(flux, "f").unwrap(), FpPrecision::Single);

        let t = VariantTemplate::new(&p, &ix);
        let plan = t.instantiate(&map);
        let faithful = make_variant(&p, &ix, &map).unwrap();

        assert_eq!(plan.wrapper_names(), faithful.wrappers);
        assert_eq!(plan.wrappers.len(), 1);
        assert_eq!(plan.wrappers[0].callee, "flux");
        // kernel's single flux site is retargeted at the wrapper.
        assert_eq!(
            plan.decisions["kernel"],
            vec![Some(plan.wrappers[0].name.clone())]
        );
        assert_eq!(plan.decisions[MAIN_BODY_KEY], vec![None]);
        assert_eq!(
            plan.wrapper_callers()[&plan.wrappers[0].name],
            BTreeSet::from(["kernel".to_string()])
        );
    }

    #[test]
    fn template_reuse_across_maps_is_independent() {
        let (p, ix) = setup();
        let t = VariantTemplate::new(&p, &ix);
        let atoms = ix.atoms();
        let uniform = PrecisionMap::uniform(&ix, &atoms, FpPrecision::Single);
        let declared = PrecisionMap::declared(&ix);
        // Instantiations do not contaminate each other or the template.
        assert!(t.instantiate(&uniform).wrappers.is_empty());
        let mut mixed = declared.clone();
        let flux = ix.scope_of_procedure("flux").unwrap();
        mixed.set(ix.fp_var_id(flux, "q").unwrap(), FpPrecision::Single);
        mixed.set(ix.fp_var_id(flux, "f").unwrap(), FpPrecision::Single);
        assert_eq!(t.instantiate(&mixed).wrappers.len(), 1);
        assert!(t.instantiate(&declared).wrappers.is_empty());
    }
}
