//! The delta-debugging search adapted for precision tuning (Precimonious,
//! reference \[2\] in the paper), searching for a **1-minimal** variant.
//!
//! The algorithm works on the *high set* — the atoms still at 64-bit. A
//! candidate is tested by lowering everything outside the high set; it is
//! accepted when it meets the correctness threshold and beats the baseline
//! (`min_speedup`). Following Zeller/Hildebrandt's ddmin structure:
//!
//! 1. try keeping only one partition high ("reduce to subset");
//! 2. try removing one partition from the high set ("reduce to complement");
//! 3. otherwise double the partition granularity;
//! 4. stop when granularity equals the high-set size and no single removal
//!    is accepted — the high set is then 1-minimal by construction.
//!
//! Average complexity O(n log n), worst case O(n²) (Section III-B).

use crate::{Config, Evaluator, Memo, SearchResult, TrialSink};

/// Parameters for the delta-debugging search.
#[derive(Debug, Clone)]
pub struct DdParams {
    /// Acceptance bar for speedup (1.0 = must beat baseline).
    pub min_speedup: f64,
    /// Unique-variant budget; `None` = run to termination.
    pub max_variants: Option<usize>,
    /// Precimonious's monotone-improvement rule: once a variant is
    /// accepted, later acceptances must (nearly) beat its speedup. This is
    /// also the noise defense the paper discusses — without it, timing
    /// jitter near the 1.0× boundary walks the search into local minima.
    pub monotone: bool,
    /// Slack on the rising bar (an accepted speedup s sets the bar to
    /// `s * monotone_slack`).
    pub monotone_slack: f64,
}

impl Default for DdParams {
    fn default() -> Self {
        DdParams {
            min_speedup: 1.0,
            max_variants: None,
            monotone: true,
            monotone_slack: 0.995,
        }
    }
}

/// The delta-debugging strategy.
pub struct DeltaDebug {
    pub params: DdParams,
}

impl DeltaDebug {
    pub fn new(params: DdParams) -> Self {
        DeltaDebug { params }
    }

    /// Run the search to completion (or budget exhaustion).
    pub fn run<E: Evaluator>(&self, eval: &mut E) -> SearchResult {
        self.run_impl(eval, None, None)
    }

    /// Like [`DeltaDebug::run`], with a [`TrialSink`] observing every probe
    /// (unique evaluations and memo hits).
    pub fn run_with_sink<'a, E: Evaluator>(
        &self,
        eval: &'a mut E,
        sink: &'a mut dyn TrialSink,
    ) -> SearchResult {
        self.run_impl(eval, None, Some(sink))
    }

    /// Grouped-atom search: ddmin first decides one bit per *unit* (a
    /// precision congruence class — a set of atom indices forced to move
    /// together), then refines the surviving units back to individual
    /// atoms on the same memo, with the monotone bar carried across the
    /// phases. The final configuration is therefore accepted at a bar at
    /// least as high as any group-phase acceptance, and the refinement
    /// phase's termination test is the same exhaustive single-atom removal
    /// variable-granular dd ends with — the result is 1-minimal at atom
    /// granularity and no worse than variable-granular dd on this memo.
    ///
    /// `units` must partition `0..eval.atom_count()`.
    pub fn run_grouped<E: Evaluator>(&self, eval: &mut E, units: &[Vec<usize>]) -> SearchResult {
        self.run_impl(eval, Some(units), None)
    }

    /// [`DeltaDebug::run_grouped`] with a [`TrialSink`] attached.
    pub fn run_grouped_with_sink<'a, E: Evaluator>(
        &self,
        eval: &'a mut E,
        units: &[Vec<usize>],
        sink: &'a mut dyn TrialSink,
    ) -> SearchResult {
        self.run_impl(eval, Some(units), Some(sink))
    }

    fn run_impl<'a, E: Evaluator>(
        &self,
        eval: &'a mut E,
        units: Option<&[Vec<usize>]>,
        sink: Option<&'a mut dyn TrialSink>,
    ) -> SearchResult {
        let n = eval.atom_count();
        let mut memo = Memo::new(eval, self.params.max_variants);
        if let Some(s) = sink {
            memo.attach_sink(s);
        }
        let mut bar = self.params.min_speedup;

        let singletons: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let first_units = units.unwrap_or(&singletons);
        let first = self.ddmin_units(&mut memo, first_units, n, &mut bar);

        let (high_atoms, one_minimal, budget_exhausted) = match units {
            // Variable-granular: unit indices are atom indices.
            None => (first.high, first.one_minimal, first.budget_exhausted),
            Some(us) => {
                let mut atoms: Vec<usize> = first
                    .high
                    .iter()
                    .flat_map(|&u| us[u].iter().copied())
                    .collect();
                atoms.sort_unstable();
                let already_atomic = first.high.iter().all(|&u| us[u].len() == 1);
                if first.budget_exhausted || atoms.is_empty() || already_atomic {
                    // No budget left to refine, the empty high set was
                    // accepted (trivially minimal at any granularity), or
                    // every surviving unit is a single atom — the group
                    // phase's termination already tested each removal.
                    (atoms, first.one_minimal, first.budget_exhausted)
                } else {
                    // Refinement: per-atom ddmin over the frontier classes
                    // only; everything outside them stays lowered.
                    let frontier: Vec<Vec<usize>> = atoms.iter().map(|&a| vec![a]).collect();
                    let second = self.ddmin_units(&mut memo, &frontier, n, &mut bar);
                    let refined: Vec<usize> = second.high.iter().map(|&u| frontier[u][0]).collect();
                    (refined, second.one_minimal, second.budget_exhausted)
                }
            }
        };

        let final_config = config_for(&high_atoms.iter().map(|&a| vec![a]).collect::<Vec<_>>(), n);
        SearchResult {
            best: memo.best(self.params.min_speedup),
            final_config,
            one_minimal,
            trace: memo.trace,
            budget_exhausted,
        }
    }

    /// One ddmin pass over an arbitrary unit partition. `high` in the
    /// result is a set of indices into `units`. The monotone bar is shared
    /// with (and survives into) any later pass on the same memo.
    fn ddmin_units<E: Evaluator>(
        &self,
        memo: &mut Memo<'_, E>,
        units: &[Vec<usize>],
        n: usize,
        bar: &mut f64,
    ) -> DdminPass {
        let nu = units.len();
        let cfg_of = |high: &[usize]| -> Config {
            let members: Vec<Vec<usize>> = high.iter().map(|&u| units[u].clone()).collect();
            config_for(&members, n)
        };

        // Fast path: lower every unit (empty high set).
        let mut budget_exhausted = false;
        let all_lowered = cfg_of(&[]);
        match memo.evaluate(&all_lowered) {
            Some(o) if o.accepted(*bar) => {
                return DdminPass {
                    high: vec![],
                    one_minimal: true, // empty high set is trivially minimal
                    budget_exhausted: false,
                };
            }
            Some(_) => {}
            None => budget_exhausted = true,
        }

        let mut high: Vec<usize> = (0..nu).collect();
        let mut granularity: usize = 2;
        let mut one_minimal = false;

        'outer: while !budget_exhausted && !high.is_empty() {
            let parts = partition(&high, granularity);

            // Phase 1: reduce to a single partition. The whole batch is
            // generated up front and evaluated together (the paper's T2/T3
            // run each batch in parallel, one node per variant).
            if parts.len() > 1 {
                let batch: Vec<Config> = parts.iter().map(|p| cfg_of(p)).collect();
                let outcomes = memo.evaluate_batch(&batch);
                if outcomes.iter().any(Option::is_none) {
                    budget_exhausted = true;
                }
                for (p, o) in parts.iter().zip(&outcomes) {
                    if let Some(o) = o {
                        if o.accepted(*bar) {
                            if self.params.monotone {
                                *bar = bar.max(o.speedup * self.params.monotone_slack);
                            }
                            high = p.clone();
                            granularity = 2;
                            continue 'outer;
                        }
                    }
                }
                if budget_exhausted {
                    break 'outer;
                }
            }

            // Phase 2: reduce by removing one partition from the high set.
            let complements: Vec<Vec<usize>> = (0..parts.len())
                .map(|i| {
                    parts
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .flat_map(|(_, p)| p.iter().copied())
                        .collect()
                })
                .collect();
            let batch: Vec<Config> = complements.iter().map(|c| cfg_of(c)).collect();
            let outcomes = memo.evaluate_batch(&batch);
            if outcomes.iter().any(Option::is_none) {
                budget_exhausted = true;
            }
            let mut removed_any = false;
            for (candidate, o) in complements.into_iter().zip(&outcomes) {
                if let Some(o) = o {
                    if o.accepted(*bar) {
                        if self.params.monotone {
                            *bar = bar.max(o.speedup * self.params.monotone_slack);
                        }
                        let was_single_granularity = granularity >= high.len();
                        high = candidate;
                        granularity = if was_single_granularity {
                            high.len().max(2)
                        } else {
                            (granularity - 1).max(2)
                        };
                        removed_any = true;
                        break;
                    }
                }
            }
            if budget_exhausted {
                break 'outer;
            }
            if removed_any {
                continue 'outer;
            }

            // Phase 3: refine granularity or terminate.
            if granularity >= high.len() {
                // Every single removal was tested and rejected: 1-minimal.
                one_minimal = true;
                break;
            }
            granularity = (granularity * 2).min(high.len());
        }

        DdminPass {
            high,
            one_minimal,
            budget_exhausted,
        }
    }
}

/// Result of one [`DeltaDebug::ddmin_units`] pass; `high` indexes into the
/// unit partition the pass ran over.
struct DdminPass {
    high: Vec<usize>,
    one_minimal: bool,
    budget_exhausted: bool,
}

/// Lower everything, then raise the atoms of the given unit groups.
fn config_for(high_units: &[Vec<usize>], n: usize) -> Config {
    let mut cfg = vec![true; n];
    for unit in high_units {
        for &a in unit {
            cfg[a] = false;
        }
    }
    cfg
}

/// Split `set` into `k` nearly-equal contiguous partitions.
fn partition(set: &[usize], k: usize) -> Vec<Vec<usize>> {
    let k = k.min(set.len()).max(1);
    let base = set.len() / k;
    let extra = set.len() % k;
    let mut out = Vec::with_capacity(k);
    let mut idx = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(set[idx..idx + len].to_vec());
        idx += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Synthetic;
    use crate::Status;

    fn high_set(cfg: &Config) -> Vec<usize> {
        cfg.iter()
            .enumerate()
            .filter(|(_, b)| !**b)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn finds_empty_high_set_when_everything_lowers() {
        let mut ev = Synthetic::new(16, &[]);
        let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
        assert!(r.one_minimal);
        assert!(high_set(&r.final_config).is_empty());
        assert_eq!(r.trace.len(), 1); // uniform-32 accepted immediately
        assert!(r.best.is_some());
    }

    #[test]
    fn isolates_a_single_critical_variable() {
        // The ADCIRC scenario: exactly one variable must stay 64-bit.
        let mut ev = Synthetic::new(32, &[17]);
        let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
        assert!(r.one_minimal);
        assert_eq!(high_set(&r.final_config), vec![17]);
        assert!(!r.budget_exhausted);
        // The best variant lowers all but one atom.
        let best = r
            .best
            .as_ref()
            .expect("an accepting search must report a best variant");
        assert_eq!(best.config.iter().filter(|b| !**b).count(), 1);
    }

    #[test]
    fn isolates_scattered_critical_sets() {
        for critical in [
            vec![0],
            vec![31],
            vec![3, 19],
            vec![5, 6, 7],
            vec![0, 15, 31],
        ] {
            let mut ev = Synthetic::new(32, &critical);
            let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
            let mut hs = high_set(&r.final_config);
            hs.sort_unstable();
            assert_eq!(hs, critical, "critical set {critical:?}");
            assert!(r.one_minimal);
        }
    }

    #[test]
    fn one_minimality_holds_by_exhaustive_single_flips() {
        let critical = vec![2, 9, 20, 21];
        let mut ev = Synthetic::new(24, &critical);
        let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
        assert!(r.one_minimal);
        // Lowering any remaining high atom must be rejected.
        let mut check = Synthetic::new(24, &critical);
        for h in high_set(&r.final_config) {
            let mut cfg = r.final_config.clone();
            cfg[h] = true;
            let o = crate::Evaluator::evaluate(&mut check, &cfg);
            assert!(!o.accepted(1.0), "flipping {h} should not be accepted");
        }
    }

    #[test]
    fn complexity_is_subquadratic_for_single_critical() {
        let n = 128;
        let mut ev = Synthetic::new(n, &[77]);
        let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
        assert_eq!(high_set(&r.final_config), vec![77]);
        // O(n log n)-ish: comfortably below n²/4.
        assert!(
            r.trace.len() < n * n / 4,
            "expected subquadratic trials, got {}",
            r.trace.len()
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut ev = Synthetic::new(64, &[1, 13, 40, 41, 62]);
        let r = DeltaDebug::new(DdParams {
            max_variants: Some(5),
            ..Default::default()
        })
        .run(&mut ev);
        assert!(r.budget_exhausted);
        assert!(!r.one_minimal);
        assert_eq!(r.trace.len(), 5);
    }

    #[test]
    fn runtime_errors_are_never_accepted() {
        let mut ev = Synthetic::new(8, &[]);
        ev.poison = vec![3];
        let r = DeltaDebug::new(DdParams::default()).run(&mut ev);
        let hs = high_set(&r.final_config);
        assert_eq!(hs, vec![3]);
        // Trace contains runtime errors.
        assert!(r
            .trace
            .iter()
            .any(|t| matches!(t.outcome.status, Status::RuntimeError)));
    }

    #[test]
    fn min_speedup_bar_rejects_slow_passes() {
        // Critical-free evaluator, but demand an impossible 3x: the search
        // should find nothing acceptable and keep everything high.
        let mut ev = Synthetic::new(8, &[]);
        let r = DeltaDebug::new(DdParams {
            min_speedup: 3.0,
            ..Default::default()
        })
        .run(&mut ev);
        assert!(r.best.is_none());
        // Nothing acceptable: the search ends with the full high set
        // (equivalent to the original program).
        assert_eq!(high_set(&r.final_config).len(), 8);
    }

    #[test]
    fn sink_counts_agree_with_trace_and_evaluator() {
        let mut ev = Synthetic::new(16, &[3]);
        let mut sink = crate::CountingSink::default();
        let r = DeltaDebug::new(DdParams::default()).run_with_sink(&mut ev, &mut sink);
        assert_eq!(high_set(&r.final_config), vec![3]);
        assert_eq!(sink.trials as usize, r.trace.len());
        assert_eq!(ev.evaluations, r.trace.len());
        // ddmin revisits configurations across granularity changes; the
        // memo table answers those without consulting the evaluator.
        assert!(sink.memo_hits > 0);
    }

    #[test]
    fn singleton_units_reproduce_the_variable_granular_search_exactly() {
        let critical = vec![2, 9, 20, 21];
        let mut plain_ev = Synthetic::new(24, &critical);
        let plain = DeltaDebug::new(DdParams::default()).run(&mut plain_ev);
        let units: Vec<Vec<usize>> = (0..24).map(|i| vec![i]).collect();
        let mut grouped_ev = Synthetic::new(24, &critical);
        let grouped = DeltaDebug::new(DdParams::default()).run_grouped(&mut grouped_ev, &units);
        assert_eq!(grouped.final_config, plain.final_config);
        assert_eq!(grouped.one_minimal, plain.one_minimal);
        // Same memo-visible probes in the group phase; the refinement pass
        // re-asks only memoised configurations, so the evaluator sees no
        // extra work.
        assert_eq!(grouped_ev.evaluations, plain_ev.evaluations);
        let plain_cfgs: Vec<_> = plain.trace.iter().map(|t| t.config.clone()).collect();
        let grouped_cfgs: Vec<_> = grouped.trace.iter().map(|t| t.config.clone()).collect();
        assert_eq!(grouped_cfgs, plain_cfgs);
    }

    #[test]
    fn grouped_units_isolate_a_critical_class_with_fewer_evaluations() {
        // Four critical atoms forming one congruence class, *scattered*
        // across declaration order (class members never sit side by side
        // in real code): grouped dd decides them as a single bit, while
        // ddmin's contiguous partitions must grind down to them one by
        // one. Refinement then confirms each member individually.
        let critical = vec![3, 11, 19, 27];
        let units: Vec<Vec<usize>> = (0..8).map(|g| vec![g, g + 8, g + 16, g + 24]).collect();

        let mut grouped_ev = Synthetic::new(32, &critical);
        let grouped = DeltaDebug::new(DdParams::default()).run_grouped(&mut grouped_ev, &units);
        assert!(grouped.one_minimal);
        assert_eq!(high_set(&grouped.final_config), critical);

        let mut plain_ev = Synthetic::new(32, &critical);
        let plain = DeltaDebug::new(DdParams::default()).run(&mut plain_ev);
        assert_eq!(high_set(&plain.final_config), critical);
        assert!(
            grouped_ev.evaluations < plain_ev.evaluations,
            "grouped {} must beat variable-granular {}",
            grouped_ev.evaluations,
            plain_ev.evaluations
        );
        // Equally good final configuration: same high set, same speedup.
        let gb = grouped.best.unwrap().outcome.speedup;
        let pb = plain.best.unwrap().outcome.speedup;
        assert!(gb >= pb * 0.995, "grouped best {gb} vs plain best {pb}");
    }

    #[test]
    fn refinement_splits_a_class_grouped_too_coarsely() {
        // Atoms 4..8 share a unit but only atom 5 is critical: the group
        // phase must keep the unit, and refinement must shed 4, 6, 7.
        let units: Vec<Vec<usize>> = vec![(0..4).collect(), (4..8).collect(), (8..12).collect()];
        let mut ev = Synthetic::new(12, &[5]);
        let r = DeltaDebug::new(DdParams::default()).run_grouped(&mut ev, &units);
        assert!(r.one_minimal);
        assert_eq!(high_set(&r.final_config), vec![5]);
    }

    #[test]
    fn grouped_search_respects_the_variant_budget() {
        let units: Vec<Vec<usize>> = (0..16).map(|g| vec![2 * g, 2 * g + 1]).collect();
        let mut ev = Synthetic::new(32, &[1, 13, 30]);
        let r = DeltaDebug::new(DdParams {
            max_variants: Some(4),
            ..Default::default()
        })
        .run_grouped(&mut ev, &units);
        assert!(r.budget_exhausted);
        assert!(!r.one_minimal);
        assert_eq!(r.trace.len(), 4);
    }

    #[test]
    fn grouped_fast_path_accepts_the_empty_high_set() {
        let units: Vec<Vec<usize>> = vec![(0..8).collect(), (8..16).collect()];
        let mut ev = Synthetic::new(16, &[]);
        let r = DeltaDebug::new(DdParams::default()).run_grouped(&mut ev, &units);
        assert!(r.one_minimal);
        assert!(high_set(&r.final_config).is_empty());
        assert_eq!(r.trace.len(), 1);
    }

    #[test]
    fn partition_splits_evenly() {
        let set: Vec<usize> = (0..10).collect();
        let parts = partition(&set, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 10);
        assert!(parts.iter().all(|p| p.len() >= 3));
        // Degenerate cases.
        assert_eq!(partition(&set, 100).len(), 10);
        assert_eq!(partition(&set, 1).len(), 1);
    }
}
