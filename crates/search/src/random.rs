//! Uniform random sampling baseline.
//!
//! Not used by the paper's methodology (Section III-B justifies adopting
//! the canonical delta-debugging strategy instead of comparing search
//! algorithms), but useful as a sanity baseline in the ablation benches:
//! random sampling at the same variant budget should find worse 1-minimal
//! sets than delta debugging.

use crate::{Config, Evaluator, Memo, SearchResult};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random search: `samples` configurations drawn uniformly, with the
/// lowered-fraction itself drawn uniformly per sample (so the space of
/// mostly-high and mostly-low variants are both covered).
pub struct RandomSearch {
    pub samples: usize,
    pub min_speedup: f64,
    pub seed: u64,
}

impl RandomSearch {
    pub fn new(samples: usize, seed: u64) -> Self {
        RandomSearch {
            samples,
            min_speedup: 1.0,
            seed,
        }
    }

    pub fn run<E: Evaluator>(&self, eval: &mut E) -> SearchResult {
        let n = eval.atom_count();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut memo = Memo::new(eval, Some(self.samples));
        // Always include the two uniform endpoints.
        let _ = memo.evaluate(&vec![true; n]);
        let _ = memo.evaluate(&vec![false; n]);
        let mut exhausted = false;
        while memo.trace.len() < self.samples {
            let p: f64 = rng.gen();
            let cfg: Config = (0..n).map(|_| rng.gen_bool(p)).collect();
            if memo.evaluate(&cfg).is_none() {
                exhausted = true;
                break;
            }
        }
        let best = memo.best(self.min_speedup);
        let final_config = best
            .as_ref()
            .map(|t| t.config.clone())
            .unwrap_or_else(|| vec![false; n]);
        SearchResult {
            best,
            final_config,
            one_minimal: false,
            trace: memo.trace,
            budget_exhausted: exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Synthetic;

    #[test]
    fn samples_up_to_budget_and_is_deterministic() {
        let mut ev1 = Synthetic::new(16, &[4]);
        let r1 = RandomSearch::new(40, 7).run(&mut ev1);
        let mut ev2 = Synthetic::new(16, &[4]);
        let r2 = RandomSearch::new(40, 7).run(&mut ev2);
        assert!(r1.trace.len() <= 40);
        assert_eq!(r1.trace.len(), r2.trace.len());
        for (a, b) in r1.trace.iter().zip(&r2.trace) {
            assert_eq!(a.config, b.config);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let mut ev1 = Synthetic::new(16, &[]);
        let r1 = RandomSearch::new(30, 1).run(&mut ev1);
        let mut ev2 = Synthetic::new(16, &[]);
        let r2 = RandomSearch::new(30, 2).run(&mut ev2);
        let same = r1
            .trace
            .iter()
            .zip(&r2.trace)
            .filter(|(a, b)| a.config == b.config)
            .count();
        assert!(same < r1.trace.len().min(r2.trace.len()));
    }

    #[test]
    fn includes_uniform_endpoints() {
        let mut ev = Synthetic::new(8, &[]);
        let r = RandomSearch::new(10, 3).run(&mut ev);
        assert!(r.trace.iter().any(|t| t.config.iter().all(|b| *b)));
        assert!(r.trace.iter().any(|t| t.config.iter().all(|b| !*b)));
        // All-lowered works here, so it is the best.
        assert!(r.best.unwrap().config.iter().all(|b| *b));
    }
}
