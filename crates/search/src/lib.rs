//! # prose-search
//!
//! Search strategies over the mixed-precision design space.
//!
//! Configurations are bit vectors over the search atoms (`true` = lowered
//! to 32-bit), decoupled from the Fortran front end: the orchestrator maps
//! bit positions to FP variable ids. Strategies drive an [`Evaluator`] —
//! the dynamic transform/compile/run/measure loop — and record every trial
//! for the paper's Table II and Figure 5 artifacts.
//!
//! * [`dd::DeltaDebug`] — the Precimonious delta-debugging adaptation
//!   (Section III-B): searches for a *1-minimal* variant, i.e. one whose
//!   remaining 64-bit set cannot lose any single variable without violating
//!   the correctness threshold or dropping to baseline performance.
//!   O(n log n) average, O(n²) worst case.
//! * [`brute::BruteForce`] — exhaustive enumeration (the funarc motivating
//!   example's 2⁸ = 256 variants, Figure 2).
//! * [`random::RandomSearch`] — uniform random baseline.

pub mod brute;
pub mod dd;
pub mod random;

use serde::{Deserialize, Serialize};

/// One variant's dynamic evaluation summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Status {
    /// Ran to completion and met the correctness threshold.
    Pass,
    /// Ran to completion but exceeded the error threshold.
    FailAccuracy,
    /// Exceeded the 3×-baseline time budget.
    Timeout,
    /// Crashed (non-finite value, guard `stop`, out-of-bounds, ...).
    RuntimeError,
    /// The variant could not be generated/compiled.
    TransformError,
}

/// Measured outcome of one variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    pub status: Status,
    /// Eq. 1 median speedup vs. baseline (0 when the run did not finish).
    pub speedup: f64,
    /// Correctness-metric relative error (infinite when unavailable).
    /// JSON cannot carry infinities, so the field round-trips through
    /// `null`.
    #[serde(with = "maybe_infinite")]
    pub error: f64,
}

/// Serde adapter: non-finite f64 ⇄ JSON null.
mod maybe_infinite {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

impl Outcome {
    /// Acceptance used by the delta-debugging search: correct *and* faster
    /// than the `min_speedup` bar (the paper: "violates correctness or
    /// results in a variant that is less-performant than the baseline").
    pub fn accepted(&self, min_speedup: f64) -> bool {
        matches!(self.status, Status::Pass) && self.speedup > min_speedup
    }
}

/// A precision configuration: `lowered[i]` selects 32-bit for atom `i`.
pub type Config = Vec<bool>;

/// The dynamic-evaluation side of the Figure-1 cycle.
pub trait Evaluator {
    /// Transform, run, and measure the variant selected by `lowered`.
    fn evaluate(&mut self, lowered: &Config) -> Outcome;

    /// Evaluate a batch of variants. The paper's workflow generates a batch
    /// of precision assignments per search step and evaluates them in
    /// parallel (one Derecho node each, T2/T3 in the artifact appendix);
    /// implementations may parallelize. The default is sequential.
    fn evaluate_batch(&mut self, batch: &[Config]) -> Vec<Outcome> {
        batch.iter().map(|c| self.evaluate(c)).collect()
    }

    /// Number of search atoms.
    fn atom_count(&self) -> usize;
}

/// One explored variant, in exploration order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    pub index: usize,
    pub config: Config,
    pub outcome: Outcome,
}

impl Trial {
    /// Fraction of atoms at 32-bit — the colour axis of Figures 5/7.
    pub fn fraction_lowered(&self) -> f64 {
        if self.config.is_empty() {
            return 0.0;
        }
        self.config.iter().filter(|b| **b).count() as f64 / self.config.len() as f64
    }
}

/// Result of a search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Best accepted variant (max speedup), if any was found.
    pub best: Option<Trial>,
    /// The final configuration the strategy settled on.
    pub final_config: Config,
    /// `true` when the final configuration was verified 1-minimal.
    pub one_minimal: bool,
    /// Every unique variant evaluated, in order.
    pub trace: Vec<Trial>,
    /// `true` when the search stopped on its variant budget rather than its
    /// own termination criterion (the MOM6 12-hour-wall situation).
    pub budget_exhausted: bool,
}

impl SearchResult {
    /// Table II row: counts and percentages by status.
    pub fn status_summary(&self) -> StatusSummary {
        let mut s = StatusSummary {
            total: self.trace.len(),
            ..Default::default()
        };
        for t in &self.trace {
            match t.outcome.status {
                Status::Pass => s.pass += 1,
                Status::FailAccuracy => s.fail += 1,
                Status::Timeout => s.timeout += 1,
                Status::RuntimeError => s.error += 1,
                Status::TransformError => s.transform_error += 1,
            }
        }
        s.best_speedup = self.best.as_ref().map(|t| t.outcome.speedup).unwrap_or(1.0);
        s
    }
}

/// Aggregate counts for Table II.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatusSummary {
    pub total: usize,
    pub pass: usize,
    pub fail: usize,
    pub timeout: usize,
    pub error: usize,
    pub transform_error: usize,
    pub best_speedup: f64,
}

impl StatusSummary {
    pub fn pct(&self, n: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total as f64
        }
    }
}

/// Observer of the search's probe stream, called by [`Memo`] as the search
/// runs. Implementations feed dashboards, journals, or plain counters; the
/// default methods make every hook optional.
pub trait TrialSink {
    /// A new unique variant was evaluated (it just entered the trace).
    fn on_trial(&mut self, _trial: &Trial) {}

    /// A probe was answered from the search-level memo table without
    /// consulting the evaluator.
    fn on_memo_hit(&mut self, _config: &Config, _outcome: &Outcome) {}
}

/// The simplest [`TrialSink`]: counts probes.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    /// Unique evaluations forwarded to the evaluator.
    pub trials: u64,
    /// Probes answered from the search-level memo table.
    pub memo_hits: u64,
}

impl TrialSink for CountingSink {
    fn on_trial(&mut self, _trial: &Trial) {
        self.trials += 1;
    }

    fn on_memo_hit(&mut self, _config: &Config, _outcome: &Outcome) {
        self.memo_hits += 1;
    }
}

/// Shared memoizing harness: guarantees each unique configuration is
/// evaluated once and every unique evaluation lands in the trace.
pub struct Memo<'a, E: Evaluator> {
    eval: &'a mut E,
    seen: std::collections::HashMap<Config, Outcome>,
    pub trace: Vec<Trial>,
    /// Maximum number of *unique* evaluations; `None` = unlimited.
    pub max_variants: Option<usize>,
    sink: Option<&'a mut dyn TrialSink>,
}

impl<'a, E: Evaluator> Memo<'a, E> {
    pub fn new(eval: &'a mut E, max_variants: Option<usize>) -> Self {
        Memo {
            eval,
            seen: Default::default(),
            trace: Vec::new(),
            max_variants,
            sink: None,
        }
    }

    /// Attach an observer that sees every probe (unique evaluations and
    /// memo hits alike).
    pub fn attach_sink(&mut self, sink: &'a mut dyn TrialSink) {
        self.sink = Some(sink);
    }

    /// Evaluate (or recall) a configuration. Returns `None` when the
    /// variant budget is exhausted and the configuration is new.
    pub fn evaluate(&mut self, cfg: &Config) -> Option<Outcome> {
        if let Some(o) = self.seen.get(cfg) {
            let o = *o;
            if let Some(s) = self.sink.as_deref_mut() {
                s.on_memo_hit(cfg, &o);
            }
            return Some(o);
        }
        if let Some(max) = self.max_variants {
            if self.trace.len() >= max {
                return None;
            }
        }
        let outcome = self.eval.evaluate(cfg);
        self.seen.insert(cfg.clone(), outcome);
        self.trace.push(Trial {
            index: self.trace.len(),
            config: cfg.clone(),
            outcome,
        });
        if let Some(s) = self.sink.as_deref_mut() {
            s.on_trial(self.trace.last().expect("just pushed"));
        }
        Some(outcome)
    }

    pub fn atom_count(&self) -> usize {
        self.eval.atom_count()
    }

    /// Evaluate a batch, deduplicating against the cache and within the
    /// batch, truncating to the remaining variant budget. Returns one
    /// outcome per requested configuration, `None` for configurations that
    /// fell past the budget.
    pub fn evaluate_batch(&mut self, batch: &[Config]) -> Vec<Option<Outcome>> {
        // Collect configurations that still need evaluation, in order.
        let mut fresh: Vec<Config> = Vec::new();
        for cfg in batch {
            if !self.seen.contains_key(cfg) && !fresh.contains(cfg) {
                fresh.push(cfg.clone());
            }
        }
        if let Some(max) = self.max_variants {
            let remaining = max.saturating_sub(self.trace.len());
            fresh.truncate(remaining);
        }
        // Remember which configurations get their first evaluation in this
        // call: the first batch position holding one is the trial, every
        // other answered position is a memo hit.
        let mut fresh_first: std::collections::HashSet<Config> = fresh.iter().cloned().collect();
        if !fresh.is_empty() {
            let start = self.trace.len();
            let outcomes = self.eval.evaluate_batch(&fresh);
            for (cfg, outcome) in fresh.into_iter().zip(outcomes) {
                self.seen.insert(cfg.clone(), outcome);
                self.trace.push(Trial {
                    index: self.trace.len(),
                    config: cfg,
                    outcome,
                });
            }
            if let Some(s) = self.sink.as_deref_mut() {
                for t in &self.trace[start..] {
                    s.on_trial(t);
                }
            }
        }
        let mut out = Vec::with_capacity(batch.len());
        for cfg in batch {
            let o = self.seen.get(cfg).copied();
            if let Some(ref oc) = o {
                if !fresh_first.remove(cfg) {
                    if let Some(s) = self.sink.as_deref_mut() {
                        s.on_memo_hit(cfg, oc);
                    }
                }
            }
            out.push(o);
        }
        out
    }

    /// Best accepted trial so far.
    pub fn best(&self, min_speedup: f64) -> Option<Trial> {
        self.trace
            .iter()
            .filter(|t| t.outcome.accepted(min_speedup))
            .max_by(|a, b| a.outcome.speedup.total_cmp(&b.outcome.speedup))
            .cloned()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Synthetic evaluator: a designated set of atoms must stay 64-bit for
    /// correctness; speedup grows with the number of lowered atoms.
    pub struct Synthetic {
        pub n: usize,
        /// Atoms that break correctness when lowered.
        pub critical: Vec<usize>,
        /// Atoms that cause a runtime error when lowered.
        pub poison: Vec<usize>,
        pub evaluations: usize,
    }

    impl Synthetic {
        pub fn new(n: usize, critical: &[usize]) -> Self {
            Synthetic {
                n,
                critical: critical.to_vec(),
                poison: vec![],
                evaluations: 0,
            }
        }
    }

    impl Evaluator for Synthetic {
        fn evaluate(&mut self, lowered: &Config) -> Outcome {
            self.evaluations += 1;
            assert_eq!(lowered.len(), self.n);
            if self.poison.iter().any(|p| lowered[*p]) {
                return Outcome {
                    status: Status::RuntimeError,
                    speedup: 0.0,
                    error: f64::INFINITY,
                };
            }
            let bad = self.critical.iter().any(|c| lowered[*c]);
            let k = lowered.iter().filter(|b| **b).count();
            let speedup = 1.0 + k as f64 / self.n as f64;
            if bad {
                Outcome {
                    status: Status::FailAccuracy,
                    speedup,
                    error: 10.0,
                }
            } else {
                Outcome {
                    status: Status::Pass,
                    speedup,
                    error: 1e-6,
                }
            }
        }

        fn atom_count(&self) -> usize {
            self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Synthetic;
    use super::*;

    #[test]
    fn outcome_acceptance_requires_pass_and_speedup() {
        let pass_fast = Outcome {
            status: Status::Pass,
            speedup: 1.5,
            error: 0.0,
        };
        let pass_slow = Outcome {
            status: Status::Pass,
            speedup: 0.9,
            error: 0.0,
        };
        let fail_fast = Outcome {
            status: Status::FailAccuracy,
            speedup: 2.0,
            error: 9.0,
        };
        assert!(pass_fast.accepted(1.0));
        assert!(!pass_slow.accepted(1.0));
        assert!(!fail_fast.accepted(1.0));
    }

    #[test]
    fn memo_deduplicates_and_respects_budget() {
        let mut ev = Synthetic::new(4, &[]);
        let mut memo = Memo::new(&mut ev, Some(2));
        let a = vec![true, false, false, false];
        let b = vec![false, true, false, false];
        let c = vec![false, false, true, false];
        assert!(memo.evaluate(&a).is_some());
        assert!(memo.evaluate(&a).is_some()); // cached, no new eval
        assert!(memo.evaluate(&b).is_some());
        assert!(memo.evaluate(&c).is_none()); // budget
        assert_eq!(memo.trace.len(), 2);
        assert_eq!(ev.evaluations, 2);
    }

    #[test]
    fn trial_sink_observes_probes_and_memo_hits() {
        let mut ev = Synthetic::new(4, &[]);
        let mut sink = CountingSink::default();
        let a = vec![true, false, false, false];
        let b = vec![false, true, false, false];
        {
            let mut memo = Memo::new(&mut ev, None);
            memo.attach_sink(&mut sink);
            memo.evaluate(&a);
            memo.evaluate(&a); // memo hit
            memo.evaluate(&b);
            // All three answered from the table: two pre-seen plus an
            // in-batch duplicate.
            memo.evaluate_batch(&[a.clone(), b.clone(), a.clone()]);
            // One fresh config evaluated, its duplicate is a hit.
            let c = vec![false, false, true, false];
            memo.evaluate_batch(&[c.clone(), c.clone()]);
            assert_eq!(memo.trace.len(), 3);
        }
        assert_eq!(ev.evaluations, 3);
        assert_eq!(sink.trials, 3);
        assert_eq!(sink.memo_hits, 5);
    }

    #[test]
    fn outcome_serde_round_trips_infinity() {
        let o = Outcome {
            status: Status::RuntimeError,
            speedup: 0.0,
            error: f64::INFINITY,
        };
        let text = serde_json::to_string(&o).unwrap();
        let back: Outcome = serde_json::from_str(&text).unwrap();
        assert_eq!(back.error, f64::INFINITY);
        let o2 = Outcome {
            status: Status::Pass,
            speedup: 1.5,
            error: 1e-6,
        };
        let back2: Outcome = serde_json::from_str(&serde_json::to_string(&o2).unwrap()).unwrap();
        assert_eq!(back2, o2);
    }

    #[test]
    fn trial_fraction_lowered() {
        let t = Trial {
            index: 0,
            config: vec![true, true, false, false],
            outcome: Outcome {
                status: Status::Pass,
                speedup: 1.0,
                error: 0.0,
            },
        };
        assert_eq!(t.fraction_lowered(), 0.5);
    }

    #[test]
    fn status_summary_counts() {
        let mk = |status| Trial {
            index: 0,
            config: vec![],
            outcome: Outcome {
                status,
                speedup: 1.2,
                error: 0.0,
            },
        };
        let r = SearchResult {
            best: Some(mk(Status::Pass)),
            final_config: vec![],
            one_minimal: true,
            trace: vec![
                mk(Status::Pass),
                mk(Status::FailAccuracy),
                mk(Status::FailAccuracy),
                mk(Status::Timeout),
                mk(Status::RuntimeError),
            ],
            budget_exhausted: false,
        };
        let s = r.status_summary();
        assert_eq!(s.total, 5);
        assert_eq!(s.pass, 1);
        assert_eq!(s.fail, 2);
        assert_eq!(s.timeout, 1);
        assert_eq!(s.error, 1);
        assert!((s.pct(s.fail) - 40.0).abs() < 1e-12);
        assert_eq!(s.best_speedup, 1.2);
    }
}
