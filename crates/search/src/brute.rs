//! Exhaustive enumeration of the 2ⁿ design space (feasible only for tiny
//! atom counts — the funarc motivating example, Section II-B).

use crate::{Config, Evaluator, Memo, SearchResult};

/// Brute-force search. Refuses atom counts above `max_atoms` (the paper's
/// scalability point: 2ⁿ explodes immediately).
pub struct BruteForce {
    pub min_speedup: f64,
    pub max_atoms: usize,
}

impl Default for BruteForce {
    fn default() -> Self {
        BruteForce {
            min_speedup: 1.0,
            max_atoms: 20,
        }
    }
}

impl BruteForce {
    /// Enumerate every configuration. Panics if the space is too large.
    pub fn run<E: Evaluator>(&self, eval: &mut E) -> SearchResult {
        let n = eval.atom_count();
        assert!(
            n <= self.max_atoms,
            "brute force over {n} atoms would evaluate 2^{n} variants; \
             use the delta-debugging search"
        );
        let mut memo = Memo::new(eval, None);
        // Evaluate in batches: the evaluator may parallelize a batch (the
        // paper's one-node-per-variant fan-out).
        let mut batch: Vec<Config> = Vec::with_capacity(128);
        for bits in 0..(1u64 << n) {
            batch.push((0..n).map(|i| bits >> i & 1 == 1).collect());
            if batch.len() == 128 {
                memo.evaluate_batch(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            memo.evaluate_batch(&batch);
        }
        let best = memo.best(self.min_speedup);
        let final_config = best
            .as_ref()
            .map(|t| t.config.clone())
            .unwrap_or_else(|| vec![false; n]);
        SearchResult {
            best,
            final_config,
            one_minimal: false, // exhaustive optimum, not a 1-minimal claim
            trace: memo.trace,
            budget_exhausted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Synthetic;

    #[test]
    fn enumerates_the_full_space() {
        let mut ev = Synthetic::new(8, &[2]);
        let r = BruteForce::default().run(&mut ev);
        assert_eq!(r.trace.len(), 256);
        // Optimum lowers everything except atom 2.
        let best = r.best.unwrap();
        assert!(!best.config[2]);
        assert_eq!(best.config.iter().filter(|b| **b).count(), 7);
    }

    #[test]
    #[should_panic(expected = "brute force")]
    fn refuses_large_spaces() {
        let mut ev = Synthetic::new(25, &[]);
        BruteForce::default().run(&mut ev);
    }

    #[test]
    fn reports_no_best_when_nothing_accepted() {
        let mut ev = Synthetic::new(4, &[0, 1, 2, 3]);
        let bf = BruteForce {
            min_speedup: 10.0,
            ..Default::default()
        };
        let r = bf.run(&mut ev);
        assert!(r.best.is_none());
        assert_eq!(r.final_config, vec![false; 4]);
    }
}
