//! # prose-trace
//!
//! Observability substrate for the tuning loop: a structured **trial
//! journal** (JSON Lines, one record per variant evaluation), per-stage
//! **clocks**, and string-keyed **counters**.
//!
//! The paper's pipeline ran each variant through T2 (transform) and T3
//! (compile + run) as batch jobs, so every evaluation left artifacts on
//! disk for free. This crate restores that property for the in-process
//! reproduction: every request the search makes of the evaluator — cache
//! hit or not — is appended to a journal, which then serves three roles:
//!
//! 1. an audit trail (`prose-report` renders Table II / Figure 5-style
//!    summaries from it),
//! 2. a persistent cross-run memoization cache (the evaluator preloads it
//!    and never re-runs the interpreter for an already-measured config),
//! 3. the raw data for search-efficiency statistics (probes vs. unique
//!    evaluations, time saved by caching).
//!
//! The crate is a leaf: it knows nothing about Fortran, searches, or the
//! interpreter. Statuses travel as strings; config bits as `Vec<bool>`.

pub mod jobstate;
pub mod journal;
pub mod tail;

pub use jobstate::{append_state, current_state, load_states, JobState, JobStateRecord};
pub use journal::{
    crc32, quarantine_path_for, FlushPolicy, Journal, LoadReport, RepairReport, ShadowTrial,
    TrialRecord,
};
pub use tail::JournalTail;

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// String-keyed monotone counters (cache hits, interpreter op counts,
/// timer-overhead events, ...). Serializes as a flat JSON object.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters(BTreeMap<String, u64>);

impl Counters {
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `n` to `key` (creating it at zero).
    pub fn bump(&mut self, key: &str, n: u64) {
        if n != 0 {
            *self.0.entry(key.to_string()).or_insert(0) += n;
        }
    }

    /// Current value of `key` (zero when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.0.get(key).copied().unwrap_or(0)
    }

    /// Add every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.0 {
            *self.0.entry(k.clone()).or_insert(0) += v;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Accumulates wall-clock nanoseconds into named stages
/// (`transform` / `lower` / `exec`, ...).
#[derive(Debug, Clone, Default)]
pub struct StageClock {
    stages: BTreeMap<String, u64>,
}

impl StageClock {
    pub fn new() -> Self {
        StageClock::default()
    }

    /// Time a closure and charge its duration to `stage`.
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add_ns(stage, t0.elapsed().as_nanos() as u64);
        out
    }

    /// Charge `ns` nanoseconds to `stage` directly (for durations measured
    /// elsewhere, e.g. inside the interpreter).
    pub fn add_ns(&mut self, stage: &str, ns: u64) {
        *self.stages.entry(stage.to_string()).or_insert(0) += ns;
    }

    pub fn get_ns(&self, stage: &str) -> u64 {
        self.stages.get(stage).copied().unwrap_or(0)
    }

    pub fn stages(&self) -> &BTreeMap<String, u64> {
        &self.stages
    }

    pub fn into_stages(self) -> BTreeMap<String, u64> {
        self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bump_get_merge() {
        let mut a = Counters::new();
        a.bump("x", 2);
        a.bump("x", 3);
        a.bump("zero", 0); // no-op: zero bumps do not create keys
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("zero"), 0);
        assert_eq!(a.get("missing"), 0);
        assert!(!a.is_empty());

        let mut b = Counters::new();
        b.bump("x", 1);
        b.bump("y", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 6);
        assert_eq!(a.get("y"), 7);
    }

    #[test]
    fn counters_serde_round_trips_as_flat_object() {
        let mut c = Counters::new();
        c.bump("cache_hits", 3);
        c.bump("fp64_ops", 12345);
        let text = serde_json::to_string(&c).unwrap();
        assert!(text.contains("\"cache_hits\""), "flat object: {text}");
        let back: Counters = serde_json::from_str(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn stage_clock_accumulates() {
        let mut clk = StageClock::new();
        let v = clk.time("work", || 41 + 1);
        assert_eq!(v, 42);
        clk.add_ns("work", 1000);
        clk.add_ns("other", 5);
        assert!(clk.get_ns("work") >= 1000);
        assert_eq!(clk.get_ns("other"), 5);
        assert_eq!(clk.stages().len(), 2);
        let map = clk.into_stages();
        assert!(map.contains_key("work"));
    }
}
