//! Incremental journal tailing: follow a growing JSONL file and yield
//! each **complete** line exactly once, in order.
//!
//! The service layer streams live job progress as server-sent events by
//! tailing the job's trial journal — the journal *is* the event format,
//! so the tailer only needs to deliver whole lines as they land. Partial
//! tails (a record mid-append, or the torn tail of a killed writer) are
//! left in place and re-examined on the next poll; a line is surfaced
//! only once its trailing newline exists. The tailer keeps a byte offset,
//! not a file handle, so it survives the journal being atomically
//! replaced underneath it (`load_repair`'s rewrite) — a shrunken file
//! resets the offset and re-reads from the start.

use std::io;
use std::path::{Path, PathBuf};

/// Follows one JSONL file by byte offset, yielding complete lines.
#[derive(Debug)]
pub struct JournalTail {
    path: PathBuf,
    offset: u64,
}

impl JournalTail {
    /// Tail `path` from the beginning (existing lines are yielded by the
    /// first [`JournalTail::poll`]). The file need not exist yet.
    pub fn new(path: impl AsRef<Path>) -> JournalTail {
        JournalTail {
            path: path.as_ref().to_path_buf(),
            offset: 0,
        }
    }

    /// Tail `path` from its current end (only lines appended after this
    /// call are yielded).
    pub fn from_end(path: impl AsRef<Path>) -> io::Result<JournalTail> {
        let offset = match std::fs::metadata(path.as_ref()) {
            Ok(m) => m.len(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        Ok(JournalTail {
            path: path.as_ref().to_path_buf(),
            offset,
        })
    }

    /// Current byte offset (start of the first unconsumed line).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Return every complete line appended since the last poll. A missing
    /// file yields nothing; a file *shorter* than the consumed offset
    /// (atomically replaced by a repair pass) resets the tail to the
    /// start, so replacement re-delivers the surviving lines rather than
    /// silently skipping them.
    pub fn poll(&mut self) -> io::Result<Vec<String>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        if (bytes.len() as u64) < self.offset {
            self.offset = 0;
        }
        let mut out = Vec::new();
        let mut start = self.offset as usize;
        while let Some(nl) = bytes[start..].iter().position(|b| *b == b'\n') {
            let line = &bytes[start..start + nl];
            // A corrupted journal may hold non-UTF-8 bytes; surface the
            // line lossily rather than stalling the stream.
            if !line.is_empty() {
                out.push(String::from_utf8_lossy(line).into_owned());
            }
            start += nl + 1;
        }
        self.offset = start as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("prose-tail-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn yields_complete_lines_exactly_once() {
        let path = tmp_path("once");
        let _ = std::fs::remove_file(&path);
        let mut tail = JournalTail::new(&path);
        assert!(
            tail.poll().unwrap().is_empty(),
            "missing file yields nothing"
        );

        std::fs::write(&path, "one\ntwo\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["one", "two"]);
        assert!(tail.poll().unwrap().is_empty(), "no re-delivery");

        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"three\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["three"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partial_tail_waits_for_its_newline() {
        let path = tmp_path("partial");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "full\npart").unwrap();
        let mut tail = JournalTail::new(&path);
        assert_eq!(tail.poll().unwrap(), vec!["full"]);
        // The partial line stays pending until its newline arrives.
        assert!(tail.poll().unwrap().is_empty());
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"ial\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["partial"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_end_skips_history() {
        let path = tmp_path("end");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "old\n").unwrap();
        let mut tail = JournalTail::from_end(&path).unwrap();
        assert!(tail.poll().unwrap().is_empty());
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"new\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["new"]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_replacement_resets_the_tail() {
        let path = tmp_path("replace");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "a\nb\nc\n").unwrap();
        let mut tail = JournalTail::new(&path);
        assert_eq!(tail.poll().unwrap().len(), 3);
        // A repair pass rewrote the journal smaller: the tail re-reads
        // from the start instead of pointing past the end.
        std::fs::write(&path, "a\nc\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["a", "c"]);
        std::fs::remove_file(&path).unwrap();
    }
}
