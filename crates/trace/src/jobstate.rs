//! The **job-state WAL**: a tiny append-only JSONL log of job lifecycle
//! transitions (`queued → running → {done, failed, cancelled}`), one per
//! service job, stored as `jobs/<id>/state.jsonl`.
//!
//! Same durability playbook as the trial journal, scaled down: every line
//! carries a CRC32 over its crc-less serialization, appends are flushed
//! and fsynced per record (state transitions are rare and must survive a
//! kill at any instant), and [`load_states`] is damage-tolerant — a torn
//! or corrupted line is skipped, never fatal, because the recovery scan
//! must classify *every* job directory even after a `kill -9` mid-append.
//! The current state of a job is simply the last intact line; a journal
//! whose lines are all damaged (or an absent file next to a persisted
//! `spec.json`) reads as "queued", the safe default: re-running a job is
//! free (memoized), failing to run one loses work.

use crate::journal::crc32;
use serde::{Deserialize, Serialize};
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

/// Lifecycle phase of a service job. Transitions only move forward except
/// `Running → Queued` (a checkpoint: the daemon was asked to shut down and
/// re-queued the interrupted job for the next process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobState {
    /// Persisted and waiting for a worker.
    Queued,
    /// Picked up by the runner; a crash in this state resumes via the
    /// trial journal.
    Running,
    /// Finished with a final configuration.
    Done,
    /// Finished without one (error surfaced to the client).
    Failed,
    /// Cancelled by a client or operator.
    Cancelled,
}

impl JobState {
    /// `true` for states with no further transitions.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Wire name (`queued`, `running`, `done`, `failed`, `cancelled`).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One state transition, as a WAL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStateRecord {
    /// Transition ordinal within this job's WAL (0-based).
    pub seq: u64,
    /// The state entered.
    pub state: JobState,
    /// Free-form detail: error text for `failed`, requester for
    /// `cancelled`, empty otherwise.
    #[serde(default)]
    pub detail: String,
    /// CRC32 of this record serialized with `crc` cleared to null.
    #[serde(default)]
    pub crc: Option<u32>,
}

impl JobStateRecord {
    fn expected_crc(&self) -> u32 {
        let mut body = self.clone();
        body.crc = None;
        let text = serde_json::to_string(&body).expect("JobStateRecord serializes");
        crc32(text.as_bytes())
    }
}

/// Append one state transition to the WAL at `path`, flushed **and
/// fsynced** before returning: once this returns, the transition survives
/// a `kill -9`. Creates the file (and parent directories) as needed; the
/// `seq` is derived from the current intact history.
pub fn append_state(path: impl AsRef<Path>, state: JobState, detail: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let seq = load_states(path)?.len() as u64;
    let mut rec = JobStateRecord {
        seq,
        state,
        detail: detail.to_string(),
        crc: None,
    };
    rec.crc = Some(rec.expected_crc());
    let line = serde_json::to_string(&rec)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    // A kill mid-append can leave a torn line with no trailing newline;
    // appending onto it would merge this record into the damage. Start on
    // a fresh line instead (the torn bytes stay skippable).
    let len = f.metadata()?.len();
    if len > 0 {
        use std::io::{Read, Seek, SeekFrom};
        let mut last = [0u8; 1];
        let mut reader = std::fs::File::open(path)?;
        reader.seek(SeekFrom::Start(len - 1))?;
        reader.read_exact(&mut last)?;
        if last[0] != b'\n' {
            f.write_all(b"\n")?;
        }
    }
    f.write_all(line.as_bytes())?;
    f.write_all(b"\n")?;
    f.flush()?;
    f.sync_data()
}

/// Read the intact transitions of a job-state WAL, in order. Damaged
/// lines (torn writes, corruption, CRC mismatches) are **skipped**, not
/// fatal — recovery must classify every job even from a WAL whose tail
/// was torn by a kill. A missing file is an empty history.
pub fn load_states(path: impl AsRef<Path>) -> io::Result<Vec<JobStateRecord>> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<JobStateRecord>(l).ok())
        .filter(|r| r.crc.is_none_or(|c| c == r.expected_crc()))
        .collect())
}

/// The job's current state: the last intact transition, or `Queued` when
/// the WAL is missing or fully damaged (the safe default — a persisted
/// job with unreadable state is re-run, and memoization makes that free).
pub fn current_state(path: impl AsRef<Path>) -> io::Result<JobState> {
    Ok(load_states(path)?
        .last()
        .map(|r| r.state)
        .unwrap_or(JobState::Queued))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("prose-jobstate-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn state_wal_round_trips_and_tracks_current() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        assert_eq!(current_state(&path).unwrap(), JobState::Queued);
        append_state(&path, JobState::Queued, "").unwrap();
        append_state(&path, JobState::Running, "").unwrap();
        assert_eq!(current_state(&path).unwrap(), JobState::Running);
        append_state(&path, JobState::Done, "").unwrap();
        let states = load_states(&path).unwrap();
        assert_eq!(states.len(), 3);
        assert_eq!(
            states.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(current_state(&path).unwrap(), JobState::Done);
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        append_state(&path, JobState::Queued, "").unwrap();
        append_state(&path, JobState::Running, "").unwrap();
        // Simulate a kill mid-append: a truncated final line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        assert_eq!(current_state(&path).unwrap(), JobState::Queued);
        // Recovery can keep appending after the damage.
        append_state(&path, JobState::Running, "").unwrap();
        assert_eq!(current_state(&path).unwrap(), JobState::Running);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc_mismatch_is_skipped() {
        let path = tmp_path("crc");
        let _ = std::fs::remove_file(&path);
        append_state(&path, JobState::Queued, "").unwrap();
        append_state(&path, JobState::Done, "").unwrap();
        // Tamper with the final line's state without breaking JSON.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"state\":\"done\"", "\"state\":\"failed\"");
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        // The tampered line fails its CRC and is ignored.
        assert_eq!(current_state(&path).unwrap(), JobState::Queued);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detail_travels_with_failures() {
        let path = tmp_path("detail");
        let _ = std::fs::remove_file(&path);
        append_state(&path, JobState::Failed, "interpreter diverged").unwrap();
        let states = load_states(&path).unwrap();
        assert_eq!(states[0].detail, "interpreter diverged");
        assert_eq!(states[0].state.name(), "failed");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("prose-jobstate-dirs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("jobs/abc123/state.jsonl");
        append_state(&path, JobState::Queued, "").unwrap();
        assert_eq!(current_state(&path).unwrap(), JobState::Queued);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
