//! The trial journal: an append-only JSON Lines **write-ahead log** with
//! one record per variant evaluation request.
//!
//! Records are self-describing and append-only so a crashed or interrupted
//! search leaves a readable journal; [`Journal::load`] tolerates a
//! truncated final line (the torn-write case) but rejects corruption
//! anywhere else. [`Journal::load_report`] additionally reports how many
//! torn lines were dropped, and [`FlushPolicy`] selects the durability /
//! throughput trade-off per record.

use crate::Counters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One evaluation request, as observed at the evaluator boundary.
///
/// `cached = true` means the outcome was served from the memoization cache
/// (either this process's table or a preloaded journal) and **no**
/// interpreter run happened; such records have no stage timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Journal sequence number (continues across runs appending to the
    /// same file).
    pub seq: u64,
    /// The search configuration (`true` = atom lowered to 32-bit).
    pub config: Vec<bool>,
    /// Outcome status (`pass`, `fail_accuracy`, `timeout`, `runtime_error`,
    /// `transform_error`).
    pub status: String,
    /// Eq. 1 median speedup vs. baseline (0 when the run did not finish).
    pub speedup: f64,
    /// Correctness-metric relative error. JSON cannot carry infinities, so
    /// a non-finite error round-trips through `null`.
    #[serde(with = "maybe_infinite")]
    pub error: f64,
    /// Whether the outcome was served from cache (no interpreter run).
    pub cached: bool,
    /// Wall-clock milliseconds spent answering this request.
    pub wall_ms: f64,
    /// Fraction of atoms at 32-bit in this configuration.
    #[serde(default)]
    pub fraction_single: f64,
    /// Number of wrapper procedures the transformer synthesized.
    #[serde(default)]
    pub wrappers: u64,
    /// Whole-model simulated cycles (when the run completed).
    #[serde(default)]
    pub total_cycles: Option<f64>,
    /// Hotspot-scoped simulated cycles (when the run completed).
    #[serde(default)]
    pub hotspot_cycles: Option<f64>,
    /// Wall-clock nanoseconds per pipeline stage
    /// (`transform` / `lower` / `exec`); empty for cached records.
    #[serde(default)]
    pub stages: BTreeMap<String, u64>,
    /// Per-trial interpreter counters (op counts by precision, casts,
    /// memory traffic, timer events, ...); empty for cached records.
    #[serde(default)]
    pub counters: Counters,
    /// Variant-generation path the evaluator was using (`fast` or
    /// `faithful`); empty in records from writers predating the fast path.
    #[serde(default)]
    pub variant_path: String,
    /// Structured failure classification (`timeout`, `fp_exception`,
    /// `template_desync`, `panic`, `journal_error`, `transform`,
    /// `runtime_other`); `None` for successful trials and records from
    /// writers predating failure classification.
    #[serde(default)]
    pub failure_kind: Option<String>,
    /// Kind of the injected fault, when the trial ran under fault
    /// injection (`nan`, `timeout`, `abort`, `jitter`).
    #[serde(default)]
    pub fault_kind: Option<String>,
    /// Per-trial injection seed; with the experiment's fault config it
    /// reproduces the injected failure exactly.
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Shadow-precision diagnostics (`--shadow`); `None` for trials run
    /// without shadow execution and records from writers predating it.
    #[serde(default)]
    pub shadow: Option<ShadowTrial>,
    /// Held-out ensemble member this trial belongs to; `None` for the
    /// tuning input. Part of the memoization key: the same configuration
    /// evaluated on different members must not collide.
    #[serde(default)]
    pub member: Option<u32>,
    /// Search granularity the tuner ran at (`variable` or `grouped`);
    /// empty in records from writers predating grouped-atom search.
    #[serde(default)]
    pub search_granularity: String,
    /// Worker-pool width the evaluator ran with; 0 in records from writers
    /// predating parallel evaluation (read as "serial, unstamped").
    #[serde(default)]
    pub workers: u64,
    /// Pool worker that executed this trial; `None` when the submitting
    /// thread ran it (serial path) or for pre-parallel records. Provenance
    /// only — scheduling-dependent, so equivalence checks must ignore it.
    #[serde(default)]
    pub worker: Option<u32>,
    /// Evaluation-round ordinal (one per batch submission or solo
    /// request). Deterministic across worker counts; `None` for
    /// pre-parallel records.
    #[serde(default)]
    pub batch: Option<u64>,
}

/// Per-trial shadow-execution summary, journaled when the evaluator runs
/// with shadow execution enabled. Field names mirror the interpreter's
/// `ShadowReport`, flattened to journal-friendly scalars.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShadowTrial {
    /// Largest per-variable relative error vs. the fp64 shadow.
    pub worst_rel: f64,
    /// Variable with the worst error (`proc::var` / `@global::var`).
    #[serde(default)]
    pub worst_var: Option<String>,
    /// Flagged catastrophic-cancellation events.
    #[serde(default)]
    pub cancellations: u64,
    /// Worst cancellation site, as `proc:line` with bits lost.
    #[serde(default)]
    pub cancellation_site: Option<String>,
    /// First non-finite producer, as `op at proc:line`.
    #[serde(default)]
    pub nonfinite_origin: Option<String>,
    /// True when the non-finite value was injected by the fault harness
    /// (and therefore not a genuine numerical event).
    #[serde(default)]
    pub nonfinite_injected: bool,
    /// True when the guardrail gate demoted this trial (scalar metric
    /// passed but the shadow error budget was exceeded).
    #[serde(default)]
    pub demoted: bool,
}

impl TrialRecord {
    /// Fraction helper for configs (mirrors `Trial::fraction_lowered`).
    pub fn fraction_of(config: &[bool]) -> f64 {
        if config.is_empty() {
            return 0.0;
        }
        config.iter().filter(|b| **b).count() as f64 / config.len() as f64
    }
}

/// Serde adapter: non-finite f64 ⇄ JSON null (same convention as
/// `prose-search`'s `Outcome::error`).
mod maybe_infinite {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// When the WAL pushes records to the operating system / the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Flush to the OS after every record (default). A killed *process*
    /// loses at most the torn tail of the final record; an OS crash or
    /// power loss may lose more.
    #[default]
    EveryRecord,
    /// Flush **and fsync** after every record: power-loss durable, one
    /// `fsync` per trial.
    Sync,
    /// Flush every `n` records (and on drop). Highest throughput; a crash
    /// loses up to `n` buffered records plus a torn tail.
    EveryN(u32),
}

impl std::str::FromStr for FlushPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "record" | "every-record" => Ok(FlushPolicy::EveryRecord),
            "sync" => Ok(FlushPolicy::Sync),
            n => n
                .parse::<u32>()
                .ok()
                .filter(|n| *n > 0)
                .map(FlushPolicy::EveryN)
                .ok_or_else(|| format!("unknown flush policy `{n}` (sync|record|<N>)")),
        }
    }
}

/// What [`Journal::load_report`] found in a journal file.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Every intact record, in order.
    pub records: Vec<TrialRecord>,
    /// Number of torn (truncated-write) lines dropped from the tail —
    /// 0 or 1; surfaced as a warning counter by consumers.
    pub torn_tail: u32,
}

/// Append-only JSONL write-ahead log. [`FlushPolicy`] governs when records
/// reach the OS/disk; the default flushes per record, so records survive a
/// crash of the tuning process.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
    policy: FlushPolicy,
    unflushed: u32,
}

impl Journal {
    /// Open `path` for appending with the default flush policy, creating
    /// parent directories and the file as needed.
    pub fn open_append(path: impl AsRef<Path>) -> io::Result<Journal> {
        Self::open_append_with(path, FlushPolicy::default())
    }

    /// Open `path` for appending under an explicit [`FlushPolicy`].
    pub fn open_append_with(path: impl AsRef<Path>, policy: FlushPolicy) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            path,
            writer: BufWriter::new(file),
            policy,
            unflushed: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record as a single JSON line, flushing per the journal's
    /// [`FlushPolicy`].
    pub fn append(&mut self, rec: &TrialRecord) -> io::Result<()> {
        let line = serde_json::to_string(rec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.unflushed += 1;
        match self.policy {
            FlushPolicy::EveryRecord => self.flush(),
            FlushPolicy::Sync => {
                self.flush()?;
                self.writer.get_ref().sync_data()
            }
            FlushPolicy::EveryN(n) => {
                if self.unflushed >= n {
                    self.flush()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Push buffered records to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.unflushed = 0;
        self.writer.flush()
    }

    /// Read every record of a journal file, in order.
    ///
    /// A malformed **final** line is dropped (a torn write from an
    /// interrupted run); malformed earlier lines are an error. Use
    /// [`Journal::load_report`] to observe how many lines were dropped.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<TrialRecord>> {
        Self::load_report(path).map(|r| r.records)
    }

    /// Like [`Journal::load`], reporting dropped torn-tail lines so
    /// callers can surface a warning counter instead of losing the event.
    pub fn load_report(path: impl AsRef<Path>) -> io::Result<LoadReport> {
        let text = std::fs::read_to_string(path.as_ref())?;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut report = LoadReport {
            records: Vec::with_capacity(lines.len()),
            torn_tail: 0,
        };
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<TrialRecord>(line) {
                Ok(rec) => report.records.push(rec),
                Err(e) if i + 1 == lines.len() => {
                    eprintln!(
                        "[prose-trace] dropping torn final journal line in {}: {e}",
                        path.as_ref().display()
                    );
                    report.torn_tail += 1;
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal line {}: {e}", i + 1),
                    ))
                }
            }
        }
        Ok(report)
    }

    /// Like [`Journal::load`], but a missing file is an empty journal.
    pub fn load_or_empty(path: impl AsRef<Path>) -> io::Result<Vec<TrialRecord>> {
        Self::load_or_empty_report(path).map(|r| r.records)
    }

    /// Like [`Journal::load_report`], but a missing file is an empty
    /// journal.
    pub fn load_or_empty_report(path: impl AsRef<Path>) -> io::Result<LoadReport> {
        match Self::load_report(path) {
            Ok(r) => Ok(r),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LoadReport::default()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best effort: under EveryN, buffered records still reach the OS
        // on clean shutdown (a panic unwinding through the owner included).
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("prose-trace-{}-{tag}.jsonl", std::process::id()))
    }

    fn sample(seq: u64, cached: bool, error: f64) -> TrialRecord {
        let mut counters = Counters::new();
        if !cached {
            counters.bump("interp_fp64_ops", 10 + seq);
        }
        let mut stages = BTreeMap::new();
        if !cached {
            stages.insert("exec".to_string(), 1234);
            stages.insert("transform".to_string(), 56);
        }
        TrialRecord {
            seq,
            config: vec![true, false, seq.is_multiple_of(2)],
            status: if error.is_finite() {
                "pass"
            } else {
                "runtime_error"
            }
            .into(),
            speedup: if error.is_finite() { 1.25 } else { 0.0 },
            error,
            cached,
            wall_ms: 0.5,
            fraction_single: TrialRecord::fraction_of(&[true, false, seq.is_multiple_of(2)]),
            wrappers: 2,
            total_cycles: error.is_finite().then_some(1e6),
            hotspot_cycles: error.is_finite().then_some(2e5),
            stages,
            counters,
            variant_path: "fast".to_string(),
            failure_kind: (!error.is_finite()).then(|| "fp_exception".to_string()),
            fault_kind: None,
            fault_seed: None,
            shadow: None,
            member: None,
            search_granularity: "variable".to_string(),
            workers: 1,
            worker: None,
            batch: Some(seq),
        }
    }

    #[test]
    fn journal_round_trips_including_infinite_error() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let recs = vec![
            sample(0, false, 1e-7),
            sample(1, false, f64::INFINITY),
            sample(2, true, 1e-7),
        ];
        {
            let mut j = Journal::open_append(&path).unwrap();
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        // The non-finite error must be encoded as JSON null, not Infinity.
        let inf_line = text.lines().nth(1).unwrap();
        assert!(inf_line.contains("\"error\":null"), "line: {inf_line}");
        assert!(!text.contains("inf"), "no non-JSON infinities: {text}");

        let back = Journal::load(&path).unwrap();
        assert_eq!(back, recs);
        assert_eq!(back[1].error, f64::INFINITY);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_continues_an_existing_journal() {
        let path = tmp_path("appends");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
        }
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(1, true, 1e-9)).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!((back[0].seq, back[0].cached), (0, false));
        assert_eq!((back[1].seq, back[1].cached), (1, true));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_drops_torn_final_line_only() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        // Simulate a crash mid-write: truncate the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let back = Journal::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].seq, 0);

        // Corruption in the middle is an error, not silent data loss.
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(&path, format!("{}\ngarbage\n{}\n", lines[0], lines[1])).unwrap();
        assert!(Journal::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn old_records_without_new_fields_still_load() {
        // Forward compatibility: a minimal record (as an older writer might
        // have produced) deserializes with defaulted stages/counters.
        let line = r#"{"seq":7,"config":[true,true],"status":"pass","speedup":1.5,"error":1e-8,"cached":false,"wall_ms":2.0}"#;
        let rec: TrialRecord = serde_json::from_str(line).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.fraction_single, 0.0);
        assert_eq!(rec.wrappers, 0);
        assert_eq!(rec.total_cycles, None);
        assert!(rec.stages.is_empty());
        assert!(rec.counters.is_empty());
        assert_eq!(rec.variant_path, "");
        assert_eq!(rec.failure_kind, None);
        assert_eq!(rec.fault_kind, None);
        assert_eq!(rec.fault_seed, None);
        assert_eq!(rec.shadow, None);
        assert_eq!(rec.member, None);
        assert_eq!(rec.search_granularity, "");
    }

    #[test]
    fn shadow_and_member_fields_round_trip() {
        let path = tmp_path("shadow-fields");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample(0, false, 1e-9);
        rec.status = "fail_accuracy".into();
        rec.failure_kind = Some("shadow_budget".into());
        rec.member = Some(2);
        rec.shadow = Some(ShadowTrial {
            worst_rel: 0.5,
            worst_var: Some("fun::t1".into()),
            cancellations: 3,
            cancellation_site: Some("fun:12 (24.0 bits)".into()),
            nonfinite_origin: None,
            nonfinite_injected: false,
            demoted: true,
        });
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&rec).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back[0].member, Some(2));
        let sh = back[0].shadow.as_ref().unwrap();
        assert_eq!(sh.worst_rel, 0.5);
        assert_eq!(sh.cancellations, 3);
        assert!(sh.demoted);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_report_counts_torn_tail() {
        let path = tmp_path("torn-report");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        let clean = Journal::load_report(&path).unwrap();
        assert_eq!(clean.records.len(), 2);
        assert_eq!(clean.torn_tail, 0);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let torn = Journal::load_report(&path).unwrap();
        assert_eq!(torn.records.len(), 1);
        assert_eq!(torn.torn_tail, 1);

        // Missing file: empty report, no torn lines.
        let _ = std::fs::remove_file(&path);
        let empty = Journal::load_or_empty_report(&path).unwrap();
        assert!(empty.records.is_empty());
        assert_eq!(empty.torn_tail, 0);
    }

    #[test]
    fn flush_policies_persist_records() {
        // EveryN buffers; drop flushes the remainder.
        let path = tmp_path("flush-n");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append_with(&path, FlushPolicy::EveryN(3)).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
            // Not yet flushed: the file may be shorter than two records,
            // but after drop everything must be present.
        }
        assert_eq!(Journal::load(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();

        // Sync flushes + fsyncs each record.
        let path = tmp_path("flush-sync");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append_with(&path, FlushPolicy::Sync).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            assert_eq!(Journal::load(&path).unwrap().len(), 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_policy_parses() {
        use std::str::FromStr;
        assert_eq!(
            FlushPolicy::from_str("record").unwrap(),
            FlushPolicy::EveryRecord
        );
        assert_eq!(FlushPolicy::from_str("sync").unwrap(), FlushPolicy::Sync);
        assert_eq!(
            FlushPolicy::from_str("16").unwrap(),
            FlushPolicy::EveryN(16)
        );
        assert!(FlushPolicy::from_str("0").is_err());
        assert!(FlushPolicy::from_str("whenever").is_err());
    }

    #[test]
    fn failure_and_fault_fields_round_trip() {
        let path = tmp_path("fault-fields");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample(0, false, f64::INFINITY);
        rec.status = "runtime_error".into();
        rec.failure_kind = Some("panic".into());
        rec.fault_kind = Some("abort".into());
        rec.fault_seed = Some(0xdead_beef);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&rec).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back[0].failure_kind.as_deref(), Some("panic"));
        assert_eq!(back[0].fault_kind.as_deref(), Some("abort"));
        assert_eq!(back[0].fault_seed, Some(0xdead_beef));
        assert_eq!(back[1].fault_kind, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_or_empty_tolerates_missing_file() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Journal::load(&path).is_err());
        assert_eq!(Journal::load_or_empty(&path).unwrap(), Vec::new());
    }

    #[test]
    fn open_append_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("prose-trace-dirs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/trials.jsonl");
        {
            let mut j = Journal::open_append(&path).unwrap();
            assert_eq!(j.path(), path.as_path());
            j.append(&sample(0, false, 0.0)).unwrap();
        }
        assert_eq!(Journal::load(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
