//! The trial journal: an append-only JSON Lines **write-ahead log** with
//! one record per variant evaluation request.
//!
//! Records are self-describing and append-only so a crashed or interrupted
//! search leaves a readable journal; [`Journal::load`] tolerates a
//! truncated final line (the torn-write case) but rejects corruption
//! anywhere else. [`Journal::load_report`] additionally reports how many
//! torn lines were dropped, and [`FlushPolicy`] selects the durability /
//! throughput trade-off per record.
//!
//! Every appended record is stamped with a CRC32 checksum
//! ([`TrialRecord::crc`]), and [`Journal::load_repair`] turns corruption
//! *anywhere* into a recoverable event: damaged lines are preserved
//! byte-for-byte in `<journal>.quarantine` and the journal is atomically
//! rewritten to its intact records, so resumes survive mid-file damage
//! with everything else recovered.

use crate::Counters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// One evaluation request, as observed at the evaluator boundary.
///
/// `cached = true` means the outcome was served from the memoization cache
/// (either this process's table or a preloaded journal) and **no**
/// interpreter run happened; such records have no stage timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Journal sequence number (continues across runs appending to the
    /// same file).
    pub seq: u64,
    /// The search configuration (`true` = atom lowered to 32-bit).
    pub config: Vec<bool>,
    /// Outcome status (`pass`, `fail_accuracy`, `timeout`, `runtime_error`,
    /// `transform_error`).
    pub status: String,
    /// Eq. 1 median speedup vs. baseline (0 when the run did not finish).
    pub speedup: f64,
    /// Correctness-metric relative error. JSON cannot carry infinities, so
    /// a non-finite error round-trips through `null`.
    #[serde(with = "maybe_infinite")]
    pub error: f64,
    /// Whether the outcome was served from cache (no interpreter run).
    pub cached: bool,
    /// Wall-clock milliseconds spent answering this request.
    pub wall_ms: f64,
    /// Fraction of atoms at 32-bit in this configuration.
    #[serde(default)]
    pub fraction_single: f64,
    /// Number of wrapper procedures the transformer synthesized.
    #[serde(default)]
    pub wrappers: u64,
    /// Whole-model simulated cycles (when the run completed).
    #[serde(default)]
    pub total_cycles: Option<f64>,
    /// Hotspot-scoped simulated cycles (when the run completed).
    #[serde(default)]
    pub hotspot_cycles: Option<f64>,
    /// Wall-clock nanoseconds per pipeline stage
    /// (`transform` / `lower` / `exec`); empty for cached records.
    #[serde(default)]
    pub stages: BTreeMap<String, u64>,
    /// Per-trial interpreter counters (op counts by precision, casts,
    /// memory traffic, timer events, ...); empty for cached records.
    #[serde(default)]
    pub counters: Counters,
    /// Variant-generation path the evaluator was using (`fast` or
    /// `faithful`); empty in records from writers predating the fast path.
    #[serde(default)]
    pub variant_path: String,
    /// Structured failure classification (`timeout`, `fp_exception`,
    /// `template_desync`, `panic`, `journal_error`, `transform`,
    /// `runtime_other`); `None` for successful trials and records from
    /// writers predating failure classification.
    #[serde(default)]
    pub failure_kind: Option<String>,
    /// Kind of the injected fault, when the trial ran under fault
    /// injection (`nan`, `timeout`, `abort`, `jitter`).
    #[serde(default)]
    pub fault_kind: Option<String>,
    /// Per-trial injection seed; with the experiment's fault config it
    /// reproduces the injected failure exactly.
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Shadow-precision diagnostics (`--shadow`); `None` for trials run
    /// without shadow execution and records from writers predating it.
    #[serde(default)]
    pub shadow: Option<ShadowTrial>,
    /// Held-out ensemble member this trial belongs to; `None` for the
    /// tuning input. Part of the memoization key: the same configuration
    /// evaluated on different members must not collide.
    #[serde(default)]
    pub member: Option<u32>,
    /// Search granularity the tuner ran at (`variable` or `grouped`);
    /// empty in records from writers predating grouped-atom search.
    #[serde(default)]
    pub search_granularity: String,
    /// Worker-pool width the evaluator ran with; 0 in records from writers
    /// predating parallel evaluation (read as "serial, unstamped").
    #[serde(default)]
    pub workers: u64,
    /// Pool worker that executed this trial; `None` when the submitting
    /// thread ran it (serial path) or for pre-parallel records. Provenance
    /// only — scheduling-dependent, so equivalence checks must ignore it.
    #[serde(default)]
    pub worker: Option<u32>,
    /// Evaluation-round ordinal (one per batch submission or solo
    /// request). Deterministic across worker counts; `None` for
    /// pre-parallel records.
    #[serde(default)]
    pub batch: Option<u64>,
    /// Retry attempt that produced this record (0 = first try). Each
    /// attempt of a supervised trial journals its own record; 0 in
    /// records from writers predating retry.
    #[serde(default)]
    pub attempt: u32,
    /// Content-addressed service job this trial belongs to; `None` for
    /// standalone `prose-tune` runs and records from writers predating the
    /// service layer. Provenance only — never part of the memoization key.
    #[serde(default)]
    pub job: Option<String>,
    /// Absint pre-pass context the search ran under, as a compact
    /// `demote=a,b|pin=c|undecided=3` encoding of the static verdicts
    /// (atom names in declaration order). `None` for trials run without
    /// the pre-pass and records from writers predating static analysis.
    #[serde(default)]
    pub static_verdict: Option<String>,
    /// CRC32 (IEEE) of this record serialized with `crc` cleared to null.
    /// Stamped by [`Journal::append`]; verified by [`Journal::load_repair`]
    /// to catch in-place byte corruption that still parses as JSON.
    /// `None` in records from writers predating checksums (never checked).
    #[serde(default)]
    pub crc: Option<u32>,
}

/// Per-trial shadow-execution summary, journaled when the evaluator runs
/// with shadow execution enabled. Field names mirror the interpreter's
/// `ShadowReport`, flattened to journal-friendly scalars.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShadowTrial {
    /// Largest per-variable relative error vs. the fp64 shadow.
    pub worst_rel: f64,
    /// Variable with the worst error (`proc::var` / `@global::var`).
    #[serde(default)]
    pub worst_var: Option<String>,
    /// Flagged catastrophic-cancellation events.
    #[serde(default)]
    pub cancellations: u64,
    /// Worst cancellation site, as `proc:line` with bits lost.
    #[serde(default)]
    pub cancellation_site: Option<String>,
    /// First non-finite producer, as `op at proc:line`.
    #[serde(default)]
    pub nonfinite_origin: Option<String>,
    /// True when the non-finite value was injected by the fault harness
    /// (and therefore not a genuine numerical event).
    #[serde(default)]
    pub nonfinite_injected: bool,
    /// True when the guardrail gate demoted this trial (scalar metric
    /// passed but the shadow error budget was exceeded).
    #[serde(default)]
    pub demoted: bool,
}

impl TrialRecord {
    /// Fraction helper for configs (mirrors `Trial::fraction_lowered`).
    pub fn fraction_of(config: &[bool]) -> f64 {
        if config.is_empty() {
            return 0.0;
        }
        config.iter().filter(|b| **b).count() as f64 / config.len() as f64
    }

    /// The CRC32 this record *should* carry: computed over its JSON
    /// serialization with the `crc` field cleared (so stamping the
    /// checksum does not change what it covers).
    pub fn expected_crc(&self) -> u32 {
        let mut body = self.clone();
        body.crc = None;
        // Serialization of an in-memory record cannot fail: every field
        // type serializes infallibly (non-finite floats go through the
        // null adapter).
        let text = serde_json::to_string(&body).expect("TrialRecord serializes");
        crc32(text.as_bytes())
    }

    /// Checksum verdict: `None` when the record carries no checksum
    /// (pre-supervision writers — never treated as corrupt), otherwise
    /// whether the stored CRC matches the record's contents.
    pub fn crc_valid(&self) -> Option<bool> {
        self.crc.map(|c| c == self.expected_crc())
    }
}

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial every external `crc32` tool speaks. Hand-rolled table
/// implementation: the workspace takes no checksum dependency.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xffff_ffffu32;
    for b in data {
        crc = TABLE[((crc ^ *b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xffff_ffff
}

/// Serde adapter: non-finite f64 ⇄ JSON null (same convention as
/// `prose-search`'s `Outcome::error`).
mod maybe_infinite {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// When the WAL pushes records to the operating system / the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Flush to the OS after every record (default). A killed *process*
    /// loses at most the torn tail of the final record; an OS crash or
    /// power loss may lose more.
    #[default]
    EveryRecord,
    /// Flush **and fsync** after every record: power-loss durable, one
    /// `fsync` per trial.
    Sync,
    /// Flush every `n` records (and on drop). Highest throughput; a crash
    /// loses up to `n` buffered records plus a torn tail.
    EveryN(u32),
}

impl std::str::FromStr for FlushPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "record" | "every-record" => Ok(FlushPolicy::EveryRecord),
            "sync" => Ok(FlushPolicy::Sync),
            n => n
                .parse::<u32>()
                .ok()
                .filter(|n| *n > 0)
                .map(FlushPolicy::EveryN)
                .ok_or_else(|| format!("unknown flush policy `{n}` (sync|record|<N>)")),
        }
    }
}

/// What [`Journal::load_report`] found in a journal file.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Every intact record, in order.
    pub records: Vec<TrialRecord>,
    /// Number of torn (truncated-write) lines dropped from the tail —
    /// 0 or 1; surfaced as a warning counter by consumers.
    pub torn_tail: u32,
}

/// What [`Journal::load_repair`] found — and did. Unlike
/// [`Journal::load_report`], repair never hard-errors on corruption: the
/// journal file is rewritten to its intact records and every damaged line
/// is preserved byte-for-byte in `<journal>.quarantine`.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    /// Every intact record, in order.
    pub records: Vec<TrialRecord>,
    /// Damaged mid-file lines moved to the quarantine file this pass.
    pub quarantined: u32,
    /// Damaged final lines (the routine torn-write-on-kill case) — also
    /// preserved in the quarantine file, but counted separately.
    pub torn_tail: u32,
    /// The quarantine file, when this or an earlier pass produced one.
    pub quarantine_path: Option<PathBuf>,
}

impl RepairReport {
    /// Total damaged lines this pass (quarantined + torn tail).
    pub fn damaged(&self) -> u32 {
        self.quarantined + self.torn_tail
    }
}

/// Where [`Journal::load_repair`] preserves damaged lines:
/// `<journal>.quarantine`, next to the journal.
pub fn quarantine_path_for(path: impl AsRef<Path>) -> PathBuf {
    let path = path.as_ref();
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!("{name}.quarantine"))
}

/// Append-only JSONL write-ahead log. [`FlushPolicy`] governs when records
/// reach the OS/disk; the default flushes per record, so records survive a
/// crash of the tuning process.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
    policy: FlushPolicy,
    unflushed: u32,
}

impl Journal {
    /// Open `path` for appending with the default flush policy, creating
    /// parent directories and the file as needed.
    pub fn open_append(path: impl AsRef<Path>) -> io::Result<Journal> {
        Self::open_append_with(path, FlushPolicy::default())
    }

    /// Open `path` for appending under an explicit [`FlushPolicy`].
    pub fn open_append_with(path: impl AsRef<Path>, policy: FlushPolicy) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal {
            path,
            writer: BufWriter::new(file),
            policy,
            unflushed: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serialize one record to its journal line (no trailing newline),
    /// stamping the CRC32 checksum over the crc-less serialization.
    pub fn serialize_line(rec: &TrialRecord) -> io::Result<String> {
        let mut rec = rec.clone();
        rec.crc = None;
        let body = serde_json::to_string(&rec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        rec.crc = Some(crc32(body.as_bytes()));
        serde_json::to_string(&rec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Raw-byte checksum verdict for one journal line, without trusting a
    /// parse→re-serialize round trip.
    ///
    /// [`TrialRecord::crc_valid`] recomputes the checksum from the *parsed*
    /// record, so byte damage that parses back to the same record escapes
    /// it — a flipped character inside a field name whose value equals its
    /// serde default vanishes in the round trip (the unknown key is
    /// ignored, the default fills in, and the canonical re-serialization
    /// matches the pristine body). This check instead rebuilds the exact
    /// crc-less body [`Journal::serialize_line`] hashed — the raw line
    /// with the trailing `"crc"` value (always the final field) replaced
    /// by `null` — so *any* single-bit flip outside the three bytes of the
    /// `crc` key name itself is caught. `None` means the line carries no
    /// parseable checksum suffix (pre-supervision writers).
    pub fn line_crc_valid(line: &str) -> Option<bool> {
        let line = line.trim_end();
        let idx = line.rfind(",\"crc\":")?;
        let digits = line[idx + 7..].strip_suffix('}')?;
        if digits == "null" {
            return None;
        }
        let stored: u32 = digits.parse().ok()?;
        let mut body = String::with_capacity(idx + 13);
        body.push_str(&line[..idx]);
        body.push_str(",\"crc\":null}");
        Some(crc32(body.as_bytes()) == stored)
    }

    /// Append one record as a single JSON line, flushing per the journal's
    /// [`FlushPolicy`]. The record is CRC-stamped (see
    /// [`Journal::serialize_line`]); any `crc` already on it is recomputed.
    pub fn append(&mut self, rec: &TrialRecord) -> io::Result<()> {
        let line = Self::serialize_line(rec)?;
        self.append_raw_line(line.as_bytes())
    }

    /// Append one pre-serialized line verbatim (plus the newline). The
    /// fault-injection path uses this to write a deliberately corrupted
    /// record — as bytes, since a bit flip may break UTF-8; everything
    /// else should go through [`Journal::append`].
    pub fn append_raw_line(&mut self, line: &[u8]) -> io::Result<()> {
        self.writer.write_all(line)?;
        self.writer.write_all(b"\n")?;
        self.unflushed += 1;
        match self.policy {
            FlushPolicy::EveryRecord => self.flush(),
            FlushPolicy::Sync => {
                self.flush()?;
                self.writer.get_ref().sync_data()
            }
            FlushPolicy::EveryN(n) => {
                if self.unflushed >= n {
                    self.flush()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Push buffered records to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.unflushed = 0;
        self.writer.flush()
    }

    /// Read every record of a journal file, in order.
    ///
    /// A malformed **final** line is dropped (a torn write from an
    /// interrupted run); malformed earlier lines are an error. Use
    /// [`Journal::load_report`] to observe how many lines were dropped.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<TrialRecord>> {
        Self::load_report(path).map(|r| r.records)
    }

    /// Like [`Journal::load`], reporting dropped torn-tail lines so
    /// callers can surface a warning counter instead of losing the event.
    pub fn load_report(path: impl AsRef<Path>) -> io::Result<LoadReport> {
        let text = std::fs::read_to_string(path.as_ref())?;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut report = LoadReport {
            records: Vec::with_capacity(lines.len()),
            torn_tail: 0,
        };
        for (i, line) in lines.iter().enumerate() {
            let parsed = match serde_json::from_str::<TrialRecord>(line) {
                Ok(rec) if rec.crc_valid() == Some(false) => Err("CRC mismatch".to_string()),
                Ok(_) if Self::line_crc_valid(line) == Some(false) => {
                    Err("raw CRC mismatch".to_string())
                }
                Ok(rec) => Ok(rec),
                Err(e) => Err(e.to_string()),
            };
            match parsed {
                Ok(rec) => report.records.push(rec),
                Err(e) if i + 1 == lines.len() => {
                    eprintln!(
                        "[prose-trace] dropping torn final journal line in {}: {e}",
                        path.as_ref().display()
                    );
                    report.torn_tail += 1;
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("journal line {}: {e}", i + 1),
                    ))
                }
            }
        }
        Ok(report)
    }

    /// Like [`Journal::load`], but a missing file is an empty journal.
    pub fn load_or_empty(path: impl AsRef<Path>) -> io::Result<Vec<TrialRecord>> {
        Self::load_or_empty_report(path).map(|r| r.records)
    }

    /// Like [`Journal::load_report`], but a missing file is an empty
    /// journal.
    pub fn load_or_empty_report(path: impl AsRef<Path>) -> io::Result<LoadReport> {
        match Self::load_report(path) {
            Ok(r) => Ok(r),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LoadReport::default()),
            Err(e) => Err(e),
        }
    }

    /// Self-healing load: read every line, keep the intact records, and
    /// *repair* the journal in place instead of hard-erroring on
    /// corruption anywhere.
    ///
    /// A line is damaged when it fails to parse **or** parses but fails
    /// its CRC check (in-place byte corruption that still happens to be
    /// JSON). Damaged lines are appended byte-for-byte to
    /// `<journal>.quarantine` and the journal is atomically rewritten
    /// (tmp file + rename) to exactly its intact lines, so a subsequent
    /// strict [`Journal::load`] succeeds and an `open_append` resume
    /// cannot merge new records into a torn tail.
    ///
    /// The pass is idempotent and kill-safe: quarantine appends are
    /// deduplicated against the quarantine file's existing lines, the
    /// quarantine is synced before the journal is replaced, and the
    /// rename is atomic — a kill at any point leaves both files in a
    /// state from which a re-run converges to the same result.
    pub fn load_repair(path: impl AsRef<Path>) -> io::Result<RepairReport> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut report = RepairReport::default();
        let mut intact: Vec<&str> = Vec::with_capacity(lines.len());
        let mut damaged: Vec<&str> = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let parsed = serde_json::from_str::<TrialRecord>(line)
                .ok()
                .filter(|rec| rec.crc_valid() != Some(false))
                .filter(|_| Self::line_crc_valid(line) != Some(false));
            match parsed {
                Some(rec) => {
                    report.records.push(rec);
                    intact.push(line);
                }
                None => {
                    if i + 1 == lines.len() {
                        report.torn_tail += 1;
                    } else {
                        report.quarantined += 1;
                    }
                    damaged.push(line);
                }
            }
        }
        let qpath = quarantine_path_for(path);
        if qpath.exists() {
            report.quarantine_path = Some(qpath.clone());
        }
        if damaged.is_empty() {
            return Ok(report);
        }
        // 1. Preserve the damaged bytes, deduped against earlier passes so
        //    a kill between this append and the rewrite below cannot
        //    duplicate them when the repair re-runs.
        let existing: std::collections::HashSet<String> = std::fs::read_to_string(&qpath)
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default();
        let fresh: Vec<&&str> = damaged.iter().filter(|l| !existing.contains(**l)).collect();
        if !fresh.is_empty() {
            let q = OpenOptions::new().create(true).append(true).open(&qpath)?;
            let mut q = BufWriter::new(q);
            for l in &fresh {
                q.write_all(l.as_bytes())?;
                q.write_all(b"\n")?;
            }
            q.flush()?;
            q.get_ref().sync_data()?;
        }
        report.quarantine_path = Some(qpath);
        // 2. Atomically rewrite the journal to its intact lines.
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let tmp = path.with_file_name(format!("{name}.repair-tmp"));
        {
            let f = File::create(&tmp)?;
            let mut w = BufWriter::new(f);
            for l in &intact {
                w.write_all(l.as_bytes())?;
                w.write_all(b"\n")?;
            }
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(report)
    }

    /// Like [`Journal::load_repair`], but a missing file is an empty
    /// journal — the entry point `--resume` uses.
    pub fn load_repair_or_empty(path: impl AsRef<Path>) -> io::Result<RepairReport> {
        match Self::load_repair(path) {
            Ok(r) => Ok(r),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(RepairReport::default()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best effort: under EveryN, buffered records still reach the OS
        // on clean shutdown (a panic unwinding through the owner included).
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("prose-trace-{}-{tag}.jsonl", std::process::id()))
    }

    fn sample(seq: u64, cached: bool, error: f64) -> TrialRecord {
        let mut counters = Counters::new();
        if !cached {
            counters.bump("interp_fp64_ops", 10 + seq);
        }
        let mut stages = BTreeMap::new();
        if !cached {
            stages.insert("exec".to_string(), 1234);
            stages.insert("transform".to_string(), 56);
        }
        TrialRecord {
            seq,
            config: vec![true, false, seq.is_multiple_of(2)],
            status: if error.is_finite() {
                "pass"
            } else {
                "runtime_error"
            }
            .into(),
            speedup: if error.is_finite() { 1.25 } else { 0.0 },
            error,
            cached,
            wall_ms: 0.5,
            fraction_single: TrialRecord::fraction_of(&[true, false, seq.is_multiple_of(2)]),
            wrappers: 2,
            total_cycles: error.is_finite().then_some(1e6),
            hotspot_cycles: error.is_finite().then_some(2e5),
            stages,
            counters,
            variant_path: "fast".to_string(),
            failure_kind: (!error.is_finite()).then(|| "fp_exception".to_string()),
            fault_kind: None,
            fault_seed: None,
            shadow: None,
            member: None,
            search_granularity: "variable".to_string(),
            workers: 1,
            worker: None,
            batch: Some(seq),
            attempt: 0,
            job: None,
            static_verdict: None,
            crc: None,
        }
    }

    #[test]
    fn journal_round_trips_including_infinite_error() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let recs = vec![
            sample(0, false, 1e-7),
            sample(1, false, f64::INFINITY),
            sample(2, true, 1e-7),
        ];
        {
            let mut j = Journal::open_append(&path).unwrap();
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        // The non-finite error must be encoded as JSON null, not Infinity.
        let inf_line = text.lines().nth(1).unwrap();
        assert!(inf_line.contains("\"error\":null"), "line: {inf_line}");
        assert!(!text.contains("inf"), "no non-JSON infinities: {text}");

        let back = Journal::load(&path).unwrap();
        // Appending stamped each record's CRC; everything else round-trips.
        for (b, r) in back.iter().zip(&recs) {
            assert_eq!(b.crc_valid(), Some(true));
            let mut b = b.clone();
            b.crc = None;
            assert_eq!(&b, r);
        }
        assert_eq!(back[1].error, f64::INFINITY);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_continues_an_existing_journal() {
        let path = tmp_path("appends");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
        }
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(1, true, 1e-9)).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!((back[0].seq, back[0].cached), (0, false));
        assert_eq!((back[1].seq, back[1].cached), (1, true));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_drops_torn_final_line_only() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        // Simulate a crash mid-write: truncate the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let back = Journal::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].seq, 0);

        // Corruption in the middle is an error, not silent data loss.
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(&path, format!("{}\ngarbage\n{}\n", lines[0], lines[1])).unwrap();
        assert!(Journal::load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn old_records_without_new_fields_still_load() {
        // Forward compatibility: a minimal record (as an older writer might
        // have produced) deserializes with defaulted stages/counters.
        let line = r#"{"seq":7,"config":[true,true],"status":"pass","speedup":1.5,"error":1e-8,"cached":false,"wall_ms":2.0}"#;
        let rec: TrialRecord = serde_json::from_str(line).unwrap();
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.fraction_single, 0.0);
        assert_eq!(rec.wrappers, 0);
        assert_eq!(rec.total_cycles, None);
        assert!(rec.stages.is_empty());
        assert!(rec.counters.is_empty());
        assert_eq!(rec.variant_path, "");
        assert_eq!(rec.failure_kind, None);
        assert_eq!(rec.fault_kind, None);
        assert_eq!(rec.fault_seed, None);
        assert_eq!(rec.shadow, None);
        assert_eq!(rec.member, None);
        assert_eq!(rec.search_granularity, "");
        assert_eq!(rec.attempt, 0);
        assert_eq!(rec.job, None);
        assert_eq!(rec.static_verdict, None);
        assert_eq!(rec.crc, None);
        // No checksum → never treated as corrupt.
        assert_eq!(rec.crc_valid(), None);
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_detects_in_place_edits_that_still_parse() {
        let path = tmp_path("crc-edit");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
            j.append(&sample(2, false, 1e-9)).unwrap();
        }
        // Tamper with a value in the middle record without breaking JSON.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<String> = text
            .lines()
            .map(|l| {
                if l.contains("\"seq\":1,") {
                    l.replace("\"speedup\":1.25", "\"speedup\":9.25")
                } else {
                    l.to_string()
                }
            })
            .collect();
        let tampered = lines.join("\n") + "\n";
        assert_ne!(text, tampered);
        std::fs::write(&path, &tampered).unwrap();
        // Strict load rejects the mid-file tamper...
        assert!(Journal::load(&path).is_err());
        // ...repair quarantines exactly the damaged record.
        let rep = Journal::load_repair(&path).unwrap();
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(rep.quarantined, 1);
        assert_eq!(rep.torn_tail, 0);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(quarantine_path_for(&path)).unwrap();
    }

    #[test]
    fn raw_crc_catches_parse_equivalent_byte_damage() {
        // A flip inside a field *name* whose value equals its serde
        // default parses to the pristine record (unknown key ignored,
        // default fills in), so the record-level CRC round trip cannot
        // see it. The raw-line check must.
        let line = Journal::serialize_line(&sample(0, false, 1e-9)).unwrap();
        assert_eq!(Journal::line_crc_valid(&line), Some(true));
        let damaged = line.replace("\"attempt\":0", "\"attemqt\":0");
        assert_ne!(line, damaged);
        let rec: TrialRecord = serde_json::from_str(&damaged).unwrap();
        assert_eq!(rec.crc_valid(), Some(true), "round trip is blind to this");
        assert_eq!(Journal::line_crc_valid(&damaged), Some(false));

        let path = tmp_path("raw-crc");
        let q = quarantine_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&q);
        let good = Journal::serialize_line(&sample(1, false, 1e-9)).unwrap();
        std::fs::write(&path, format!("{damaged}\n{good}\n")).unwrap();
        assert!(Journal::load(&path).is_err(), "strict load must reject");
        let rep = Journal::load_repair(&path).unwrap();
        assert_eq!(rep.quarantined, 1);
        assert_eq!(rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(), [1]);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&q).unwrap();
    }

    #[test]
    fn raw_crc_ignores_unstamped_lines() {
        // Pre-supervision journals carry no checksum; the raw check must
        // stay neutral on them, same as the record-level one.
        assert_eq!(Journal::line_crc_valid("{\"seq\":0}"), None);
        let mut rec = sample(0, false, 1e-9);
        rec.crc = None;
        let line = serde_json::to_string(&rec).unwrap();
        assert_eq!(Journal::line_crc_valid(&line), None);
    }

    #[test]
    fn load_repair_quarantines_mid_file_damage_and_heals() {
        let path = tmp_path("repair");
        let q = quarantine_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&q);
        {
            let mut j = Journal::open_append(&path).unwrap();
            for s in 0..4 {
                j.append(&sample(s, false, 1e-9)).unwrap();
            }
        }
        // Smash line 2 (0-indexed 1) into garbage.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = "{\"seq\":1,garbage".to_string();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let rep = Journal::load_repair(&path).unwrap();
        assert_eq!(rep.quarantined, 1);
        assert_eq!(rep.torn_tail, 0);
        assert_eq!(rep.damaged(), 1);
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        // The journal healed: strict load succeeds now.
        let back = Journal::load(&path).unwrap();
        assert_eq!(back.len(), 3);
        // The damaged bytes are preserved in quarantine.
        let qtext = std::fs::read_to_string(rep.quarantine_path.as_ref().unwrap()).unwrap();
        assert_eq!(qtext, "{\"seq\":1,garbage\n");

        // Idempotence: a second pass finds nothing, changes nothing.
        let again = Journal::load_repair(&path).unwrap();
        assert_eq!(again.damaged(), 0);
        assert_eq!(again.records.len(), 3);
        assert_eq!(std::fs::read_to_string(&q).unwrap(), qtext);

        // Appending after repair keeps the journal strictly loadable.
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(9, false, 1e-9)).unwrap();
        }
        assert_eq!(Journal::load(&path).unwrap().len(), 4);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&q).unwrap();
    }

    #[test]
    fn load_repair_truncates_torn_tail_so_resume_appends_cleanly() {
        let path = tmp_path("repair-tail");
        let q = quarantine_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&q);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let rep = Journal::load_repair(&path).unwrap();
        assert_eq!(rep.torn_tail, 1);
        assert_eq!(rep.quarantined, 0);
        assert_eq!(rep.records.len(), 1);
        // Without the repair rewrite, an append would merge into the torn
        // partial line; after it, the journal stays strictly loadable.
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(7, false, 1e-9)).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 7]);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&q).unwrap();
    }

    /// Property test: flip arbitrary bytes anywhere in the journal —
    /// `load_repair` must never panic, must recover every untouched
    /// record, and must quarantine exactly the damaged lines. Hand-rolled
    /// deterministic PRNG (splitmix64) instead of proptest so the exact
    /// byte positions reproduce from the case number alone.
    #[test]
    fn load_repair_survives_arbitrary_byte_flips() {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        let path = tmp_path("flip-prop");
        let q = quarantine_path_for(&path);
        for case in 0u64..32 {
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&q);
            let mut state = 0x243f6a8885a308d3 ^ case.wrapping_mul(0x9e3779b97f4a7c15);
            let n_records = 3 + splitmix(&mut state) % 6;
            {
                let mut j = Journal::open_append(&path).unwrap();
                for s in 0..n_records {
                    let err = if s % 3 == 2 { f64::INFINITY } else { 1e-9 };
                    j.append(&sample(s, s % 4 == 3, err)).unwrap();
                }
            }
            let mut bytes = std::fs::read(&path).unwrap();
            // Line extents, so flips can be attributed to a record.
            let mut line_of = vec![0usize; bytes.len()];
            let mut line = 0usize;
            for (i, b) in bytes.iter().enumerate() {
                line_of[i] = line;
                if *b == b'\n' {
                    line += 1;
                }
            }
            let mut touched = std::collections::BTreeSet::new();
            let n_flips = 1 + (splitmix(&mut state) % 4) as usize;
            for _ in 0..n_flips {
                let off = (splitmix(&mut state) % bytes.len() as u64) as usize;
                let bit = 1u8 << (splitmix(&mut state) % 7);
                // Preserve line structure: flips that create or destroy a
                // newline change which lines exist and need no oracle.
                if bytes[off] == b'\n' || bytes[off] ^ bit == b'\n' {
                    continue;
                }
                bytes[off] ^= bit;
                touched.insert(line_of[off]);
            }
            std::fs::write(&path, &bytes).unwrap();

            // Independent oracle: a line survives iff it parses, passes
            // the record-level CRC round trip, *and* passes the raw-byte
            // checksum — the raw check is what catches flips inside the
            // key name of a default-valued field, which vanish in the
            // parse→re-serialize round trip.
            let mutated = std::fs::read(&path).unwrap();
            let intact: Vec<TrialRecord> = mutated
                .split(|b| *b == b'\n')
                .filter(|l| !l.is_empty())
                .enumerate()
                .filter_map(|(i, l)| {
                    let rec = std::str::from_utf8(l)
                        .ok()
                        .filter(|l| Journal::line_crc_valid(l) != Some(false))
                        .and_then(|l| serde_json::from_str::<TrialRecord>(l).ok())
                        .filter(|r| r.crc_valid() != Some(false));
                    // Untouched lines must always classify as intact.
                    assert!(
                        touched.contains(&i) || rec.is_some(),
                        "case {case}: untouched line {i} classified damaged"
                    );
                    rec
                })
                .collect();
            let damaged = n_records as usize - intact.len();

            let rep = Journal::load_repair(&path).unwrap();
            assert_eq!(
                rep.damaged() as usize,
                damaged,
                "case {case}: flips at lines {touched:?}"
            );
            // Every intact record survives, in order, byte-faithful.
            assert_eq!(
                rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
                intact.iter().map(|r| r.seq).collect::<Vec<_>>(),
                "case {case}: intact records lost or reordered"
            );
            // The repair healed the file: strict load now succeeds, and a
            // second pass is a no-op.
            assert_eq!(Journal::load(&path).unwrap().len(), intact.len());
            let again = Journal::load_repair(&path).unwrap();
            assert_eq!(again.damaged(), 0);
            if damaged > 0 {
                let qtext = std::fs::read(&q).unwrap();
                let qlines = qtext.split(|b| *b == b'\n').filter(|l| !l.is_empty());
                assert_eq!(qlines.count(), damaged, "case {case}: quarantine");
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&q);
    }

    /// Kill-during-repair idempotence: simulate dying between the
    /// quarantine append (synced first) and the journal rewrite — the
    /// state a kill at the worst moment leaves behind. A re-run must
    /// converge to the same healed state without duplicating quarantined
    /// lines.
    #[test]
    fn repair_killed_between_quarantine_and_rewrite_converges() {
        let path = tmp_path("repair-kill");
        let q = quarantine_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&q);
        {
            let mut j = Journal::open_append(&path).unwrap();
            for s in 0..4 {
                j.append(&sample(s, false, 1e-9)).unwrap();
            }
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = "{\"seq\":1,broken".to_string();
        let corrupted = lines.join("\n") + "\n";
        std::fs::write(&path, &corrupted).unwrap();
        // The kill point: quarantine already holds the damaged line, but
        // the journal was never rewritten.
        std::fs::write(&q, "{\"seq\":1,broken\n").unwrap();

        let rep = Journal::load_repair(&path).unwrap();
        assert_eq!(rep.quarantined, 1);
        assert_eq!(
            rep.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        // No duplicate in quarantine: the damaged line appears once.
        assert_eq!(std::fs::read_to_string(&q).unwrap(), "{\"seq\":1,broken\n");
        // The journal healed; a further pass changes nothing.
        assert_eq!(Journal::load(&path).unwrap().len(), 3);
        assert_eq!(Journal::load_repair(&path).unwrap().damaged(), 0);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&q).unwrap();
    }

    #[test]
    fn load_repair_missing_file_is_empty() {
        let path = tmp_path("repair-missing");
        let _ = std::fs::remove_file(&path);
        assert!(Journal::load_repair(&path).is_err());
        let rep = Journal::load_repair_or_empty(&path).unwrap();
        assert!(rep.records.is_empty());
        assert_eq!(rep.damaged(), 0);
        assert_eq!(rep.quarantine_path, None);
    }

    #[test]
    fn attempt_field_round_trips_and_zero_is_omitted() {
        let path = tmp_path("attempt");
        let _ = std::fs::remove_file(&path);
        let mut retried = sample(1, false, 1e-9);
        retried.attempt = 2;
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&retried).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut it = text.lines();
        assert!(it.next().unwrap().contains("\"attempt\":0"));
        assert!(it.next().unwrap().contains("\"attempt\":2"));
        let back = Journal::load(&path).unwrap();
        assert_eq!(back[0].attempt, 0);
        assert_eq!(back[1].attempt, 2);
        assert_eq!(back[1].crc_valid(), Some(true));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shadow_and_member_fields_round_trip() {
        let path = tmp_path("shadow-fields");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample(0, false, 1e-9);
        rec.status = "fail_accuracy".into();
        rec.failure_kind = Some("shadow_budget".into());
        rec.member = Some(2);
        rec.shadow = Some(ShadowTrial {
            worst_rel: 0.5,
            worst_var: Some("fun::t1".into()),
            cancellations: 3,
            cancellation_site: Some("fun:12 (24.0 bits)".into()),
            nonfinite_origin: None,
            nonfinite_injected: false,
            demoted: true,
        });
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&rec).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back[0].member, Some(2));
        let sh = back[0].shadow.as_ref().unwrap();
        assert_eq!(sh.worst_rel, 0.5);
        assert_eq!(sh.cancellations, 3);
        assert!(sh.demoted);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_report_counts_torn_tail() {
        let path = tmp_path("torn-report");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        let clean = Journal::load_report(&path).unwrap();
        assert_eq!(clean.records.len(), 2);
        assert_eq!(clean.torn_tail, 0);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let torn = Journal::load_report(&path).unwrap();
        assert_eq!(torn.records.len(), 1);
        assert_eq!(torn.torn_tail, 1);

        // Missing file: empty report, no torn lines.
        let _ = std::fs::remove_file(&path);
        let empty = Journal::load_or_empty_report(&path).unwrap();
        assert!(empty.records.is_empty());
        assert_eq!(empty.torn_tail, 0);
    }

    #[test]
    fn flush_policies_persist_records() {
        // EveryN buffers; drop flushes the remainder.
        let path = tmp_path("flush-n");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append_with(&path, FlushPolicy::EveryN(3)).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
            // Not yet flushed: the file may be shorter than two records,
            // but after drop everything must be present.
        }
        assert_eq!(Journal::load(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();

        // Sync flushes + fsyncs each record.
        let path = tmp_path("flush-sync");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_append_with(&path, FlushPolicy::Sync).unwrap();
            j.append(&sample(0, false, 1e-9)).unwrap();
            assert_eq!(Journal::load(&path).unwrap().len(), 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_policy_parses() {
        use std::str::FromStr;
        assert_eq!(
            FlushPolicy::from_str("record").unwrap(),
            FlushPolicy::EveryRecord
        );
        assert_eq!(FlushPolicy::from_str("sync").unwrap(), FlushPolicy::Sync);
        assert_eq!(
            FlushPolicy::from_str("16").unwrap(),
            FlushPolicy::EveryN(16)
        );
        assert!(FlushPolicy::from_str("0").is_err());
        assert!(FlushPolicy::from_str("whenever").is_err());
    }

    #[test]
    fn failure_and_fault_fields_round_trip() {
        let path = tmp_path("fault-fields");
        let _ = std::fs::remove_file(&path);
        let mut rec = sample(0, false, f64::INFINITY);
        rec.status = "runtime_error".into();
        rec.failure_kind = Some("panic".into());
        rec.fault_kind = Some("abort".into());
        rec.fault_seed = Some(0xdead_beef);
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&rec).unwrap();
            j.append(&sample(1, false, 1e-9)).unwrap();
        }
        let back = Journal::load(&path).unwrap();
        assert_eq!(back[0].failure_kind.as_deref(), Some("panic"));
        assert_eq!(back[0].fault_kind.as_deref(), Some("abort"));
        assert_eq!(back[0].fault_seed, Some(0xdead_beef));
        assert_eq!(back[1].fault_kind, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_or_empty_tolerates_missing_file() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Journal::load(&path).is_err());
        assert_eq!(Journal::load_or_empty(&path).unwrap(), Vec::new());
    }

    #[test]
    fn open_append_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("prose-trace-dirs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/trials.jsonl");
        {
            let mut j = Journal::open_append(&path).unwrap();
            assert_eq!(j.path(), path.as_path());
            j.append(&sample(0, false, 0.0)).unwrap();
        }
        assert_eq!(Journal::load(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
