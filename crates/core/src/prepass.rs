//! The absint search pre-pass: static range & round-off verdicts per atom.
//!
//! Before the dynamic search runs a single trial, each atom is analyzed in
//! isolation with `prose_interp::analyze_variant` (the abstract interpreter
//! over the task's IR):
//!
//! * **pre-demote** — lowering the atom alone keeps every variable's
//!   static error bound within the budget (the tighter of the correctness
//!   threshold and the shadow budget), so the atom is forced to 32-bit in
//!   every trial and removed from the search space. The comparison is
//!   *excess over the declared-precision baseline*: a bound that was
//!   already loose (even `∞`, as in a time-stepping recurrence whose state
//!   hull is `⊤`) at full precision is not held against the candidate —
//!   only damage the lowering itself introduces counts;
//! * **pin-f64** — the atom's static value range under the declared
//!   precisions provably exceeds `f32::MAX`, so lowering it is guaranteed
//!   to overflow; it is forced to stay 64-bit and removed from the search;
//! * **undecided** — everything else enters (grouped) delta debugging.
//!
//! Per-atom bounds compose unsoundly (two demotions can each clear the
//! budget alone but not together), so the candidate demotion set is
//! re-analyzed *jointly*; while the joint bound blows the budget, the
//! candidate with the loosest individual bound is dropped back into the
//! search and the joint check repeats — down to zero demotions. The tuner
//! additionally validates the forced configuration dynamically before
//! trusting it ([`crate::tuner::tune`]), so even an unsound static bound
//! can only cost trials, never correctness.

use crate::tuner::TuningTask;
use prose_analysis::BoundReport;
use prose_fortran::ast::FpPrecision;
use prose_fortran::sema::{FpVarId, ProgramIndex, ScopeKind};
use prose_fortran::PrecisionMap;
use prose_interp::{analyze_variant, DEFAULT_MAX_STEPS};
use prose_search::{Config, Evaluator, Outcome};

/// Static verdict for one search atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticVerdict {
    /// Statically safe at f32: forced to 32-bit, no trials spent.
    PreDemote,
    /// Statically overflows at f32: forced to stay 64-bit, no trials spent.
    PinF64,
    /// The static bound cannot decide; the atom enters the search.
    Undecided,
}

impl StaticVerdict {
    /// Journal-facing name.
    pub fn name(self) -> &'static str {
        match self {
            StaticVerdict::PreDemote => "pre_demote",
            StaticVerdict::PinF64 => "pin_f64",
            StaticVerdict::Undecided => "undecided",
        }
    }
}

/// The pre-pass result: one verdict per atom, in atom order.
#[derive(Debug, Clone)]
pub struct PrepassReport {
    /// Per-atom verdicts, aligned with `TuningTask::atoms`.
    pub verdicts: Vec<StaticVerdict>,
    /// The error budget the verdicts were judged against (the tighter of
    /// the correctness threshold and the shadow budget).
    pub budget: f64,
    /// True when the joint re-check of the demotion candidates blew the
    /// budget and at least one candidate was dropped back into the search.
    pub joint_fallback: bool,
    /// Compact journal stamp: `demote=a,b|pin=c|undecided=3`.
    pub stamp: String,
}

impl PrepassReport {
    /// Atom indices left undecided, in atom order — the search space.
    pub fn residue(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| **v == StaticVerdict::Undecided)
            .map(|(i, _)| i)
            .collect()
    }

    /// Full-width base configuration: pre-demoted atoms `true`, everything
    /// else `false`.
    pub fn forced(&self) -> Vec<bool> {
        self.verdicts
            .iter()
            .map(|v| *v == StaticVerdict::PreDemote)
            .collect()
    }

    /// Number of atoms the pass decided (demoted or pinned).
    pub fn decided(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| **v != StaticVerdict::Undecided)
            .count()
    }

    /// Count of one verdict kind.
    pub fn count(&self, v: StaticVerdict) -> usize {
        self.verdicts.iter().filter(|x| **x == v).count()
    }

    /// Expand a residue-space configuration to the full atom space.
    pub fn expand(&self, residue: &[usize], reduced: &[bool]) -> Vec<bool> {
        let mut full = self.forced();
        for (ri, &ai) in residue.iter().enumerate() {
            full[ai] = reduced[ri];
        }
        full
    }

    /// Demote every candidate back to undecided (the joint-fallback and
    /// dynamic-guard path).
    pub fn drop_demotions(&mut self, index: &ProgramIndex, atoms: &[FpVarId]) {
        for v in &mut self.verdicts {
            if *v == StaticVerdict::PreDemote {
                *v = StaticVerdict::Undecided;
            }
        }
        self.joint_fallback = true;
        self.stamp = stamp(index, atoms, &self.verdicts);
    }
}

/// Shadow-key-space name the IR walker reports the atom's bound under
/// (`proc::var`, `@main::var`, or `@global::var`).
pub fn atom_bound_key(index: &ProgramIndex, atom: FpVarId) -> String {
    let v = index.fp_var(atom);
    let info = index.scope_info(v.scope);
    match info.kind {
        ScopeKind::Main => format!("@main::{}", v.name),
        ScopeKind::Module => format!("@global::{}", v.name),
        ScopeKind::Procedure => format!("{}::{}", info.name, v.name),
    }
}

fn stamp(index: &ProgramIndex, atoms: &[FpVarId], verdicts: &[StaticVerdict]) -> String {
    let names = |want: StaticVerdict| -> String {
        atoms
            .iter()
            .zip(verdicts)
            .filter(|(_, v)| **v == want)
            .map(|(a, _)| index.fp_var(*a).name.clone())
            .collect::<Vec<_>>()
            .join(",")
    };
    let undecided = verdicts
        .iter()
        .filter(|v| **v == StaticVerdict::Undecided)
        .count();
    format!(
        "demote={}|pin={}|undecided={}",
        names(StaticVerdict::PreDemote),
        names(StaticVerdict::PinF64),
        undecided
    )
}

/// The error budget the static verdicts are judged against: a demotion is
/// only safe when the static bound clears both the correctness threshold
/// and (when armed) the shadow guardrail budget.
pub fn prepass_budget(task: &TuningTask) -> f64 {
    task.error_threshold
        .min(task.shadow_budget.unwrap_or(task.error_threshold))
}

/// Worst static bound a variant *worsened past the baseline*: the maximum
/// `rel_err` over every variable and recorded key whose bound under the
/// variant map strictly exceeds its bound under the declared map. Bounds
/// that were already loose at full precision — a time-stepping recurrence
/// whose state hull is `⊤` bounds to `∞` before anything is lowered — are
/// the program's fault, not the candidate's, and do not count against it.
/// `None` when the variant cannot be judged at all (analysis incomplete).
fn worst_excess_rel(rep: &BoundReport, base: Option<&BoundReport>) -> Option<f64> {
    if rep.incomplete {
        return None;
    }
    let Some(base) = base else {
        // No baseline to compare against (its analysis failed): fall back
        // to the absolute whole-program bound.
        return Some(rep.worst_rel);
    };
    let base_rel = |name: &str, records: bool| -> f64 {
        let pool = if records { &base.records } else { &base.vars };
        pool.iter()
            .find(|v| v.name == name)
            .map(|v| v.rel_err)
            .unwrap_or(0.0)
    };
    let mut worst = 0.0f64;
    for (pool, records) in [(&rep.vars, false), (&rep.records, true)] {
        for v in pool.iter() {
            if v.rel_err > base_rel(&v.name, records) {
                worst = worst.max(v.rel_err);
            }
        }
    }
    Some(worst)
}

/// The bound a demotion candidate (or candidate set member) is judged by:
/// the worst excess any bound shows over the baseline, joined with the
/// atom's *own* store bound under the lowered map. The own-bound term
/// closes the ⊤-masking hole: an atom feeding an already-unbounded
/// recurrence shows no *excess* (the state hull was `⊤` before it was
/// lowered), but its own `⊤` bound means the lowering is not certified
/// either — only atoms whose stores are themselves finitely bounded within
/// budget may be pre-demoted.
///
/// An atom with no tracked store at all (a read-only dummy: the walker
/// records stores, not bindings) has no own bound; its lowering can only
/// damage downstream stores, which the excess term already covers.
fn certified_bound(rep: &BoundReport, base: Option<&BoundReport>, key: &str) -> Option<f64> {
    let excess = worst_excess_rel(rep, base)?;
    let own = rep.var(key).map(|v| v.rel_err).unwrap_or(0.0);
    Some(excess.max(own))
}

/// Run the static pre-pass over every atom. Never fails: any analysis
/// error or exhausted abstract budget degrades the affected verdicts to
/// undecided, which only means the dynamic search keeps those atoms.
pub fn run_prepass(task: &TuningTask) -> PrepassReport {
    let budget = prepass_budget(task);
    let n = task.atoms.len();
    let mut verdicts = vec![StaticVerdict::Undecided; n];
    let inline = task.cost.inline_max_stmts;

    // Declared-precision analysis: value ranges are precision-independent
    // up to rounding, so a *finite* hull beyond f32::MAX under the
    // declared map is proof that lowering the variable overflows. The
    // same report is the baseline the demotion criterion measures excess
    // damage against.
    let declared = PrecisionMap::declared(&task.index);
    let base = analyze_variant(
        &task.program,
        &task.index,
        &declared,
        inline,
        DEFAULT_MAX_STEPS,
    )
    .ok()
    .filter(|b| !b.incomplete);
    if let Some(base) = &base {
        for (i, &atom) in task.atoms.iter().enumerate() {
            let key = atom_bound_key(&task.index, atom);
            if let Some(b) = base.var(&key) {
                let mag = b.lo.abs().max(b.hi.abs());
                if mag.is_finite() && mag > f32::MAX as f64 {
                    verdicts[i] = StaticVerdict::PinF64;
                }
            }
        }
    }

    // Per-atom demotion check: lower the atom alone and ask whether every
    // bound the lowering worsened still clears the budget. Keep each
    // candidate's individual bound — it orders the joint-refinement drops
    // below.
    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for (i, &atom) in task.atoms.iter().enumerate() {
        if verdicts[i] != StaticVerdict::Undecided {
            continue;
        }
        let mut map = PrecisionMap::declared(&task.index);
        map.set(atom, FpPrecision::Single);
        if let Ok(rep) =
            analyze_variant(&task.program, &task.index, &map, inline, DEFAULT_MAX_STEPS)
        {
            let key = atom_bound_key(&task.index, atom);
            if let Some(bound) = certified_bound(&rep, base.as_ref(), &key) {
                if bound <= budget {
                    candidates.push((i, bound));
                }
            }
        }
    }

    // Joint re-check: per-atom bounds do not compose (errors from two
    // demotions add), so a candidate set is only accepted when it clears
    // the budget *together*. On failure, greedily drop the candidate with
    // the loosest individual bound (the accumulator, typically) and
    // re-check — down to the empty set if need be.
    let mut joint_fallback = false;
    while !candidates.is_empty() {
        let mut map = PrecisionMap::declared(&task.index);
        for &(i, _) in &candidates {
            map.set(task.atoms[i], FpPrecision::Single);
        }
        let joint = analyze_variant(&task.program, &task.index, &map, inline, DEFAULT_MAX_STEPS)
            .ok()
            .and_then(|rep| {
                candidates
                    .iter()
                    .map(|&(i, _)| {
                        let key = atom_bound_key(&task.index, task.atoms[i]);
                        certified_bound(&rep, base.as_ref(), &key)
                    })
                    .try_fold(0.0f64, |acc, b| b.map(|b| acc.max(b)))
            });
        match joint {
            Some(bound) if bound <= budget => {
                for &(i, _) in &candidates {
                    verdicts[i] = StaticVerdict::PreDemote;
                }
                break;
            }
            _ => {
                joint_fallback = true;
                let worst = candidates
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        a.1 .1
                            .partial_cmp(&b.1 .1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1 .0.cmp(&b.1 .0))
                    })
                    .map(|(pos, _)| pos);
                match worst {
                    Some(pos) => {
                        candidates.remove(pos);
                    }
                    None => break,
                }
            }
        }
    }

    let stamp = stamp(&task.index, &task.atoms, &verdicts);
    PrepassReport {
        verdicts,
        budget,
        joint_fallback,
        stamp,
    }
}

/// An [`Evaluator`] adapter exposing only the undecided residue to the
/// search: reduced configurations are expanded to the full atom space
/// (pre-demoted atoms forced `true`, pinned atoms forced `false`) before
/// delegating, so memoization keys and journal records stay full-width.
pub struct ReducedEvaluator<'e, E: Evaluator> {
    inner: &'e mut E,
    forced: Vec<bool>,
    residue: Vec<usize>,
}

impl<'e, E: Evaluator> ReducedEvaluator<'e, E> {
    pub fn new(inner: &'e mut E, pre: &PrepassReport) -> Self {
        ReducedEvaluator {
            inner,
            forced: pre.forced(),
            residue: pre.residue(),
        }
    }

    fn expand(&self, reduced: &Config) -> Config {
        let mut full = self.forced.clone();
        for (ri, &ai) in self.residue.iter().enumerate() {
            full[ai] = reduced[ri];
        }
        full
    }
}

impl<E: Evaluator> Evaluator for ReducedEvaluator<'_, E> {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        self.inner.evaluate(&self.expand(lowered))
    }

    fn evaluate_batch(&mut self, batch: &[Config]) -> Vec<Outcome> {
        let full: Vec<Config> = batch.iter().map(|c| self.expand(c)).collect();
        self.inner.evaluate_batch(&full)
    }

    fn atom_count(&self) -> usize {
        self.residue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_analysis::VarBound;

    fn bound(name: &str, rel: f64) -> VarBound {
        VarBound {
            name: name.into(),
            lo: 0.0,
            hi: 1.0,
            abs_err: rel,
            rel_err: rel,
        }
    }

    fn report(vars: Vec<VarBound>) -> BoundReport {
        let worst = vars.iter().map(|v| v.rel_err).fold(0.0f64, f64::max);
        BoundReport {
            vars,
            records: Vec::new(),
            worst_rel: worst,
            cancellations: Vec::new(),
            incomplete: false,
            steps: 0,
        }
    }

    #[test]
    fn excess_ignores_bounds_the_baseline_already_had() {
        // The recurrence `s` is ⊤ at declared precision; the candidate map
        // does not worsen it, so only `t`'s genuinely new error counts.
        let base = report(vec![
            bound("work::s", f64::INFINITY),
            bound("work::t", 1e-9),
        ]);
        let rep = report(vec![
            bound("work::s", f64::INFINITY),
            bound("work::t", 1e-5),
        ]);
        assert_eq!(worst_excess_rel(&rep, Some(&base)), Some(1e-5));
    }

    #[test]
    fn excess_falls_back_to_absolute_bound_without_a_baseline() {
        let rep = report(vec![bound("work::t", 1e-5)]);
        assert_eq!(worst_excess_rel(&rep, None), Some(1e-5));
    }

    #[test]
    fn excess_refuses_to_judge_an_incomplete_analysis() {
        let mut rep = report(vec![bound("work::t", 1e-5)]);
        rep.incomplete = true;
        assert_eq!(worst_excess_rel(&rep, Some(&report(vec![]))), None);
    }

    #[test]
    fn certified_bound_joins_the_atoms_own_store_bound() {
        // No *excess* over the baseline (both ⊤ on the state var), but the
        // candidate atom's own bound is ⊤ too — the ⊤-masking hole: the
        // joined bound must stay ⊤ so the atom is not certified.
        let base = report(vec![bound("work::s", f64::INFINITY)]);
        let rep = report(vec![bound("work::s", f64::INFINITY)]);
        assert_eq!(
            certified_bound(&rep, Some(&base), "work::s"),
            Some(f64::INFINITY)
        );
        // A read-only dummy has no store bound at all: judged by excess
        // alone (zero here).
        assert_eq!(certified_bound(&rep, Some(&base), "work::dummy"), Some(0.0));
    }

    #[test]
    fn expand_reinstates_forced_atoms_around_the_residue() {
        let pre = PrepassReport {
            verdicts: vec![
                StaticVerdict::PreDemote,
                StaticVerdict::Undecided,
                StaticVerdict::PinF64,
                StaticVerdict::Undecided,
            ],
            budget: 1e-3,
            joint_fallback: false,
            stamp: String::new(),
        };
        assert_eq!(pre.residue(), vec![1, 3]);
        assert_eq!(pre.forced(), vec![true, false, false, false]);
        assert_eq!(pre.decided(), 2);
        assert_eq!(
            pre.expand(&[1, 3], &[true, false]),
            vec![true, true, false, false]
        );
    }
}
