//! Baseline profiling and hotspot selection (Section III-A / Table I).
//!
//! Profiles the model with the workload from the dynamic evaluation and
//! reports per-module CPU-time shares and FP-variable counts; hotspots are
//! selected by CPU time.

use prose_fortran::sema::{ProgramIndex, ScopeKind};
use prose_fortran::Program;
use prose_interp::{run_program, RunConfig, RunError};
use serde::{Deserialize, Serialize};

/// One Table-I row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileRow {
    pub module: String,
    /// Fraction of whole-model simulated cycles spent in this module's
    /// procedures.
    pub cpu_share: f64,
    /// FP variable declarations in the module and its procedures.
    pub fp_vars: usize,
    /// The module's procedures, most expensive first.
    pub procs: Vec<(String, f64)>,
}

/// Profile a model: run the baseline and aggregate per-module.
pub fn profile(
    program: &Program,
    index: &ProgramIndex,
    cfg: &RunConfig,
) -> Result<Vec<ProfileRow>, RunError> {
    let out = run_program(program, index, cfg)?;
    let total = out.total_cycles.max(f64::MIN_POSITIVE);

    let mut rows = Vec::new();
    for m in &program.modules {
        let mut procs: Vec<(String, f64)> = m
            .procedures
            .iter()
            .map(|p| {
                let cycles = out.timers.get(&p.name).map(|t| t.cycles).unwrap_or(0.0);
                (p.name.clone(), cycles)
            })
            .collect();
        procs.sort_by(|a, b| b.1.total_cmp(&a.1));
        let cycles: f64 = procs.iter().map(|(_, c)| c).sum();

        // FP vars: module-level + all contained procedures.
        let mut fp_vars = 0;
        if let Some(mscope) = index.module_scope(&m.name) {
            fp_vars += index.fp_variables().filter(|v| v.scope == mscope).count();
        }
        for p in &m.procedures {
            if let Some(ps) = index.scope_of_procedure(&p.name) {
                fp_vars += index.fp_variables().filter(|v| v.scope == ps).count();
            }
        }
        rows.push(ProfileRow {
            module: m.name.clone(),
            cpu_share: cycles / total,
            fp_vars,
            procs,
        });
    }
    // Main program (driver) share as a pseudo-row for completeness.
    if program.main.is_some() {
        let main_scope = (0..index.scope_count())
            .map(prose_fortran::sema::ScopeId)
            .find(|s| index.scope_info(*s).kind == ScopeKind::Main);
        let mut fp_vars = 0;
        if let Some(ms) = main_scope {
            fp_vars = index.fp_variables().filter(|v| v.scope == ms).count();
        }
        let cycles = out.timers.get("@main").map(|t| t.cycles).unwrap_or(0.0);
        rows.push(ProfileRow {
            module: "(main driver)".into(),
            cpu_share: cycles / total,
            fp_vars,
            procs: vec![],
        });
    }
    rows.sort_by(|a, b| b.cpu_share.total_cmp(&a.cpu_share));
    Ok(rows)
}

/// Pick the hottest module that is not the main driver — the paper's
/// CPU-time-based hotspot selection (corroborated by a domain expert).
pub fn select_hotspot(rows: &[ProfileRow]) -> Option<&ProfileRow> {
    rows.iter().find(|r| r.module != "(main driver)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module heavy
  real(kind=8) :: acc = 0.0d0
contains
  subroutine churn(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      u(i) = u(i) * 1.000001d0 + 0.5d0
    end do
  end subroutine churn
end module heavy
module light
contains
  subroutine touch(x)
    real(kind=8) :: x
    x = x + 1.0d0
  end subroutine touch
end module light
program main
  use heavy
  use light
  real(kind=8) :: field(512), z
  integer :: step
  field = 1.0d0
  z = 0.0d0
  do step = 1, 50
    call churn(field, 512)
  end do
  call touch(z)
  call prose_record('z', z)
end program main
"#;

    #[test]
    fn profiles_modules_by_cpu_share() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let rows = profile(&p, &ix, &RunConfig::default()).unwrap();
        let heavy = rows.iter().find(|r| r.module == "heavy").unwrap();
        let light = rows.iter().find(|r| r.module == "light").unwrap();
        assert!(heavy.cpu_share > 0.5, "heavy share {}", heavy.cpu_share);
        assert!(light.cpu_share < 0.01);
        // heavy: acc + u = 2 FP vars; light: x = 1.
        assert_eq!(heavy.fp_vars, 2);
        assert_eq!(light.fp_vars, 1);
        assert_eq!(heavy.procs[0].0, "churn");
    }

    #[test]
    fn hotspot_selection_skips_the_driver() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let rows = profile(&p, &ix, &RunConfig::default()).unwrap();
        let hs = select_hotspot(&rows).unwrap();
        assert_eq!(hs.module, "heavy");
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let rows = profile(&p, &ix, &RunConfig::default()).unwrap();
        let sum: f64 = rows.iter().map(|r| r.cpu_share).sum();
        assert!(sum <= 1.0 + 1e-9, "{sum}");
        assert!(sum > 0.99, "{sum}");
    }
}
