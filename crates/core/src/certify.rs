//! Config certificates: the static analysis' promise, checked against a
//! dynamic shadow run of the same configuration.
//!
//! A certificate binds one precision configuration (normally the search's
//! final one) to the per-variable guarantees the abstract interpreter makes
//! for it — a value hull and a round-off bound per variable and recorded
//! metric key — together with what an fp64-shadow execution of that exact
//! configuration actually observed. Every finite static bound becomes a
//! *check*: `observed max relative error ≤ static bound` and
//! `observed primary hull ⊆ static hull`. A failed check is not a tuning
//! failure — the dynamic guardrails already police accuracy — it is a
//! **soundness bug in the static analysis** and is reported as such
//! (`prose-tune --certify` exits non-zero on any violation).
//!
//! The document is JSON (written by `prose-tune --certify <path>`) and is
//! designed to be re-checked later against a trial journal:
//! `prose-report --certify <path>` replays every journaled shadow summary
//! whose configuration matches the certificate and re-validates the
//! journaled worst-variable error against the certified bound.

use crate::prepass::prepass_budget;
use crate::tuner::{config_to_map, TuningTask};
use prose_interp::{analyze_variant, run_program_shadow, RunConfig, DEFAULT_MAX_STEPS};
use prose_transform::make_variant;
use serde::{Deserialize, Serialize};

/// One certified bound: a finite static guarantee next to what the shadow
/// run observed for the same name.
///
/// All stored floats are finite: infinite observations (a variant that blew
/// up to `±Inf`) are clamped to `±f64::MAX` *after* the soundness comparison
/// so the document survives a JSON round trip (`serde_json` turns
/// non-finite floats into `null`, which does not deserialize back).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundCheck {
    /// Shadow-key-space name (`proc::var`, `@main::var`, `@global::var`)
    /// or the recorded metric key.
    pub name: String,
    /// `"var"` or `"record"`.
    pub kind: String,
    /// Static round-off bound (`rel_err` of the abstract interpreter).
    pub static_rel: f64,
    /// Static primary-value hull (clamped to `±f64::MAX` for JSON).
    pub static_lo: f64,
    pub static_hi: f64,
    /// Worst relative error the fp64 shadow observed at any store.
    pub observed_rel: f64,
    /// Observed primary-value hull over every store.
    pub observed_min: f64,
    pub observed_max: f64,
    /// Stores the shadow machinery saw for this name.
    pub stores: u64,
    /// `observed_rel ≤ static_rel` and the observed hull is inside the
    /// static hull. `false` = static-analysis soundness violation.
    pub sound: bool,
}

/// The certificate document for one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Certificate {
    /// Source file the configuration tunes.
    pub file: String,
    /// Error budget the search tuned against (threshold ∧ shadow budget).
    pub budget: f64,
    /// The certified configuration, full atom width (`true` = 32-bit).
    pub config: Vec<bool>,
    pub fraction_single: f64,
    /// Paths of the lowered atoms, for human readers.
    pub lowered: Vec<String>,
    /// True when the abstract interpreter exhausted its step budget; the
    /// missing coverage shows up as `uncovered` names.
    pub incomplete: bool,
    /// Names whose static bound is `∞` (trivially sound, nothing to check).
    pub unbounded: Vec<String>,
    /// Observed names with no static bound at all (wrapper-synthesized
    /// locals, or coverage lost to an incomplete analysis).
    pub uncovered: Vec<String>,
    /// Every finite static bound, checked against the shadow observation.
    pub checks: Vec<BoundCheck>,
    /// Number of failed checks. Anything above zero is a soundness bug.
    pub violations: usize,
}

impl Certificate {
    /// Look up a check by shadow-key-space name.
    pub fn check(&self, name: &str) -> Option<&BoundCheck> {
        self.checks.iter().find(|c| c.name == name)
    }
}

/// Clamp a float to the JSON-representable range (`serde_json` serializes
/// non-finite floats as `null`).
fn json_safe(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else if x > 0.0 {
        f64::MAX
    } else if x < 0.0 {
        f64::MIN
    } else {
        0.0 // NaN: nothing sensible to preserve
    }
}

/// Build the certificate for `config`: run the abstract interpreter *and*
/// an fp64-shadow execution under the exact same precision map and compare
/// them name by name. Errors are infrastructure failures (transform or run
/// errors), never soundness verdicts — those live in the certificate.
pub fn certify_config(
    task: &TuningTask,
    file: &str,
    config: &[bool],
) -> Result<Certificate, String> {
    let map = config_to_map(&task.index, &task.atoms, &config.to_vec());
    let rep = analyze_variant(
        &task.program,
        &task.index,
        &map,
        task.cost.inline_max_stmts,
        DEFAULT_MAX_STEPS,
    )
    .map_err(|e| format!("static analysis: {e}"))?;

    let variant =
        make_variant(&task.program, &task.index, &map).map_err(|e| format!("transform: {e}"))?;
    let cfg = RunConfig {
        cost: task.cost.clone(),
        budget: None,
        max_events: task.max_events,
        deadline: None,
        wrapper_names: variant.wrappers.iter().cloned().collect(),
        fault: None,
        shadow: true,
    };
    let (res, report) = run_program_shadow(&variant.program, &variant.index, &cfg);
    res.map_err(|e| format!("shadow run: {e}"))?;
    let report = report.ok_or_else(|| "shadow run returned no report".to_string())?;

    let lowered: Vec<String> = task
        .atoms
        .iter()
        .zip(config)
        .filter(|(_, low)| **low)
        .map(|(a, _)| task.index.fp_var_path(*a))
        .collect();
    let fraction_single = if config.is_empty() {
        0.0
    } else {
        lowered.len() as f64 / config.len() as f64
    };

    let mut checks = Vec::new();
    let mut unbounded = Vec::new();
    let mut uncovered = Vec::new();
    let mut add_pool =
        |observed: &[prose_interp::VarShadow], statics: &[prose_analysis::VarBound], kind: &str| {
            for o in observed {
                let Some(s) = statics.iter().find(|s| s.name == o.name) else {
                    uncovered.push(o.name.clone());
                    continue;
                };
                if !s.rel_err.is_finite() {
                    unbounded.push(o.name.clone());
                    continue;
                }
                // Hull containment is only checkable when the report tracked
                // the primary hull (fresh reports always do; `None` only comes
                // from pre-hull journals).
                let (omin, omax) = (
                    o.min_primary.unwrap_or(f64::INFINITY),
                    o.max_primary.unwrap_or(f64::NEG_INFINITY),
                );
                let hull_ok = match (o.min_primary, o.max_primary) {
                    (Some(min), Some(max)) => min >= s.lo && max <= s.hi,
                    _ => true,
                };
                let sound = o.max_rel <= s.rel_err && hull_ok;
                checks.push(BoundCheck {
                    name: o.name.clone(),
                    kind: kind.to_string(),
                    static_rel: s.rel_err,
                    static_lo: json_safe(s.lo),
                    static_hi: json_safe(s.hi),
                    observed_rel: json_safe(o.max_rel),
                    observed_min: json_safe(omin),
                    observed_max: json_safe(omax),
                    stores: o.stores,
                    sound,
                });
            }
        };
    add_pool(&report.vars, &rep.vars, "var");
    add_pool(&report.records, &rep.records, "record");
    let violations = checks.iter().filter(|c| !c.sound).count();

    Ok(Certificate {
        file: file.to_string(),
        budget: prepass_budget(task),
        config: config.to_vec(),
        fraction_single,
        lowered,
        incomplete: rep.incomplete,
        unbounded,
        uncovered,
        checks,
        violations,
    })
}

/// Re-check a certificate against journaled shadow summaries: every record
/// whose configuration matches the certificate and that carries a shadow
/// worst-variable summary must observe no more error than the certified
/// bound for that variable. Returns `(matching, checked, violating)` record
/// counts; violations mean the journal holds dynamic evidence against the
/// static analysis.
pub fn crosscheck_journal(
    cert: &Certificate,
    records: &[prose_trace::TrialRecord],
) -> (usize, usize, Vec<u64>) {
    let mut matching = 0usize;
    let mut checked = 0usize;
    let mut violating = Vec::new();
    for r in records {
        if r.config != cert.config {
            continue;
        }
        matching += 1;
        let Some(s) = &r.shadow else { continue };
        let Some(var) = s.worst_var.as_deref() else {
            continue;
        };
        let Some(c) = cert.check(var) else { continue };
        checked += 1;
        if s.worst_rel > c.static_rel {
            violating.push(r.seq);
        }
    }
    (matching, checked, violating)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cert() -> Certificate {
        Certificate {
            file: "m.f90".into(),
            budget: 1e-3,
            config: vec![true, false],
            fraction_single: 0.5,
            lowered: vec!["hot::work::x".into()],
            incomplete: false,
            unbounded: vec!["@main::acc".into()],
            uncovered: vec![],
            checks: vec![BoundCheck {
                name: "work::x".into(),
                kind: "var".into(),
                static_rel: 1e-4,
                static_lo: 0.0,
                static_hi: 2.0,
                observed_rel: 3e-5,
                observed_min: 0.5,
                observed_max: 1.5,
                stores: 8,
                sound: true,
            }],
            violations: 0,
        }
    }

    #[test]
    fn certificate_round_trips_through_json() {
        let c = sample_cert();
        let s = serde_json::to_string(&c).unwrap();
        let back: Certificate = serde_json::from_str(&s).unwrap();
        assert_eq!(back.checks.len(), 1);
        assert_eq!(back.check("work::x").unwrap().stores, 8);
        assert_eq!(back.config, c.config);
    }

    #[test]
    fn json_safe_clamps_non_finite() {
        assert_eq!(json_safe(f64::INFINITY), f64::MAX);
        assert_eq!(json_safe(f64::NEG_INFINITY), f64::MIN);
        assert_eq!(json_safe(f64::NAN), 0.0);
        assert_eq!(json_safe(1.5), 1.5);
    }

    #[test]
    fn journal_crosscheck_matches_config_and_flags_excess() {
        let cert = sample_cert();
        let mk = |config: Vec<bool>, worst: f64| prose_trace::TrialRecord {
            seq: 0,
            config,
            status: "pass".into(),
            speedup: 1.2,
            error: 1e-5,
            cached: false,
            wall_ms: 1.0,
            fraction_single: 0.5,
            wrappers: 0,
            total_cycles: None,
            hotspot_cycles: None,
            stages: Default::default(),
            counters: Default::default(),
            variant_path: String::new(),
            failure_kind: None,
            fault_kind: None,
            fault_seed: None,
            shadow: Some(prose_trace::ShadowTrial {
                worst_rel: worst,
                worst_var: Some("work::x".into()),
                cancellations: 0,
                cancellation_site: None,
                nonfinite_origin: None,
                nonfinite_injected: false,
                demoted: false,
            }),
            member: None,
            search_granularity: String::new(),
            workers: 0,
            worker: None,
            batch: None,
            attempt: 0,
            job: None,
            static_verdict: None,
            crc: None,
        };
        let records = vec![
            mk(vec![true, false], 5e-5), // matches, within bound
            mk(vec![false, false], 9e9), // different config: ignored
            mk(vec![true, false], 2e-4), // matches, exceeds 1e-4 bound
        ];
        let (matching, checked, violating) = crosscheck_journal(&cert, &records);
        assert_eq!(matching, 2);
        assert_eq!(checked, 2);
        assert_eq!(violating.len(), 1);
    }
}
