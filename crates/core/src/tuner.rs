//! Orchestration of the full FPPT cycle (Figure 1): search-space
//! construction, search, transformation, dynamic evaluation, and result
//! packaging.

use crate::evaluator::{DynamicEvaluator, VariantRecord};
use crate::metrics::CorrectnessMetric;
use prose_fortran::sema::{FpVarId, ProgramIndex};
use prose_fortran::{FortranError, Program};
use prose_interp::{CostParams, RunError};
use prose_search::dd::{DdParams, DeltaDebug};
use prose_search::{brute::BruteForce, Config, CountingSink, SearchResult};
use prose_trace::Counters;
use serde::{Deserialize, Serialize};

/// What the performance metric times (Sections IV-B vs IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerfScope {
    /// CPU time within the hotspot procedures only (GPTL-style).
    Hotspot,
    /// Wall time of the entire model run.
    WholeModel,
}

/// How the evaluator turns a precision assignment into a runnable variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum VariantPath {
    /// Precision-parametric templates: the baseline is lowered to IR once
    /// per task, and each variant specializes slot precisions and call-site
    /// retargets in place — no unparse → reparse → re-lower round trip.
    #[default]
    Fast,
    /// The original per-variant pipeline: clone the AST, rewrite
    /// declarations, synthesize wrappers, unparse, reparse, reanalyze, and
    /// lower from scratch. Kept as the fidelity reference the fast path is
    /// cross-checked against.
    Faithful,
}

impl VariantPath {
    /// Journal-facing name.
    pub fn name(self) -> &'static str {
        match self {
            VariantPath::Fast => "fast",
            VariantPath::Faithful => "faithful",
        }
    }
}

impl std::str::FromStr for VariantPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fast" => Ok(VariantPath::Fast),
            "faithful" => Ok(VariantPath::Faithful),
            other => Err(format!("unknown variant path `{other}` (fast|faithful)")),
        }
    }
}

/// Atom granularity of the delta-debugging search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SearchGranularity {
    /// One search decision per FP declaration (the paper's search space).
    #[default]
    Variable,
    /// One decision per precision congruence class first (variables the
    /// dependence analysis proves must co-move), then per-variable
    /// refinement of only the classes on the 1-minimal frontier. Classes
    /// are probed in descending static-penalty order.
    Grouped,
}

impl SearchGranularity {
    /// Journal-facing name.
    pub fn name(self) -> &'static str {
        match self {
            SearchGranularity::Variable => "variable",
            SearchGranularity::Grouped => "grouped",
        }
    }
}

impl std::str::FromStr for SearchGranularity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "variable" => Ok(SearchGranularity::Variable),
            "grouped" => Ok(SearchGranularity::Grouped),
            other => Err(format!(
                "unknown search granularity `{other}` (variable|grouped)"
            )),
        }
    }
}

/// A fully specified tuning task.
#[derive(Debug)]
pub struct TuningTask {
    pub program: Program,
    pub index: ProgramIndex,
    /// Search atoms (FP variable declarations, Section III-A).
    pub atoms: Vec<FpVarId>,
    /// Procedures whose timers constitute the hotspot.
    pub hotspot_procs: Vec<String>,
    pub metric: CorrectnessMetric,
    pub error_threshold: f64,
    /// Eq. 1 `n`.
    pub n_runs: usize,
    pub noise_rsd: f64,
    pub seed: u64,
    pub scope: PerfScope,
    pub cost: CostParams,
    /// Per-variant budget as a multiple of the baseline (paper: 3×).
    pub timeout_factor: f64,
    /// Unique-variant budget (the 12-hour-wall stand-in); `None` = none.
    pub max_variants: Option<usize>,
    /// Acceptance bar on speedup (1.0 = must beat baseline).
    pub min_speedup: f64,
    /// Interpreter event safety valve.
    pub max_events: u64,
    /// Trial-journal path (JSONL). When set, every evaluation request is
    /// appended, and an existing journal preloads the evaluator's
    /// memoization cache so repeated configurations never re-run the
    /// interpreter — including across process restarts.
    pub journal: Option<std::path::PathBuf>,
    /// Variant-generation path (template fast path by default).
    pub variant_path: VariantPath,
    /// On the fast path: the first `crosscheck` uncached evaluations are
    /// re-run through the faithful pipeline and checked bit-identical
    /// (records, simulated cycles, op counts, wrapper set). `0` disables.
    pub crosscheck: usize,
    /// Strict crosscheck policy: a fast/faithful divergence aborts the
    /// experiment. Lenient (default) counts it, disables the fast path,
    /// and re-answers through the faithful pipeline.
    pub strict: bool,
    /// Deterministic fault-injection plan (`None` = no injection).
    pub faults: Option<prose_faults::FaultConfig>,
    /// Noise-tolerant re-evaluation: when a measured speedup lands within
    /// `retry_band * min_speedup` of the acceptance bar, re-measure with
    /// an escalating sample count. `0.0` disables.
    pub retry_band: f64,
    /// Sample-count ceiling for the escalating re-measurement.
    pub retry_max_runs: usize,
    /// Journal write-ahead-log flush policy (per-record by default, so a
    /// killed process loses at most the record being written).
    pub wal_flush: prose_trace::FlushPolicy,
    /// Run every variant with an fp64 shadow and gate passing trials on
    /// the shadow-error budget (the numerical guardrail).
    pub shadow: bool,
    /// Per-metric shadow-error budget; `None` uses `error_threshold`. A
    /// passing trial whose worst per-variable shadow error exceeds the
    /// budget — or that triggered catastrophic cancellation — is demoted
    /// to fail-accuracy with [`crate::evaluator::FailureKind::ShadowBudget`].
    pub shadow_budget: Option<f64>,
    /// Held-out ensemble member id this task evaluates (`None` = the
    /// tuning input). Stamped into journal records and part of the
    /// memoization key, so resumed ensemble validations skip completed
    /// members without cross-member cache collisions.
    pub member: Option<u32>,
    /// Atom granularity for the delta-debugging search: per-variable (the
    /// default) or per congruence class with frontier refinement.
    pub granularity: SearchGranularity,
    /// Run the abstract-interpretation pre-pass before the search: atoms
    /// whose static round-off bound clears the error budget at f32 are
    /// pre-demoted without trials, atoms whose static range overflows f32
    /// are pinned at f64, and only the undecided residue enters delta
    /// debugging. Off by default (byte-identical journals with prior
    /// releases); every trial is then stamped with the verdict summary
    /// ([`prose_trace::TrialRecord::static_verdict`]).
    pub absint: bool,
    /// Worker-pool width for batch evaluation (the paper's
    /// one-PBS-node-per-variant fan-out). `1` (the default) evaluates
    /// serially on the submitting thread; results, journals, and the
    /// final configuration are identical at any width.
    pub workers: usize,
    /// Per-variant wall-clock deadline in milliseconds (`None` disables).
    /// Unlike `timeout_factor` — a budget on *modeled* cycles — this is
    /// real elapsed time: the supervision valve that kills a hung or
    /// pathologically slow interpreter run. Checked cooperatively every
    /// [`prose_interp::DEADLINE_CHECK_INTERVAL`] events, so modeled
    /// cycles, numerics, and journals are bit-identical when it never
    /// fires. Also seeds the stuck-election watchdog's patience.
    pub deadline_ms: Option<u64>,
    /// Transient-failure retry budget: re-attempt a trial that failed by
    /// injected timeout or wall-clock deadline up to this many extra
    /// times, doubling the cycle budget and deadline each attempt. Every
    /// attempt is journaled (`attempt` field); after exhaustion the final
    /// failure stands as an ordinary rejection. `0` (default) disables.
    pub retry_attempts: u32,
    /// Content-addressed service job id this task runs under; stamped into
    /// every journal record (provenance only, never part of the
    /// memoization key). `None` for standalone runs.
    pub job_id: Option<String>,
    /// Cooperative cancellation token. When set and flipped to `true`, the
    /// evaluator raises [`crate::evaluator::CancelRequested`] at the next
    /// evaluation boundary — between trials, never mid-journal-append, so
    /// a cancelled run's journal stays intact and resumable.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

/// The result of one tuning experiment.
#[derive(Debug)]
pub struct TuningOutcome {
    pub search: SearchResult,
    /// Rich per-variant measurements, aligned with evaluation order (may
    /// exceed the search trace if batches over-evaluated).
    pub variants: Vec<VariantRecord>,
    /// Baseline measurements.
    pub baseline_hotspot_cycles: f64,
    pub baseline_total_cycles: f64,
    /// Hotspot share of whole-model time (Table I's "% CPU Time").
    pub hotspot_share: f64,
    /// Observability counters: evaluator cache hits/misses, search-level
    /// memo hits, and aggregate interpreter op counts.
    pub metrics: Counters,
}

impl TuningOutcome {
    /// The precision map of the search's final configuration.
    pub fn final_map(
        &self,
        index: &ProgramIndex,
        atoms: &[FpVarId],
    ) -> prose_fortran::PrecisionMap {
        config_to_map(index, atoms, &self.search.final_config)
    }

    /// Number of atoms the final configuration keeps at 64-bit.
    pub fn remaining_double(&self) -> usize {
        self.search.final_config.iter().filter(|b| !**b).count()
    }
}

/// Map a search configuration to a precision assignment.
pub fn config_to_map(
    index: &ProgramIndex,
    atoms: &[FpVarId],
    lowered: &Config,
) -> prose_fortran::PrecisionMap {
    let mut map = prose_fortran::PrecisionMap::declared(index);
    for (i, low) in lowered.iter().enumerate() {
        if *low {
            map.set(atoms[i], prose_fortran::ast::FpPrecision::Single);
        }
    }
    map
}

/// Run the delta-debugging tuning experiment for a task.
pub fn tune(task: &TuningTask) -> Result<TuningOutcome, RunError> {
    let mut pre = task.absint.then(|| crate::prepass::run_prepass(task));
    let mut eval = DynamicEvaluator::new(task)?;
    let baseline_hotspot_cycles = eval.baseline.hotspot_cycles;
    let baseline_total_cycles = eval.baseline.total_cycles;
    let hotspot_share = eval.baseline.hotspot_share();
    if let Some(p) = &mut pre {
        eval.set_static_verdict(Some(p.stamp.clone()));
        // Dynamic guard on the static demotions: every searched
        // configuration bakes the pre-demoted atoms in, so before trusting
        // them, evaluate the forced configuration once (it is journaled
        // and memoized like any trial). A failure means the static bound
        // lied about this program — drop every demotion back into the
        // search rather than poison the final configuration.
        if p.count(crate::prepass::StaticVerdict::PreDemote) > 0 {
            let guard = prose_search::Evaluator::evaluate(&mut eval, &p.forced());
            if guard.status != prose_search::Status::Pass {
                p.drop_demotions(&task.index, &task.atoms);
                eval.set_static_verdict(Some(p.stamp.clone()));
            }
        }
    }
    let dd = DeltaDebug::new(DdParams {
        min_speedup: task.min_speedup,
        max_variants: task.max_variants,
        ..Default::default()
    });
    let mut sink = CountingSink::default();
    // Hotspot-scoped searches price casting only at call sites the
    // hotspot timers can see, mirroring the dynamic metric.
    let caller_scopes: Option<Vec<_>> = match task.scope {
        PerfScope::Hotspot => Some(
            task.hotspot_procs
                .iter()
                .filter_map(|p| task.index.scope_of_procedure(p))
                .collect(),
        ),
        PerfScope::WholeModel => None,
    };
    let grouped_units = |atoms: &[FpVarId]| -> Vec<Vec<usize>> {
        let depgraph = prose_analysis::DepGraph::build(&task.program, &task.index);
        depgraph.ordered_atom_groups(&task.index, atoms, caller_scopes.as_deref())
    };
    let search = match &pre {
        None => match task.granularity {
            SearchGranularity::Variable => dd.run_with_sink(&mut eval, &mut sink),
            SearchGranularity::Grouped => {
                let units = grouped_units(&task.atoms);
                dd.run_grouped_with_sink(&mut eval, &units, &mut sink)
            }
        },
        Some(p) => {
            // Statically decided atoms never enter the search: the
            // reduced evaluator pins them in every probed configuration
            // and only the undecided residue is delta-debugged.
            let residue = p.residue();
            let mut red = crate::prepass::ReducedEvaluator::new(&mut eval, p);
            let reduced = match task.granularity {
                SearchGranularity::Variable => dd.run_with_sink(&mut red, &mut sink),
                SearchGranularity::Grouped => {
                    let residue_atoms: Vec<FpVarId> =
                        residue.iter().map(|&i| task.atoms[i]).collect();
                    let units = grouped_units(&residue_atoms);
                    dd.run_grouped_with_sink(&mut red, &units, &mut sink)
                }
            };
            expand_search(reduced, p, &residue)
        }
    };
    let mut metrics = eval.metrics();
    metrics.bump("search_probes", sink.trials + sink.memo_hits);
    metrics.bump("search_memo_hits", sink.memo_hits);
    metrics.bump("search_unique_trials", sink.trials);
    if let Some(p) = &pre {
        use crate::prepass::StaticVerdict;
        metrics.bump(
            "absint_predemoted",
            p.count(StaticVerdict::PreDemote) as u64,
        );
        metrics.bump("absint_pinned", p.count(StaticVerdict::PinF64) as u64);
        metrics.bump("absint_undecided", p.count(StaticVerdict::Undecided) as u64);
        if p.joint_fallback {
            metrics.bump("absint_joint_fallback", 1);
        }
    }
    Ok(TuningOutcome {
        search,
        variants: eval.into_records(),
        baseline_hotspot_cycles,
        baseline_total_cycles,
        hotspot_share,
        metrics,
    })
}

/// Map a residue-space [`SearchResult`] back to the full atom space: every
/// trace/best/final configuration gets the pre-demoted atoms forced `true`
/// and the pinned atoms forced `false`, matching the full-width configs
/// the evaluator journaled.
fn expand_search(
    mut s: SearchResult,
    pre: &crate::prepass::PrepassReport,
    residue: &[usize],
) -> SearchResult {
    s.final_config = pre.expand(residue, &s.final_config);
    for t in &mut s.trace {
        t.config = pre.expand(residue, &t.config);
    }
    if let Some(b) = &mut s.best {
        b.config = pre.expand(residue, &b.config);
    }
    s
}

/// Exhaustively evaluate the full 2ⁿ space (funarc / Figure 2).
pub fn tune_brute_force(task: &TuningTask) -> Result<TuningOutcome, RunError> {
    let mut eval = DynamicEvaluator::new(task)?;
    let baseline_hotspot_cycles = eval.baseline.hotspot_cycles;
    let baseline_total_cycles = eval.baseline.total_cycles;
    let hotspot_share = eval.baseline.hotspot_share();
    let search = BruteForce::default().run(&mut eval);
    let metrics = eval.metrics();
    Ok(TuningOutcome {
        search,
        variants: eval.into_records(),
        baseline_hotspot_cycles,
        baseline_total_cycles,
        hotspot_share,
        metrics,
    })
}

/// Evaluate an explicit list of configurations (used by ablations and by
/// verification tests that probe specific variants).
pub fn evaluate_configs(
    task: &TuningTask,
    configs: &[Config],
) -> Result<Vec<VariantRecord>, RunError> {
    let eval = DynamicEvaluator::new(task)?;
    let recs: Vec<VariantRecord> = configs.iter().map(|c| eval.eval_one(c)).collect();
    Ok(recs)
}

/// A reusable model description: Fortran source plus the experiment
/// parameters from Section IV-A. `prose-models` ships one per model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSpec {
    pub name: String,
    /// Complete Fortran source (modules + main program driver).
    pub source: String,
    /// Table I "Targeted Module".
    pub hotspot_module: String,
    /// The work routines inside the hotspot module whose FP declarations
    /// are the search atoms and whose timers form the hotspot scope.
    pub target_procs: Vec<String>,
    pub metric: CorrectnessMetric,
    pub error_threshold: f64,
    pub n_runs: usize,
    pub noise_rsd: f64,
    /// Variable names (within the target scopes) excluded from the atom
    /// set — e.g. funarc's `result` output in the motivating example.
    pub exclude: Vec<String>,
}

/// A parsed and indexed model, ready to build tasks from.
#[derive(Debug)]
pub struct LoadedModel {
    pub spec: ModelSpec,
    pub program: Program,
    pub index: ProgramIndex,
    pub atoms: Vec<FpVarId>,
}

impl ModelSpec {
    /// Parse, analyze, and construct the search space.
    pub fn load(&self) -> Result<LoadedModel, FortranError> {
        let program = prose_fortran::parse_program(&self.source)?;
        let index = prose_fortran::analyze(&program)?;
        let scopes: Vec<_> = self
            .target_procs
            .iter()
            .filter_map(|p| index.scope_of_procedure(p))
            .collect();
        if scopes.len() != self.target_procs.len() {
            let missing: Vec<_> = self
                .target_procs
                .iter()
                .filter(|p| index.scope_of_procedure(p).is_none())
                .collect();
            return Err(FortranError::sema(
                0,
                format!("target procedures not found: {missing:?}"),
            ));
        }
        let mut atoms = index.atoms_in_scopes(&scopes);
        atoms.retain(|a| !self.exclude.iter().any(|x| x == &index.fp_var(*a).name));
        Ok(LoadedModel {
            spec: self.clone(),
            program,
            index,
            atoms,
        })
    }
}

impl LoadedModel {
    /// Build a tuning task with the given performance scope and seed.
    ///
    /// Re-analyzes the stored program (the task owns its own index); the
    /// analysis already succeeded in [`ModelSpec::load`], so an error here
    /// means the model was mutated in between and is reported, not
    /// panicked on.
    pub fn task(&self, scope: PerfScope, seed: u64) -> Result<TuningTask, FortranError> {
        Ok(TuningTask {
            program: self.program.clone(),
            index: prose_fortran::analyze(&self.program)?,
            atoms: self.atoms.clone(),
            hotspot_procs: self.spec.target_procs.clone(),
            metric: self.spec.metric.clone(),
            error_threshold: self.spec.error_threshold,
            n_runs: self.spec.n_runs,
            noise_rsd: self.spec.noise_rsd,
            seed,
            scope,
            cost: CostParams::default(),
            timeout_factor: 3.0,
            max_variants: None,
            min_speedup: 1.0,
            max_events: 400_000_000,
            journal: None,
            variant_path: VariantPath::default(),
            crosscheck: 1,
            strict: false,
            faults: None,
            retry_band: 0.0,
            retry_max_runs: 25,
            wal_flush: prose_trace::FlushPolicy::default(),
            shadow: false,
            shadow_budget: None,
            member: None,
            granularity: SearchGranularity::default(),
            absint: false,
            workers: default_workers(),
            deadline_ms: default_deadline_ms(),
            retry_attempts: default_retry_attempts(),
            job_id: None,
            cancel: None,
        })
    }
}

/// Worker-pool width when none is requested explicitly: the
/// `PROSE_WORKERS` environment variable when set to a positive integer,
/// else 1 (serial). CLI `--workers` flags override this.
pub fn default_workers() -> usize {
    std::env::var("PROSE_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Per-variant wall-clock deadline when none is requested explicitly: the
/// `PROSE_DEADLINE_MS` environment variable when set to a positive
/// integer, else disabled. CLI `--deadline-ms` flags override this.
pub fn default_deadline_ms() -> Option<u64> {
    std::env::var("PROSE_DEADLINE_MS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
}

/// Transient-failure retry budget when none is requested explicitly: the
/// `PROSE_RETRY_ATTEMPTS` environment variable, else 0 (disabled). CLI
/// `--retry-attempts` flags override this.
pub fn default_retry_attempts() -> u32 {
    std::env::var("PROSE_RETRY_ATTEMPTS")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(0)
}
