//! Held-out ensemble validation of tuned precision configurations.
//!
//! Delta debugging returns a 1-minimal configuration that passed the
//! correctness metric **on one input**: the literal constants the model's
//! driver happens to set. A configuration can overfit that input — a
//! branch that never executes during tuning leaves the precision of its
//! variables completely unconstrained. This module re-evaluates the final
//! configuration (and the runner-up frontier, so a demotion still leaves a
//! usable answer) across an ensemble of seeded input perturbations
//! ([`prose_fortran::perturb`]) and demotes candidates that fail any
//! member.
//!
//! Each member gets its own [`DynamicEvaluator`] over the perturbed
//! program, which re-measures the fp64 baseline on the *member's* input —
//! member speedups and error metrics are therefore self-consistent, never
//! compared against the tuning input's baseline.
//!
//! Resume: member tasks inherit the trial journal and stamp their member
//! id into every record ([`TuningTask::member`]); the evaluator's preload
//! only admits records from the same member, so an interrupted validation
//! re-runs nothing that already completed and never serves one member's
//! measurement to another.

use crate::evaluator::{DynamicEvaluator, VariantRecord};
use crate::tuner::{TuningOutcome, TuningTask};
use prose_fortran::{analyze, member_seed, perturb_main, FortranError};
use prose_interp::RunError;
use prose_search::{Config, Status};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Ensemble validation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleParams {
    /// Number of perturbed held-out members (ids `1..=members`).
    pub members: u32,
    /// Base seed; member `m` perturbs with [`member_seed`]`(seed, m)`.
    pub seed: u64,
    /// Relative perturbation amplitude.
    pub amplitude: f64,
    /// Candidate budget: the final configuration plus up to
    /// `max_candidates - 1` runner-ups from the accepted frontier.
    pub max_candidates: usize,
}

impl Default for EnsembleParams {
    fn default() -> Self {
        EnsembleParams {
            members: 3,
            seed: 0xE17,
            amplitude: prose_fortran::DEFAULT_AMPLITUDE,
            max_candidates: 3,
        }
    }
}

/// One candidate's measurement on one ensemble member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberResult {
    pub member: u32,
    pub record: VariantRecord,
}

impl MemberResult {
    /// Did the candidate hold up on this member?
    pub fn passed(&self) -> bool {
        self.record.outcome.status == Status::Pass
    }
}

/// A candidate configuration's validation across all members.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateValidation {
    /// Search configuration (true = 32-bit).
    pub config: Config,
    pub fraction_single: f64,
    /// Speedup measured on the tuning input (what the search believed).
    pub tuning_speedup: f64,
    pub members: Vec<MemberResult>,
    /// Passed every member — not input-overfit at this amplitude.
    pub validated: bool,
}

impl CandidateValidation {
    /// Members on which this candidate failed.
    pub fn failed_members(&self) -> Vec<u32> {
        self.members
            .iter()
            .filter(|m| !m.passed())
            .map(|m| m.member)
            .collect()
    }

    /// Worst (minimum) member speedup, when every member completed.
    pub fn min_member_speedup(&self) -> Option<f64> {
        self.members
            .iter()
            .map(|m| m.record.outcome.speedup)
            .min_by(f64::total_cmp)
    }
}

/// The full ensemble-validation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleReport {
    pub params: EnsembleParams,
    /// Final configuration first, then runner-ups by tuning speedup.
    pub candidates: Vec<CandidateValidation>,
    /// Index into `candidates` of the first fully validated candidate.
    pub winner: Option<usize>,
}

impl EnsembleReport {
    /// The validated configuration to ship, if any survived.
    pub fn winning_config(&self) -> Option<&Config> {
        self.winner.map(|i| &self.candidates[i].config)
    }

    /// True when the search's final configuration itself was demoted
    /// (failed at least one member).
    pub fn final_demoted(&self) -> bool {
        self.candidates.first().is_some_and(|c| !c.validated)
    }
}

/// Ensemble validation error: member programs are re-analyzed, so both
/// front-end and interpreter failures can surface.
#[derive(Debug)]
pub enum EnsembleError {
    Analyze(FortranError),
    Run(RunError),
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleError::Analyze(e) => write!(f, "ensemble member analysis failed: {e}"),
            EnsembleError::Run(e) => write!(f, "ensemble member evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for EnsembleError {}

/// Pick the candidate list: the final configuration first, then distinct
/// accepted runner-ups ordered by tuning-input speedup, `max` total.
pub fn candidate_frontier(
    final_config: &Config,
    variants: &[VariantRecord],
    min_speedup: f64,
    max: usize,
) -> Vec<(Config, f64)> {
    let final_speedup = variants
        .iter()
        .filter(|r| &r.config == final_config)
        .map(|r| r.outcome.speedup)
        .next_back()
        .unwrap_or(1.0);
    let mut seen: BTreeSet<&Config> = BTreeSet::new();
    seen.insert(final_config);
    let mut out = vec![(final_config.clone(), final_speedup)];
    let mut runners: Vec<&VariantRecord> = variants
        .iter()
        .filter(|r| r.outcome.status == Status::Pass && r.outcome.speedup >= min_speedup)
        .collect();
    runners.sort_by(|a, b| b.outcome.speedup.total_cmp(&a.outcome.speedup));
    for r in runners {
        if out.len() >= max {
            break;
        }
        if seen.insert(&r.config) {
            out.push((r.config.clone(), r.outcome.speedup));
        }
    }
    out
}

/// Build the tuning task for one held-out member: the same experiment over
/// the perturbed program, stamped with the member id.
fn member_task(
    task: &TuningTask,
    member: u32,
    params: &EnsembleParams,
) -> Result<TuningTask, EnsembleError> {
    let (program, _) = perturb_main(
        &task.program,
        member_seed(params.seed, member),
        params.amplitude,
    );
    // Perturbation only rewrites literal values; declarations are untouched,
    // so re-analysis assigns identical FP-variable ids and the task's atom
    // list carries over verbatim.
    let index = analyze(&program).map_err(EnsembleError::Analyze)?;
    Ok(TuningTask {
        program,
        index,
        atoms: task.atoms.clone(),
        hotspot_procs: task.hotspot_procs.clone(),
        metric: task.metric.clone(),
        error_threshold: task.error_threshold,
        n_runs: task.n_runs,
        noise_rsd: task.noise_rsd,
        seed: task.seed,
        scope: task.scope,
        cost: task.cost.clone(),
        timeout_factor: task.timeout_factor,
        max_variants: task.max_variants,
        min_speedup: task.min_speedup,
        max_events: task.max_events,
        journal: task.journal.clone(),
        variant_path: task.variant_path,
        crosscheck: task.crosscheck,
        strict: task.strict,
        faults: task.faults.clone(),
        retry_band: task.retry_band,
        retry_max_runs: task.retry_max_runs,
        wal_flush: task.wal_flush,
        shadow: task.shadow,
        shadow_budget: task.shadow_budget,
        granularity: task.granularity,
        absint: task.absint,
        member: Some(member),
        workers: task.workers,
        deadline_ms: task.deadline_ms,
        retry_attempts: task.retry_attempts,
        job_id: task.job_id.clone(),
        cancel: task.cancel.clone(),
    })
}

/// Validate a tuning outcome's final configuration (plus runner-ups)
/// across `params.members` held-out input perturbations.
pub fn validate_ensemble(
    task: &TuningTask,
    outcome: &TuningOutcome,
    params: &EnsembleParams,
) -> Result<EnsembleReport, EnsembleError> {
    let frontier = candidate_frontier(
        &outcome.search.final_config,
        &outcome.variants,
        task.min_speedup,
        params.max_candidates.max(1),
    );
    let mut candidates: Vec<CandidateValidation> = frontier
        .into_iter()
        .map(|(config, tuning_speedup)| {
            let n32 = config.iter().filter(|b| **b).count();
            CandidateValidation {
                fraction_single: if config.is_empty() {
                    0.0
                } else {
                    n32 as f64 / config.len() as f64
                },
                config,
                tuning_speedup,
                members: Vec::new(),
                validated: true,
            }
        })
        .collect();
    for m in 1..=params.members {
        let mtask = member_task(task, m, params)?;
        let eval = DynamicEvaluator::new(&mtask).map_err(EnsembleError::Run)?;
        // One batch per member: candidate evaluations ride the same worker
        // pool as search probes, and come back (and are journaled) in
        // candidate order regardless of worker count.
        let configs: Vec<Config> = candidates.iter().map(|c| c.config.clone()).collect();
        let records = eval.eval_batch_records(&configs);
        for (cand, record) in candidates.iter_mut().zip(records) {
            cand.validated &= record.outcome.status == Status::Pass;
            cand.members.push(MemberResult { member: m, record });
        }
    }
    let winner = candidates.iter().position(|c| c.validated);
    Ok(EnsembleReport {
        params: params.clone(),
        candidates,
        winner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_search::Outcome;

    fn rec(config: Vec<bool>, status: Status, speedup: f64) -> VariantRecord {
        VariantRecord {
            config,
            outcome: Outcome {
                status,
                speedup,
                error: 0.0,
            },
            fraction_single: 0.0,
            per_proc: vec![],
            wrappers: vec![],
            detail: None,
            total_cycles: None,
            hotspot_cycles: None,
            failure: None,
            fault_kind: None,
            fault_seed: None,
            shadow: None,
        }
    }

    #[test]
    fn frontier_puts_final_first_then_best_distinct_runners() {
        let fin = vec![true, true, false];
        let variants = vec![
            rec(vec![true, false, false], Status::Pass, 1.2),
            rec(fin.clone(), Status::Pass, 1.5),
            rec(vec![false, true, false], Status::Pass, 1.4),
            rec(vec![false, true, false], Status::Pass, 1.4), // duplicate config
            rec(vec![false, false, true], Status::FailAccuracy, 9.0), // not accepted
            rec(vec![true, true, true], Status::Pass, 0.9),   // below bar
        ];
        let got = candidate_frontier(&fin, &variants, 1.0, 3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (fin, 1.5));
        assert_eq!(got[1], (vec![false, true, false], 1.4));
        assert_eq!(got[2], (vec![true, false, false], 1.2));
    }

    #[test]
    fn frontier_survives_missing_final_record() {
        let fin = vec![false, false];
        let got = candidate_frontier(&fin, &[], 1.0, 3);
        assert_eq!(got, vec![(fin, 1.0)]);
    }

    #[test]
    fn frontier_respects_candidate_budget() {
        let fin = vec![true];
        let variants = vec![
            rec(vec![false], Status::Pass, 1.3),
            rec(fin.clone(), Status::Pass, 1.1),
        ];
        let got = candidate_frontier(&fin, &variants, 1.0, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, fin);
    }
}
