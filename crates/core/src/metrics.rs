//! Correctness metrics (Section III-D / IV-A).
//!
//! Each model gets a scalar metric computed from its recorded output and
//! compared against the baseline via relative error
//! `|(out_baseline − out_variant)/out_baseline|`. The three recipes used in
//! the paper:
//!
//! * **MPAS-A** — kinetic energy at every cell: per-timestep relative error
//!   per cell, most extreme across cells per step, L2-norm over time.
//! * **ADCIRC** — most extreme water-surface elevation per grid point over
//!   the run: relative error per point, L2-norm across the grid.
//! * **MOM6** — maximum CFL number per timestep: relative error per step,
//!   L2-norm over time.

use prose_interp::RunRecords;
use serde::{Deserialize, Serialize};

/// How to turn a (baseline, variant) pair of run records into one error
/// number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CorrectnessMetric {
    /// Per-step array snapshots under `key`: relative error per element,
    /// max over elements per step, L2 over steps (the MPAS-A recipe).
    /// `floor_frac` floors each denominator at that fraction of the
    /// snapshot's max magnitude, so near-zero cells don't saturate the
    /// metric (0.0 = pure relative error).
    MaxOverSpaceL2OverTime { key: String, floor_frac: f64 },
    /// One array snapshot under `key` (e.g. a running-max field recorded at
    /// the end): relative error per element, L2 across elements (ADCIRC).
    FieldL2 { key: String },
    /// Scalar series under `key`: relative error per step, L2 over steps
    /// (MOM6).
    ScalarSeriesL2 { key: String },
}

impl std::str::FromStr for CorrectnessMetric {
    type Err = String;

    /// Parse the CLI/service metric syntax: `scalar:<key>`, `field:<key>`,
    /// or `maxspace:<key>[:floor]`.
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["scalar", key] if !key.is_empty() => Ok(CorrectnessMetric::ScalarSeriesL2 {
                key: key.to_string(),
            }),
            ["field", key] if !key.is_empty() => Ok(CorrectnessMetric::FieldL2 {
                key: key.to_string(),
            }),
            ["maxspace", key] if !key.is_empty() => Ok(CorrectnessMetric::MaxOverSpaceL2OverTime {
                key: key.to_string(),
                floor_frac: 0.0,
            }),
            ["maxspace", key, floor] if !key.is_empty() => {
                let floor_frac = floor
                    .parse()
                    .map_err(|_| format!("bad maxspace floor `{floor}`"))?;
                Ok(CorrectnessMetric::MaxOverSpaceL2OverTime {
                    key: key.to_string(),
                    floor_frac,
                })
            }
            _ => Err(format!(
                "unknown metric `{spec}` (scalar:<key>|field:<key>|maxspace:<key>[:floor])"
            )),
        }
    }
}

/// Relative error with a floor guard: where the baseline magnitude is tiny
/// the absolute difference is used instead (avoids division blow-ups on
/// zero-initialized boundary values).
pub fn rel_err(baseline: f64, variant: f64) -> f64 {
    let denom = baseline.abs();
    if denom < 1e-30 {
        (baseline - variant).abs()
    } else {
        ((baseline - variant) / baseline).abs()
    }
}

/// L2 norm of a slice.
pub fn l2(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

impl CorrectnessMetric {
    /// Compute the error of `variant` against `baseline`. `None` when the
    /// variant's records are missing or shaped differently (a crashed or
    /// corrupted run — callers treat it as a failed variant).
    pub fn compute(&self, baseline: &RunRecords, variant: &RunRecords) -> Option<f64> {
        match self {
            CorrectnessMetric::MaxOverSpaceL2OverTime { key, floor_frac } => {
                let b = baseline.arrays.get(key)?;
                let v = variant.arrays.get(key)?;
                if b.len() != v.len() || b.is_empty() {
                    return None;
                }
                let mut per_step = Vec::with_capacity(b.len());
                for (bs, vs) in b.iter().zip(v) {
                    if bs.len() != vs.len() || bs.is_empty() {
                        return None;
                    }
                    let scale = bs.iter().fold(0.0f64, |a, x| a.max(x.abs()));
                    let floor = floor_frac * scale;
                    let worst = bs
                        .iter()
                        .zip(vs)
                        .map(|(x, y)| {
                            let denom = x.abs().max(floor);
                            if denom < 1e-30 {
                                (x - y).abs()
                            } else {
                                (x - y).abs() / denom
                            }
                        })
                        .fold(0.0f64, f64::max);
                    per_step.push(worst);
                }
                Some(l2(&per_step))
            }
            CorrectnessMetric::FieldL2 { key } => {
                let b = baseline.arrays.get(key)?.last()?;
                let v = variant.arrays.get(key)?.last()?;
                if b.len() != v.len() || b.is_empty() {
                    return None;
                }
                let errs: Vec<f64> = b.iter().zip(v).map(|(x, y)| rel_err(*x, *y)).collect();
                Some(l2(&errs))
            }
            CorrectnessMetric::ScalarSeriesL2 { key } => {
                let b = baseline.scalars.get(key)?;
                let v = variant.scalars.get(key)?;
                if b.len() != v.len() || b.is_empty() {
                    return None;
                }
                let errs: Vec<f64> = b.iter().zip(v).map(|(x, y)| rel_err(*x, *y)).collect();
                Some(l2(&errs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records_with_scalar(key: &str, xs: &[f64]) -> RunRecords {
        let mut r = RunRecords::default();
        r.scalars.insert(key.into(), xs.to_vec());
        r
    }

    fn records_with_arrays(key: &str, steps: &[Vec<f64>]) -> RunRecords {
        let mut r = RunRecords::default();
        r.arrays.insert(key.into(), steps.to_vec());
        r
    }

    #[test]
    fn metric_spec_parses() {
        use std::str::FromStr;
        assert_eq!(
            CorrectnessMetric::from_str("scalar:cfl").unwrap(),
            CorrectnessMetric::ScalarSeriesL2 { key: "cfl".into() }
        );
        assert_eq!(
            CorrectnessMetric::from_str("field:eta").unwrap(),
            CorrectnessMetric::FieldL2 { key: "eta".into() }
        );
        assert_eq!(
            CorrectnessMetric::from_str("maxspace:ke").unwrap(),
            CorrectnessMetric::MaxOverSpaceL2OverTime {
                key: "ke".into(),
                floor_frac: 0.0
            }
        );
        assert_eq!(
            CorrectnessMetric::from_str("maxspace:ke:0.01").unwrap(),
            CorrectnessMetric::MaxOverSpaceL2OverTime {
                key: "ke".into(),
                floor_frac: 0.01
            }
        );
        assert!(CorrectnessMetric::from_str("scalar:").is_err());
        assert!(CorrectnessMetric::from_str("maxspace:ke:zero").is_err());
        assert!(CorrectnessMetric::from_str("energy").is_err());
    }

    #[test]
    fn rel_err_basic_and_zero_guard() {
        assert_eq!(rel_err(2.0, 1.0), 0.5);
        assert_eq!(rel_err(-2.0, -1.0), 0.5);
        assert_eq!(rel_err(0.0, 0.25), 0.25); // absolute fallback
    }

    #[test]
    fn l2_norm() {
        assert_eq!(l2(&[3.0, 4.0]), 5.0);
        assert_eq!(l2(&[]), 0.0);
    }

    #[test]
    fn identical_runs_have_zero_error() {
        let b = records_with_scalar("cfl", &[0.1, 0.2, 0.3]);
        let m = CorrectnessMetric::ScalarSeriesL2 { key: "cfl".into() };
        assert_eq!(m.compute(&b, &b), Some(0.0));
    }

    #[test]
    fn scalar_series_l2() {
        let b = records_with_scalar("cfl", &[1.0, 2.0]);
        let v = records_with_scalar("cfl", &[1.1, 2.0]);
        let m = CorrectnessMetric::ScalarSeriesL2 { key: "cfl".into() };
        let e = m.compute(&b, &v).unwrap();
        assert!((e - 0.1).abs() < 1e-12, "{e}");
    }

    #[test]
    fn max_over_space_l2_over_time() {
        let b = records_with_arrays("ke", &[vec![1.0, 2.0], vec![4.0, 8.0]]);
        let v = records_with_arrays("ke", &[vec![1.0, 1.0], vec![4.0, 8.0]]);
        // Step 1 worst rel err = 0.5, step 2 = 0.
        let m = CorrectnessMetric::MaxOverSpaceL2OverTime {
            key: "ke".into(),
            floor_frac: 0.0,
        };
        assert_eq!(m.compute(&b, &v), Some(0.5));
    }

    #[test]
    fn floor_frac_tames_near_zero_cells() {
        // A near-zero cell with a tiny absolute difference would dominate
        // the pure relative metric; the floored metric scales it away.
        let b = records_with_arrays("ke", &[vec![10.0, 1e-9]]);
        let v = records_with_arrays("ke", &[vec![10.0, 2e-9]]);
        let pure = CorrectnessMetric::MaxOverSpaceL2OverTime {
            key: "ke".into(),
            floor_frac: 0.0,
        };
        let floored = CorrectnessMetric::MaxOverSpaceL2OverTime {
            key: "ke".into(),
            floor_frac: 0.01,
        };
        assert!(pure.compute(&b, &v).unwrap() > 0.4);
        assert!(floored.compute(&b, &v).unwrap() <= 1e-8);
    }

    #[test]
    fn field_l2_uses_last_snapshot() {
        let b = records_with_arrays("eta", &[vec![9.0, 9.0], vec![3.0, 4.0]]);
        let v = records_with_arrays("eta", &[vec![0.0, 0.0], vec![3.0 * 0.4, 4.0 * 0.2]]);
        // Errors on last snapshot: 0.6 and 0.8 → L2 = 1.0.
        let m = CorrectnessMetric::FieldL2 { key: "eta".into() };
        let e = m.compute(&b, &v).unwrap();
        assert!((e - 1.0).abs() < 1e-12, "{e}");
    }

    #[test]
    fn missing_or_mismatched_records_yield_none() {
        let b = records_with_scalar("cfl", &[1.0, 2.0]);
        let short = records_with_scalar("cfl", &[1.0]);
        let missing = RunRecords::default();
        let m = CorrectnessMetric::ScalarSeriesL2 { key: "cfl".into() };
        assert_eq!(m.compute(&b, &short), None);
        assert_eq!(m.compute(&b, &missing), None);
        let ma = CorrectnessMetric::MaxOverSpaceL2OverTime {
            key: "ke".into(),
            floor_frac: 0.0,
        };
        assert_eq!(ma.compute(&b, &b), None);
    }
}
