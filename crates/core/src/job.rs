//! The tuner as an embeddable **job runner**: one content-addressed unit
//! of work (Fortran source + tuning spec), run to completion — or to a
//! cancellation checkpoint — against a per-job trial journal.
//!
//! This is the seam between the batch pipeline and the service layer:
//! `prose-served` persists a [`JobRequest`], derives its id with
//! [`job_id_for`], and calls [`run_job`] on a pool thread. Everything the
//! daemon's robustness contract needs lives in the journal the runner
//! writes: restarting a killed job with the same journal path resumes it
//! with zero duplicate interpreter evaluations (the evaluator preloads
//! the journal as its memoization cache), and re-running a finished job
//! replays entirely from cache, so [`run_job`] doubles as the result
//! cache's read path.

use crate::evaluator::CancelRequested;
use crate::metrics::CorrectnessMetric;
use crate::tuner::{
    tune, tune_brute_force, ModelSpec, PerfScope, SearchGranularity, TuningOutcome,
};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A tuning job's machine-readable spec, as submitted by clients. The
/// required surface mirrors `prose-tune`'s mandatory flags; everything
/// else is serde-defaulted so specs stay small and forward-compatible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Target procedures whose FP declarations are the search atoms.
    pub procs: Vec<String>,
    /// Correctness metric, `prose-tune` syntax
    /// (`scalar:<key>`, `field:<key>`, `maxspace:<key>[:floor]`).
    pub metric: String,
    /// Relative-error acceptance threshold.
    pub threshold: f64,
    /// Search strategy: `dd` (default) or `brute`.
    #[serde(default)]
    pub strategy: Option<String>,
    /// Search granularity: `variable` (default) or `grouped`.
    #[serde(default)]
    pub granularity: Option<String>,
    /// Performance scope: `hotspot` (default) or `whole`.
    #[serde(default)]
    pub scope: Option<String>,
    /// Base seed (default 42).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Unique-variant budget (`None` = unbounded).
    #[serde(default)]
    pub budget: Option<usize>,
    /// Variable names excluded from the atom set.
    #[serde(default)]
    pub exclude: Vec<String>,
    /// Worker-pool width (defaults to the `PROSE_WORKERS` rule).
    #[serde(default)]
    pub workers: Option<usize>,
    /// Per-variant wall-clock deadline in milliseconds.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Transient-failure retry budget.
    #[serde(default)]
    pub retry_attempts: Option<u32>,
    /// Deterministic fault injection, `prose-tune --faults` syntax.
    #[serde(default)]
    pub faults: Option<String>,
    /// Eq. 1 sample count (default 1).
    #[serde(default)]
    pub n_runs: Option<usize>,
    /// Timing-noise RSD (default 0).
    #[serde(default)]
    pub noise: Option<f64>,
}

impl JobSpec {
    /// Parse a spec from its submitted JSON.
    pub fn parse(json: &str) -> Result<JobSpec, String> {
        serde_json::from_str(json).map_err(|e| format!("bad job spec: {e}"))
    }

    /// The canonical serialization idempotency keys on: parsed, then
    /// re-serialized with sorted keys and defaults materialized — so two
    /// submissions that differ only in JSON formatting, field order, or
    /// explicit-vs-omitted defaults address the same job.
    pub fn canonical(&self) -> String {
        serde_json::to_string(self).expect("JobSpec serializes")
    }
}

/// One unit of service work: a program and the spec to tune it under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Complete Fortran source (modules + main program driver).
    pub program: String,
    pub spec: JobSpec,
}

/// Content-addressed job id: 32 hex digits over the program bytes and the
/// spec's canonical serialization. Identical submissions — across clients,
/// processes, and restarts — collapse to the same id.
pub fn job_id_for(program: &str, spec: &JobSpec) -> String {
    prose_faults::content_id(&[program.as_bytes(), spec.canonical().as_bytes()])
}

/// Why a job run ended without an outcome.
#[derive(Debug)]
pub enum JobError {
    /// The spec failed validation before any evaluation ran.
    Spec(String),
    /// Parse/analysis/baseline failure — a property of the submission,
    /// terminal.
    Model(String),
    /// The cancellation token flipped; the journal holds every completed
    /// trial and re-running resumes from it.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Spec(e) => write!(f, "spec error: {e}"),
            JobError::Model(e) => write!(f, "model error: {e}"),
            JobError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// The service-facing summary of a finished job (persisted as
/// `result.json`, returned verbatim to clients).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    pub job_id: String,
    /// The search's final configuration (`true` = lowered to 32-bit).
    pub final_config: Vec<bool>,
    /// Source paths of the variables kept at 64-bit.
    pub final_double: Vec<String>,
    /// Best variant's speedup (0 when no variant passed).
    pub best_speedup: f64,
    /// Best variant's relative error (`None` encodes non-finite).
    #[serde(default)]
    pub best_error: Option<f64>,
    /// Whether the search proved 1-minimality.
    pub one_minimal: bool,
    /// Total evaluation requests the search made.
    pub trials: u64,
    /// Requests answered without running the interpreter (memo + journal).
    pub cache_hits: u64,
    /// Interpreter evaluations actually performed by this run — the
    /// number a resumed run must keep at zero for already-journaled
    /// configurations.
    pub evaluated: u64,
    /// Records preloaded from the journal at startup (resume depth).
    pub preloaded: u64,
}

/// Run one job to completion. `journal` is the job's trial journal path
/// (created, appended, and preloaded-on-restart by the evaluator);
/// `cancel` is polled at every evaluation boundary.
///
/// Deterministic by construction: the same request against the same
/// journal always lands on the same final configuration, whether it runs
/// uninterrupted or is killed and resumed arbitrarily often.
pub fn run_job(
    request: &JobRequest,
    journal: &Path,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<JobResult, JobError> {
    let spec = &request.spec;
    if spec.procs.is_empty() {
        return Err(JobError::Spec("procs must be non-empty".into()));
    }
    let metric: CorrectnessMetric = spec.metric.parse().map_err(JobError::Spec)?;
    let strategy = spec.strategy.as_deref().unwrap_or("dd");
    if !matches!(strategy, "dd" | "brute") {
        return Err(JobError::Spec(format!(
            "unknown strategy `{strategy}` (dd|brute)"
        )));
    }
    let granularity: SearchGranularity = spec
        .granularity
        .as_deref()
        .unwrap_or("variable")
        .parse()
        .map_err(JobError::Spec)?;
    let scope = match spec.scope.as_deref().unwrap_or("hotspot") {
        "hotspot" => PerfScope::Hotspot,
        "whole" => PerfScope::WholeModel,
        other => return Err(JobError::Spec(format!("unknown scope `{other}`"))),
    };
    let faults = spec
        .faults
        .as_deref()
        .map(prose_faults::FaultConfig::parse)
        .transpose()
        .map_err(|e| JobError::Spec(format!("faults: {e}")))?;

    let model_spec = ModelSpec {
        name: job_id_for(&request.program, spec),
        source: request.program.clone(),
        hotspot_module: String::new(),
        target_procs: spec.procs.clone(),
        metric,
        error_threshold: spec.threshold,
        n_runs: spec.n_runs.unwrap_or(1),
        noise_rsd: spec.noise.unwrap_or(0.0),
        exclude: spec.exclude.clone(),
    };
    let job_id = model_spec.name.clone();
    let model = model_spec
        .load()
        .map_err(|e| JobError::Model(e.to_string()))?;
    let mut task = model
        .task(scope, spec.seed.unwrap_or(42))
        .map_err(|e| JobError::Model(e.to_string()))?;
    task.journal = Some(journal.to_path_buf());
    task.max_variants = spec.budget;
    task.granularity = granularity;
    task.faults = faults;
    task.job_id = Some(job_id.clone());
    task.cancel = cancel;
    if let Some(w) = spec.workers {
        task.workers = w.max(1);
    }
    if let Some(ms) = spec.deadline_ms {
        task.deadline_ms = Some(ms);
    }
    if let Some(r) = spec.retry_attempts {
        task.retry_attempts = r;
    }

    // The cancellation token unwinds out of the search as a
    // `CancelRequested` panic (raised only at evaluation boundaries, so
    // the journal is never torn by it); contain exactly that payload here
    // and re-raise everything else.
    let outcome = match catch_unwind(AssertUnwindSafe(|| {
        if strategy == "brute" {
            tune_brute_force(&task)
        } else {
            tune(&task)
        }
    })) {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(e)) => return Err(JobError::Model(format!("baseline run failed: {e}"))),
        Err(payload) => {
            if payload.downcast_ref::<CancelRequested>().is_some() {
                return Err(JobError::Cancelled);
            }
            resume_unwind(payload);
        }
    };

    Ok(summarize(&job_id, &task, &model, &outcome))
}

fn summarize(
    job_id: &str,
    task: &crate::tuner::TuningTask,
    model: &crate::tuner::LoadedModel,
    outcome: &TuningOutcome,
) -> JobResult {
    let final_double: Vec<String> = outcome
        .search
        .final_config
        .iter()
        .enumerate()
        .filter(|(_, b)| !**b)
        .map(|(i, _)| model.index.fp_var_path(task.atoms[i]))
        .collect();
    let (best_speedup, best_error) = outcome
        .search
        .best
        .as_ref()
        .map(|b| (b.outcome.speedup, b.outcome.error))
        .unwrap_or((0.0, f64::INFINITY));
    JobResult {
        job_id: job_id.to_string(),
        final_config: outcome.search.final_config.clone(),
        final_double,
        best_speedup,
        best_error: best_error.is_finite().then_some(best_error),
        one_minimal: outcome.search.one_minimal,
        trials: outcome.metrics.get("cache_hits") + outcome.metrics.get("cache_misses"),
        cache_hits: outcome.metrics.get("cache_hits"),
        evaluated: outcome.metrics.get("cache_misses"),
        preloaded: outcome.metrics.get("cache_preloaded"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::Ordering;

    /// A small but non-trivial model: driver-side work outside the hotspot
    /// keeps the hotspot share (and the 3x timeout) realistic.
    const PROGRAM: &str = r#"
module hot
contains
  subroutine work(u, n)
    real(kind=8), intent(inout) :: u(n)
    integer, intent(in) :: n
    real(kind=8) :: c
    real(kind=8) :: d
    integer :: i
    c = 1.0000001d0
    d = 0.25d0
    do i = 1, n
      u(i) = u(i) * c + d
    end do
  end subroutine work
end module hot
program main
  use hot
  real(kind=8) :: field(256), diag(2048), acc
  integer :: step, i
  field = 1.0d0
  diag = 0.5d0
  acc = 0.0d0
  do step = 1, 20
    call work(field, 256)
    do i = 1, 2048
      diag(i) = diag(i) * 0.999d0 + 0.001d0
    end do
    acc = acc + sum(diag)
  end do
  call prose_record_array('field', field)
end program main
"#;

    fn spec() -> JobSpec {
        JobSpec {
            procs: vec!["work".into()],
            metric: "maxspace:field:0.0".into(),
            threshold: 1e-3,
            strategy: None,
            granularity: None,
            scope: None,
            seed: None,
            budget: None,
            exclude: vec![],
            workers: None,
            deadline_ms: None,
            retry_attempts: None,
            faults: None,
            n_runs: None,
            noise: None,
        }
    }

    fn tmp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "prose-job-{}-{tag}/journal.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn job_ids_are_content_addressed() {
        let a = spec();
        let mut b = spec();
        assert_eq!(job_id_for(PROGRAM, &a), job_id_for(PROGRAM, &a));
        b.threshold = 1e-4;
        assert_ne!(job_id_for(PROGRAM, &a), job_id_for(PROGRAM, &b));
        assert_ne!(
            job_id_for(PROGRAM, &a),
            job_id_for(&format!("{PROGRAM} "), &a)
        );
        // Formatting-insensitive: parse → canonical → same id.
        let json = r#"{ "threshold": 1e-3,
                        "metric": "maxspace:field:0.0", "procs": ["work"] }"#;
        let parsed = JobSpec::parse(json).unwrap();
        assert_eq!(job_id_for(PROGRAM, &parsed), job_id_for(PROGRAM, &a));
    }

    #[test]
    fn run_job_completes_and_resumes_from_cache() {
        let journal = tmp_journal("resume");
        let _ = std::fs::remove_dir_all(journal.parent().unwrap());
        let request = JobRequest {
            program: PROGRAM.into(),
            spec: spec(),
        };
        let first = run_job(&request, &journal, None).unwrap();
        assert!(first.evaluated > 0, "first run evaluates: {first:?}");
        assert!(first.best_speedup > 1.0, "{first:?}");
        // Re-running the identical job against its journal is pure cache
        // replay: zero interpreter evaluations, identical final config.
        let second = run_job(&request, &journal, None).unwrap();
        assert_eq!(second.evaluated, 0, "replay must not evaluate: {second:?}");
        assert_eq!(second.final_config, first.final_config);
        assert_eq!(second.final_double, first.final_double);
        assert!(second.preloaded > 0);
        std::fs::remove_dir_all(journal.parent().unwrap()).unwrap();
    }

    #[test]
    fn pre_flipped_cancel_token_cancels_before_any_evaluation() {
        let journal = tmp_journal("cancel");
        let _ = std::fs::remove_dir_all(journal.parent().unwrap());
        let cancel = Arc::new(AtomicBool::new(true));
        let request = JobRequest {
            program: PROGRAM.into(),
            spec: spec(),
        };
        match run_job(&request, &journal, Some(cancel.clone())) {
            Err(JobError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Un-flip and re-run: the job completes normally.
        cancel.store(false, Ordering::Relaxed);
        let done = run_job(&request, &journal, Some(cancel)).unwrap();
        assert!(done.best_speedup > 1.0);
        std::fs::remove_dir_all(journal.parent().unwrap()).unwrap();
    }

    #[test]
    fn bad_specs_fail_fast() {
        let journal = tmp_journal("bad");
        let mut s = spec();
        s.metric = "energy".into();
        let r = JobRequest {
            program: PROGRAM.into(),
            spec: s,
        };
        assert!(matches!(
            run_job(&r, &journal, None),
            Err(JobError::Spec(_))
        ));
        let mut s = spec();
        s.procs = vec![];
        let r = JobRequest {
            program: PROGRAM.into(),
            spec: s,
        };
        assert!(matches!(
            run_job(&r, &journal, None),
            Err(JobError::Spec(_))
        ));
        let r = JobRequest {
            program: "program broken\n".into(),
            spec: spec(),
        };
        assert!(matches!(
            run_job(&r, &journal, None),
            Err(JobError::Model(_))
        ));
    }
}
