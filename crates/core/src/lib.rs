//! # prose-core
//!
//! The paper's primary contribution, end to end: automated,
//! performance-guided floating-point precision tuning for Fortran programs
//! (the PROSE pipeline of *"Toward Automated Precision Tuning of Weather
//! and Climate Models: A Case Study"*, SC 2024).
//!
//! The Figure-1 cycle, with every choice from Section III:
//!
//! 1. **Search space** ([`tuner::ModelSpec::load`]) — FP variable
//!    declarations inside hotspot work routines, two precision levels.
//! 2. **Search** (`prose-search`) — the delta-debugging adaptation of
//!    Precimonious, returning 1-minimal variants.
//! 3. **Transformation** (`prose-transform`) — source-to-source declaration
//!    rewriting plus wrapper synthesis for mixed-precision parameter
//!    passing.
//! 4. **Correctness** ([`metrics`]) — model-specific scalar metrics
//!    (kinetic energy / water elevation / CFL) with relative-error
//!    thresholds.
//! 5. **Performance** ([`speedup`]) — GPTL-style hotspot timers, Equation
//!    1's noise-tolerant median-of-n speedup, per-variant 3×-baseline
//!    timeouts.
//!
//! # Quickstart
//!
//! ```
//! use prose_core::{metrics::CorrectnessMetric, tuner};
//!
//! let spec = tuner::ModelSpec {
//!     name: "demo".into(),
//!     source: r#"
//! module hot
//! contains
//!   subroutine work(u, n)
//!     real(kind=8), intent(inout) :: u(n)
//!     integer, intent(in) :: n
//!     real(kind=8) :: c
//!     integer :: i
//!     c = 1.0000001d0
//!     do i = 1, n
//!       u(i) = u(i) * c + 0.25d0
//!     end do
//!   end subroutine work
//! end module hot
//! program main
//!   use hot
//!   real(kind=8) :: field(256), diag(2048), acc
//!   integer :: step, i
//!   field = 1.0d0
//!   diag = 0.5d0
//!   acc = 0.0d0
//!   do step = 1, 20
//!     call work(field, 256)
//!     ! Driver-side work outside the hotspot (the other 85% of a real
//!     ! model), so the hotspot share and the 3x timeout are realistic.
//!     do i = 1, 2048
//!       diag(i) = diag(i) * 0.999d0 + 0.001d0
//!     end do
//!     acc = acc + sum(diag)
//!   end do
//!   call prose_record_array('field', field)
//! end program main
//! "#
//!     .into(),
//!     hotspot_module: "hot".into(),
//!     target_procs: vec!["work".into()],
//!     metric: CorrectnessMetric::MaxOverSpaceL2OverTime { key: "field".into(), floor_frac: 0.0 },
//!     error_threshold: 1e-3,
//!     n_runs: 1,
//!     noise_rsd: 0.0,
//!     exclude: vec![],
//! };
//! let model = spec.load().unwrap();
//! let task = model.task(tuner::PerfScope::Hotspot, 42).unwrap();
//! let outcome = tuner::tune(&task).unwrap();
//! let best = outcome.search.best.expect("found a faster variant");
//! assert!(best.outcome.speedup > 1.0);
//! ```

pub mod certify;
pub mod ensemble;
pub mod evaluator;
pub mod job;
pub mod metrics;
pub mod prepass;
pub mod profile;
pub mod speedup;
pub mod tuner;

pub use certify::{certify_config, crosscheck_journal, BoundCheck, Certificate};
pub use ensemble::{
    validate_ensemble, CandidateValidation, EnsembleError, EnsembleParams, EnsembleReport,
    MemberResult,
};
pub use evaluator::{
    hotspot_scope_from_callers, hotspot_scope_with_wrappers, status_from_name, status_name,
    CancelRequested, DynamicEvaluator, FailureKind, ProcSample, StrictDesync, VariantRecord,
};
pub use job::{job_id_for, run_job, JobError, JobRequest, JobResult};
pub use metrics::CorrectnessMetric;
pub use prepass::{run_prepass, PrepassReport, StaticVerdict};
pub use profile::{profile, select_hotspot, ProfileRow};
pub use tuner::{
    tune, tune_brute_force, LoadedModel, ModelSpec, PerfScope, TuningOutcome, TuningTask,
    VariantPath,
};
