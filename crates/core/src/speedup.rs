//! The noise-tolerant speedup metric, Equation 1 of the paper:
//!
//! ```text
//! Speedup = median(T_baseline_1..n) / median(T_variant_1..n)
//! ```
//!
//! The simulated cost model is deterministic; run-to-run variance on shared
//! HPC nodes is reproduced by a seeded multiplicative log-normal noise whose
//! relative standard deviation matches the paper's observations (1% for
//! MPAS-A/ADCIRC, 9% for MOM6 — which is why MOM6 uses n = 7 while the
//! others use n = 1).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Multiplicative timing-noise model.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Relative standard deviation of run time (e.g. 0.01 or 0.09).
    pub rsd: f64,
    /// Base seed; samples are keyed by (variant id, run index) so reruns
    /// are reproducible and variants are independent.
    pub seed: u64,
}

impl NoiseModel {
    pub fn new(rsd: f64, seed: u64) -> Self {
        NoiseModel { rsd, seed }
    }

    /// Draw `n` noisy timing samples around the deterministic `cycles`.
    pub fn samples(&self, cycles: f64, variant_id: u64, n: usize) -> Vec<f64> {
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ variant_id.wrapping_mul(0x9e3779b97f4a7c15));
        (0..n)
            .map(|_| {
                // Log-normal with multiplicative sigma ≈ rsd: two uniforms
                // via Box-Muller keep the dependency surface to `rand` only.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                cycles * (self.rsd * z).exp()
            })
            .collect()
    }
}

/// Median of a sample set (empty → NaN).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Equation 1.
pub fn speedup(baseline_samples: &[f64], variant_samples: &[f64]) -> f64 {
    median(baseline_samples) / median(variant_samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn speedup_is_ratio_of_medians() {
        assert_eq!(speedup(&[10.0, 10.0, 10.0], &[5.0, 5.0, 5.0]), 2.0);
    }

    #[test]
    fn noise_is_deterministic_per_variant_and_run() {
        let nm = NoiseModel::new(0.05, 42);
        assert_eq!(nm.samples(100.0, 7, 3), nm.samples(100.0, 7, 3));
        assert_ne!(nm.samples(100.0, 7, 3), nm.samples(100.0, 8, 3));
    }

    #[test]
    fn noise_rsd_is_roughly_right() {
        let nm = NoiseModel::new(0.09, 1);
        let xs = nm.samples(1000.0, 0, 4000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        let rsd = var.sqrt() / mean;
        assert!((rsd - 0.09).abs() < 0.02, "observed rsd {rsd}");
    }

    #[test]
    fn zero_rsd_noise_is_exact() {
        let nm = NoiseModel::new(0.0, 5);
        assert_eq!(nm.samples(123.0, 3, 4), vec![123.0; 4]);
    }

    #[test]
    fn median_of_n_tolerates_outliers() {
        // Inject one massive outlier into 7 samples: the median moves
        // little — the reason Eq. 1 uses medians.
        let clean = vec![100.0; 7];
        let mut noisy = clean.clone();
        noisy[3] = 100_000.0;
        let s_clean = speedup(&[100.0], &clean);
        let s_noisy = speedup(&[100.0], &noisy);
        assert_eq!(s_clean, 1.0);
        assert_eq!(s_noisy, 1.0);
    }
}
