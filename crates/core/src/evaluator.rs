//! The dynamic-evaluation half of the Figure-1 cycle: transform → run →
//! measure, for one tuning task.
//!
//! Implements [`prose_search::Evaluator`]; batches are evaluated in
//! parallel with rayon, standing in for the paper's one-Derecho-node-per-
//! variant parallelism.

use crate::speedup::{speedup, NoiseModel};
use prose_analysis::flow::FpFlowGraph;
use crate::tuner::{PerfScope, TuningTask};
use parking_lot::Mutex;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::FpVarId;
use prose_interp::{run_program, RunConfig, RunError, RunOutcome, Timers};
use prose_search::{Config, Outcome, Status};
use prose_transform::make_variant;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-procedure timing sample inside one variant (Figure 6's raw data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcSample {
    pub proc: String,
    pub cycles: f64,
    pub calls: u64,
    /// Fingerprint of the precision assignment restricted to this
    /// procedure's own FP variables — "unique procedure variants".
    pub fingerprint: u64,
}

impl ProcSample {
    pub fn per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.cycles / self.calls as f64
        }
    }
}

/// Everything measured about one explored variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRecord {
    /// Search configuration (true = 32-bit).
    pub config: Config,
    pub outcome: Outcome,
    /// Fraction of atoms at 32-bit.
    pub fraction_single: f64,
    /// Hotspot procedures' timers for this variant.
    pub per_proc: Vec<ProcSample>,
    /// Wrapper procedures synthesized for this variant.
    pub wrappers: Vec<String>,
    /// Human-readable failure detail, when the run aborted.
    pub detail: Option<String>,
    /// Whole-model simulated cycles (present when the run completed).
    pub total_cycles: Option<f64>,
    /// Hotspot-scoped cycles (present when the run completed).
    pub hotspot_cycles: Option<f64>,
}

/// Baseline measurements shared by every variant evaluation.
#[derive(Debug)]
pub struct Baseline {
    pub outcome: RunOutcome,
    pub hotspot_cycles: f64,
    pub total_cycles: f64,
}

impl Baseline {
    pub fn scoped(&self, scope: PerfScope) -> f64 {
        match scope {
            PerfScope::Hotspot => self.hotspot_cycles,
            PerfScope::WholeModel => self.total_cycles,
        }
    }

    /// Fraction of whole-model time spent in the hotspot (Table I).
    pub fn hotspot_share(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.hotspot_cycles / self.total_cycles
        }
    }
}

/// The evaluator driven by the search strategies.
pub struct DynamicEvaluator<'a> {
    pub task: &'a TuningTask,
    pub baseline: Baseline,
    noise: NoiseModel,
    /// Per hotspot procedure: its own FP variable ids (for fingerprints).
    proc_vars: Vec<(String, Vec<FpVarId>)>,
    /// All evaluated variants, in evaluation order.
    records: Mutex<Vec<VariantRecord>>,
}

impl<'a> DynamicEvaluator<'a> {
    /// Run the 64-bit baseline and set up the evaluator.
    pub fn new(task: &'a TuningTask) -> Result<Self, RunError> {
        let cfg = RunConfig {
            cost: task.cost.clone(),
            budget: None,
            max_events: task.max_events,
            wrapper_names: Default::default(),
        };
        let outcome = run_program(&task.program, &task.index, &cfg)?;
        let hotspot_cycles = outcome
            .timers
            .scoped_cycles(task.hotspot_procs.iter().map(String::as_str));
        let total_cycles = outcome.total_cycles;
        let noise = NoiseModel::new(task.noise_rsd, task.seed);

        let proc_vars = task
            .hotspot_procs
            .iter()
            .map(|p| {
                let vars = task
                    .index
                    .scope_of_procedure(p)
                    .map(|s| task.index.atoms_in_scopes(&[s]))
                    .unwrap_or_default();
                (p.clone(), vars)
            })
            .collect();

        Ok(DynamicEvaluator {
            task,
            baseline: Baseline { outcome, hotspot_cycles, total_cycles },
            noise,
            proc_vars,
            records: Mutex::new(Vec::new()),
        })
    }

    /// Consume the evaluator, returning every variant record.
    pub fn into_records(self) -> Vec<VariantRecord> {
        self.records.into_inner()
    }

    /// Map a search configuration to a precision assignment over the task's
    /// atoms.
    pub fn precision_map(&self, lowered: &Config) -> PrecisionMap {
        let mut map = PrecisionMap::declared(&self.task.index);
        for (i, low) in lowered.iter().enumerate() {
            if *low {
                map.set(
                    self.task.atoms[i],
                    prose_fortran::ast::FpPrecision::Single,
                );
            }
        }
        map
    }

    /// Deterministic variant id independent of evaluation order.
    fn variant_id(lowered: &Config) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in lowered {
            h ^= u64::from(*b) + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Transform, run, and measure one configuration (pure w.r.t. shared
    /// state; called in parallel from batches).
    pub fn eval_one(&self, lowered: &Config) -> VariantRecord {
        let task = self.task;
        let map = self.precision_map(lowered);
        let fraction_single = map.fraction_single(&task.atoms);
        let fingerprints: Vec<(String, u64)> = self
            .proc_vars
            .iter()
            .map(|(p, vars)| (p.clone(), map.fingerprint(vars)))
            .collect();

        let base = VariantRecord {
            config: lowered.clone(),
            outcome: Outcome { status: Status::TransformError, speedup: 0.0, error: f64::INFINITY },
            fraction_single,
            per_proc: Vec::new(),
            wrappers: Vec::new(),
            detail: None,
            total_cycles: None,
            hotspot_cycles: None,
        };

        // T2: program transformation.
        let variant = match make_variant(&task.program, &task.index, &map) {
            Ok(v) => v,
            Err(e) => {
                return VariantRecord { detail: Some(format!("transform: {e}")), ..base }
            }
        };

        // T3: dynamic evaluation under the 3×-baseline budget.
        let run_cfg = RunConfig {
            cost: task.cost.clone(),
            budget: Some(task.timeout_factor * self.baseline.total_cycles),
            max_events: task.max_events,
            wrapper_names: variant.wrappers.iter().cloned().collect(),
        };
        let run = match run_program(&variant.program, &variant.index, &run_cfg) {
            Ok(o) => o,
            Err(e) => {
                let status = match e {
                    RunError::Timeout { .. } => Status::Timeout,
                    _ => Status::RuntimeError,
                };
                return VariantRecord {
                    outcome: Outcome { status, speedup: 0.0, error: f64::INFINITY },
                    wrappers: variant.wrappers,
                    detail: Some(e.to_string()),
                    ..base
                };
            }
        };

        // Correctness.
        let error = task
            .metric
            .compute(&self.baseline.outcome.records, &run.records);
        let Some(error) = error else {
            return VariantRecord {
                outcome: Outcome {
                    status: Status::RuntimeError,
                    speedup: 0.0,
                    error: f64::INFINITY,
                },
                wrappers: variant.wrappers,
                detail: Some("correctness metric unavailable (corrupted output)".into()),
                ..base
            };
        };

        // Performance: Eq. 1 median-of-n over noisy samples. Hotspot scope
        // mirrors GPTL's inclusive regions: wrappers called from inside a
        // hotspot procedure are part of the measured time; wrappers at the
        // hotspot's outer boundary are not (the Figure-5 vs Figure-7
        // distinction).
        let vid = Self::variant_id(lowered);
        let hotspot_set = hotspot_scope_with_wrappers(
            &variant.program,
            &variant.index,
            &task.hotspot_procs,
            &variant.wrappers,
        );
        let scoped_variant = match task.scope {
            PerfScope::Hotspot => run
                .timers
                .scoped_cycles(hotspot_set.iter().map(String::as_str)),
            PerfScope::WholeModel => run.total_cycles,
        };
        let base_samples =
            self.noise
                .samples(self.baseline.scoped(task.scope), 0, task.n_runs);
        let var_samples = self.noise.samples(scoped_variant, vid | 1, task.n_runs);
        let sp = speedup(&base_samples, &var_samples);

        let status = if error <= task.error_threshold {
            Status::Pass
        } else {
            Status::FailAccuracy
        };
        let per_proc = collect_proc_samples(&run.timers, &fingerprints);
        VariantRecord {
            outcome: Outcome { status, speedup: sp, error },
            per_proc,
            wrappers: variant.wrappers,
            detail: None,
            total_cycles: Some(run.total_cycles),
            hotspot_cycles: Some(
                run.timers
                    .scoped_cycles(hotspot_set.iter().map(String::as_str)),
            ),
            ..base
        }
    }
}

/// The hotspot procedure set for one variant: the target procedures plus
/// every synthesized wrapper whose call sites all lie inside the set
/// (computed to a fixed point, since wrappers may call through wrappers).
pub fn hotspot_scope_with_wrappers(
    program: &prose_fortran::Program,
    index: &prose_fortran::ProgramIndex,
    hotspot_procs: &[String],
    wrappers: &[String],
) -> Vec<String> {
    let mut set: Vec<String> = hotspot_procs.to_vec();
    if wrappers.is_empty() {
        return set;
    }
    let graph = FpFlowGraph::build(program, index);
    loop {
        let mut grew = false;
        for w in wrappers {
            if set.contains(w) {
                continue;
            }
            let callers: Vec<String> = graph
                .sites()
                .iter()
                .filter(|s| &s.callee == w)
                .map(|s| index.scope_info(s.caller).name.clone())
                .collect();
            if !callers.is_empty() && callers.iter().all(|c| set.contains(c)) {
                set.push(w.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}

fn collect_proc_samples(timers: &Timers, fingerprints: &[(String, u64)]) -> Vec<ProcSample> {
    let fp: HashMap<&str, u64> =
        fingerprints.iter().map(|(p, f)| (p.as_str(), *f)).collect();
    fingerprints
        .iter()
        .filter_map(|(p, _)| {
            timers.get(p).map(|t| ProcSample {
                proc: p.clone(),
                cycles: t.cycles,
                calls: t.calls,
                fingerprint: fp[p.as_str()],
            })
        })
        .collect()
}

impl<'a> prose_search::Evaluator for DynamicEvaluator<'a> {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        let rec = self.eval_one(lowered);
        let outcome = rec.outcome;
        self.records.lock().push(rec);
        outcome
    }

    fn evaluate_batch(&mut self, batch: &[Config]) -> Vec<Outcome> {
        // One logical "node" per variant: rayon parallelism substitutes the
        // paper's PBS fan-out.
        let recs: Vec<VariantRecord> =
            batch.par_iter().map(|cfg| self.eval_one(cfg)).collect();
        let outcomes = recs.iter().map(|r| r.outcome).collect();
        self.records.lock().extend(recs);
        outcomes
    }

    fn atom_count(&self) -> usize {
        self.task.atoms.len()
    }
}
