//! The dynamic-evaluation half of the Figure-1 cycle: transform → run →
//! measure, for one tuning task.
//!
//! Implements [`prose_search::Evaluator`]; batches are evaluated in
//! parallel with rayon, standing in for the paper's one-Derecho-node-per-
//! variant parallelism.
//!
//! ## Memoization and the trial journal
//!
//! Every evaluation request is answered through a config-keyed cache.
//! Delta-debugging's probe sets overlap heavily across granularity levels,
//! and re-running an experiment repeats them wholesale; the cache
//! guarantees the interpreter runs **at most once per configuration per
//! journal**. When [`TuningTask::journal`] is set, the cache is preloaded
//! from the journal file and every request (hit or miss) is appended to
//! it, so a re-run against an existing journal performs zero interpreter
//! evaluations and the journal doubles as the experiment's audit trail.

use crate::speedup::{speedup, NoiseModel};
use crate::tuner::{PerfScope, TuningTask, VariantPath};
use parking_lot::Mutex;
use prose_analysis::flow::FpFlowGraph;
use prose_fortran::ast::Procedure;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::FpVarId;
use prose_interp::{
    run_ir, run_program, IrTemplate, OpCounts, RunConfig, RunError, RunOutcome, Timers,
};
use prose_search::{Config, Outcome, Status};
use prose_trace::{Counters, Journal, StageClock, TrialRecord};
use prose_transform::{make_variant, VariantPlan, VariantTemplate};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Journal-facing name of a [`Status`].
pub fn status_name(s: Status) -> &'static str {
    match s {
        Status::Pass => "pass",
        Status::FailAccuracy => "fail_accuracy",
        Status::Timeout => "timeout",
        Status::RuntimeError => "runtime_error",
        Status::TransformError => "transform_error",
    }
}

/// Inverse of [`status_name`].
pub fn status_from_name(name: &str) -> Option<Status> {
    Some(match name {
        "pass" => Status::Pass,
        "fail_accuracy" => Status::FailAccuracy,
        "timeout" => Status::Timeout,
        "runtime_error" => Status::RuntimeError,
        "transform_error" => Status::TransformError,
        _ => return None,
    })
}

/// Render interpreter op counts as journal counters.
fn ops_counters(ops: &OpCounts, events: u64) -> Counters {
    let mut c = Counters::new();
    c.bump("interp_fp32_ops", ops.fp32_ops);
    c.bump("interp_fp64_ops", ops.fp64_ops);
    c.bump("interp_mem_ops", ops.mem_ops);
    c.bump("interp_casts", ops.casts);
    c.bump("interp_cast_stores", ops.cast_stores);
    c.bump("interp_timed_calls", ops.timed_calls);
    c.bump("interp_loop_iters", ops.loop_iters);
    c.bump("interp_allreduces", ops.allreduces);
    c.bump("interp_events", events);
    c
}

/// Per-procedure timing sample inside one variant (Figure 6's raw data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcSample {
    pub proc: String,
    pub cycles: f64,
    pub calls: u64,
    /// Fingerprint of the precision assignment restricted to this
    /// procedure's own FP variables — "unique procedure variants".
    pub fingerprint: u64,
}

impl ProcSample {
    pub fn per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.cycles / self.calls as f64
        }
    }
}

/// Everything measured about one explored variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRecord {
    /// Search configuration (true = 32-bit).
    pub config: Config,
    pub outcome: Outcome,
    /// Fraction of atoms at 32-bit.
    pub fraction_single: f64,
    /// Hotspot procedures' timers for this variant.
    pub per_proc: Vec<ProcSample>,
    /// Wrapper procedures synthesized for this variant.
    pub wrappers: Vec<String>,
    /// Human-readable failure detail, when the run aborted.
    pub detail: Option<String>,
    /// Whole-model simulated cycles (present when the run completed).
    pub total_cycles: Option<f64>,
    /// Hotspot-scoped cycles (present when the run completed).
    pub hotspot_cycles: Option<f64>,
}

/// Baseline measurements shared by every variant evaluation.
#[derive(Debug)]
pub struct Baseline {
    pub outcome: RunOutcome,
    pub hotspot_cycles: f64,
    pub total_cycles: f64,
}

impl Baseline {
    pub fn scoped(&self, scope: PerfScope) -> f64 {
        match scope {
            PerfScope::Hotspot => self.hotspot_cycles,
            PerfScope::WholeModel => self.total_cycles,
        }
    }

    /// Fraction of whole-model time spent in the hotspot (Table I).
    pub fn hotspot_share(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.hotspot_cycles / self.total_cycles
        }
    }
}

/// The evaluator driven by the search strategies.
pub struct DynamicEvaluator<'a> {
    pub task: &'a TuningTask,
    pub baseline: Baseline,
    noise: NoiseModel,
    /// Per hotspot procedure: its own FP variable ids (for fingerprints).
    proc_vars: Vec<(String, Vec<FpVarId>)>,
    /// All evaluated variants, in evaluation order.
    records: Mutex<Vec<VariantRecord>>,
    /// Config-keyed memoization: every measured configuration, including
    /// outcomes replayed from a preloaded journal.
    cache: Mutex<HashMap<Config, VariantRecord>>,
    /// Aggregate observability counters (cache hits/misses, interpreter op
    /// totals).
    counters: Mutex<Counters>,
    /// Trial journal sink ([`TuningTask::journal`]); `None` disables
    /// journaling but not in-memory memoization.
    journal: Option<Mutex<Journal>>,
    /// Next journal sequence number (continues a preloaded journal).
    seq: AtomicU64,
    /// Fast-path templates, built once per task when
    /// [`TuningTask::variant_path`] is [`VariantPath::Fast`]. `None` means
    /// every evaluation takes the faithful unparse → reparse → re-lower
    /// pipeline (requested, or the template build failed).
    templates: Option<(VariantTemplate<'a>, IrTemplate<'a>)>,
    /// Faithful cross-check tickets remaining ([`TuningTask::crosscheck`]).
    crosschecks_left: AtomicU64,
}

impl<'a> DynamicEvaluator<'a> {
    /// Run the 64-bit baseline and set up the evaluator.
    pub fn new(task: &'a TuningTask) -> Result<Self, RunError> {
        let cfg = RunConfig {
            cost: task.cost.clone(),
            budget: None,
            max_events: task.max_events,
            wrapper_names: Default::default(),
        };
        let outcome = run_program(&task.program, &task.index, &cfg)?;

        // Fast-path templates: one AST scan + one full lowering per task,
        // amortized over every uncached evaluation. A build failure is not
        // fatal — the faithful pipeline remains available.
        let templates = match task.variant_path {
            VariantPath::Faithful => None,
            VariantPath::Fast => {
                match IrTemplate::new(&task.program, &task.index, task.cost.inline_max_stmts) {
                    Ok(ir) => Some((VariantTemplate::new(&task.program, &task.index), ir)),
                    Err(e) => {
                        eprintln!(
                            "[prose] fast variant path unavailable ({e}); using faithful path"
                        );
                        None
                    }
                }
            }
        };

        let hotspot_cycles = outcome
            .timers
            .scoped_cycles(task.hotspot_procs.iter().map(String::as_str));
        let total_cycles = outcome.total_cycles;
        let noise = NoiseModel::new(task.noise_rsd, task.seed);

        let proc_vars = task
            .hotspot_procs
            .iter()
            .map(|p| {
                let vars = task
                    .index
                    .scope_of_procedure(p)
                    .map(|s| task.index.atoms_in_scopes(&[s]))
                    .unwrap_or_default();
                (p.clone(), vars)
            })
            .collect();

        // Preload the memoization cache from the task's journal, when one
        // is configured and already has records for this atom count.
        let mut cache: HashMap<Config, VariantRecord> = HashMap::new();
        let mut counters = Counters::new();
        let mut journal = None;
        let mut seq = 0;
        if let Some(path) = &task.journal {
            match Journal::load_or_empty(path) {
                Ok(past) => {
                    seq = past.len() as u64;
                    for tr in &past {
                        if tr.config.len() == task.atoms.len() && !cache.contains_key(&tr.config) {
                            if let Some(rec) = variant_from_trial(tr, task.error_threshold) {
                                cache.insert(tr.config.clone(), rec);
                                counters.bump("cache_preloaded", 1);
                            }
                        }
                    }
                }
                Err(e) => eprintln!(
                    "[prose] ignoring unreadable trial journal {}: {e}",
                    path.display()
                ),
            }
            match Journal::open_append(path) {
                Ok(j) => journal = Some(Mutex::new(j)),
                Err(e) => eprintln!(
                    "[prose] trial journaling disabled ({}: {e})",
                    path.display()
                ),
            }
        }

        Ok(DynamicEvaluator {
            task,
            baseline: Baseline {
                outcome,
                hotspot_cycles,
                total_cycles,
            },
            noise,
            proc_vars,
            records: Mutex::new(Vec::new()),
            cache: Mutex::new(cache),
            counters: Mutex::new(counters),
            journal,
            seq: AtomicU64::new(seq),
            templates,
            crosschecks_left: AtomicU64::new(task.crosscheck as u64),
        })
    }

    /// Journal-facing name of the path evaluations actually take.
    pub fn variant_path_name(&self) -> &'static str {
        if self.templates.is_some() {
            VariantPath::Fast.name()
        } else {
            VariantPath::Faithful.name()
        }
    }

    /// Consume the evaluator, returning every variant record.
    pub fn into_records(self) -> Vec<VariantRecord> {
        self.records.into_inner()
    }

    /// Snapshot of the aggregate observability counters.
    pub fn metrics(&self) -> Counters {
        self.counters.lock().clone()
    }

    /// Map a search configuration to a precision assignment over the task's
    /// atoms.
    pub fn precision_map(&self, lowered: &Config) -> PrecisionMap {
        let mut map = PrecisionMap::declared(&self.task.index);
        for (i, low) in lowered.iter().enumerate() {
            if *low {
                map.set(self.task.atoms[i], prose_fortran::ast::FpPrecision::Single);
            }
        }
        map
    }

    /// Deterministic variant id independent of evaluation order.
    fn variant_id(lowered: &Config) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in lowered {
            h ^= u64::from(*b) + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Answer one configuration, consulting the memoization cache first.
    /// Cache hits never touch the interpreter; every request — hit or
    /// miss — is appended to the trial journal when one is configured.
    /// Called in parallel from batches.
    pub fn eval_one(&self, lowered: &Config) -> VariantRecord {
        let t0 = Instant::now();
        if let Some(hit) = self.cache.lock().get(lowered).cloned() {
            self.counters.lock().bump("cache_hits", 1);
            self.journal_append(&hit, true, t0, &StageClock::new(), Counters::new());
            return hit;
        }
        let mut clock = StageClock::new();
        let mut trial_counters = Counters::new();
        let rec = self.eval_uncached(lowered, &mut clock, &mut trial_counters);
        {
            let mut agg = self.counters.lock();
            agg.bump("cache_misses", 1);
            agg.merge(&trial_counters);
        }
        self.cache.lock().insert(lowered.clone(), rec.clone());
        self.journal_append(&rec, false, t0, &clock, trial_counters);
        rec
    }

    /// Append one request to the trial journal (no-op without a journal).
    fn journal_append(
        &self,
        rec: &VariantRecord,
        cached: bool,
        t0: Instant,
        clock: &StageClock,
        counters: Counters,
    ) {
        let Some(journal) = &self.journal else { return };
        // The sequence number is taken under the journal lock so records
        // land in the file in sequence order even under rayon parallelism.
        let mut j = journal.lock();
        let tr = TrialRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            config: rec.config.clone(),
            status: status_name(rec.outcome.status).to_string(),
            speedup: rec.outcome.speedup,
            error: rec.outcome.error,
            cached,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            fraction_single: rec.fraction_single,
            wrappers: rec.wrappers.len() as u64,
            total_cycles: rec.total_cycles,
            hotspot_cycles: rec.hotspot_cycles,
            stages: clock.stages().clone(),
            counters,
            variant_path: self.variant_path_name().to_string(),
        };
        if let Err(e) = j.append(&tr) {
            eprintln!("[prose] trial journal write failed: {e}");
        }
    }

    /// Transform, run, and measure one configuration (pure w.r.t. shared
    /// state), filling per-stage wall clocks and interpreter counters.
    fn eval_uncached(
        &self,
        lowered: &Config,
        clock: &mut StageClock,
        trial_counters: &mut Counters,
    ) -> VariantRecord {
        let task = self.task;
        let map = self.precision_map(lowered);
        let fraction_single = map.fraction_single(&task.atoms);
        let fingerprints: Vec<(String, u64)> = self
            .proc_vars
            .iter()
            .map(|(p, vars)| (p.clone(), map.fingerprint(vars)))
            .collect();

        let base = VariantRecord {
            config: lowered.clone(),
            outcome: Outcome {
                status: Status::TransformError,
                speedup: 0.0,
                error: f64::INFINITY,
            },
            fraction_single,
            per_proc: Vec::new(),
            wrappers: Vec::new(),
            detail: None,
            total_cycles: None,
            hotspot_cycles: None,
        };

        // T2 + T3 via the task's variant path. Both paths return the
        // completed run plus the wrapper set and the variant's hotspot
        // procedure scope; failures come back as finished records.
        let path_result = if let Some((vt, it)) = &self.templates {
            self.run_fast(vt, it, &map, clock, trial_counters, &base)
        } else {
            self.run_faithful(&map, clock, &base)
        };
        let (run, wrappers, hotspot_set) = match path_result {
            Ok(t) => t,
            Err(rec) => return *rec,
        };
        clock.add_ns("lower", run.lower_ns);
        clock.add_ns("exec", run.exec_ns);
        trial_counters.merge(&ops_counters(&run.ops, run.events));

        // Correctness.
        let error = task
            .metric
            .compute(&self.baseline.outcome.records, &run.records);
        let Some(error) = error else {
            return VariantRecord {
                outcome: Outcome {
                    status: Status::RuntimeError,
                    speedup: 0.0,
                    error: f64::INFINITY,
                },
                wrappers,
                detail: Some("correctness metric unavailable (corrupted output)".into()),
                ..base
            };
        };

        // Performance: Eq. 1 median-of-n over noisy samples. Hotspot scope
        // mirrors GPTL's inclusive regions: wrappers called from inside a
        // hotspot procedure are part of the measured time; wrappers at the
        // hotspot's outer boundary are not (the Figure-5 vs Figure-7
        // distinction).
        let vid = Self::variant_id(lowered);
        let scoped_variant = match task.scope {
            PerfScope::Hotspot => run
                .timers
                .scoped_cycles(hotspot_set.iter().map(String::as_str)),
            PerfScope::WholeModel => run.total_cycles,
        };
        let base_samples = self
            .noise
            .samples(self.baseline.scoped(task.scope), 0, task.n_runs);
        let var_samples = self.noise.samples(scoped_variant, vid | 1, task.n_runs);
        let sp = speedup(&base_samples, &var_samples);

        let status = if error <= task.error_threshold {
            Status::Pass
        } else {
            Status::FailAccuracy
        };
        let per_proc = collect_proc_samples(&run.timers, &fingerprints);
        VariantRecord {
            outcome: Outcome {
                status,
                speedup: sp,
                error,
            },
            per_proc,
            wrappers,
            detail: None,
            total_cycles: Some(run.total_cycles),
            hotspot_cycles: Some(
                run.timers
                    .scoped_cycles(hotspot_set.iter().map(String::as_str)),
            ),
            ..base
        }
    }

    /// The faithful pipeline: clone + rewrite the AST, unparse → reparse →
    /// reanalyze ([`make_variant`]), then lower and run from scratch.
    fn run_faithful(
        &self,
        map: &PrecisionMap,
        clock: &mut StageClock,
        base: &VariantRecord,
    ) -> Result<(RunOutcome, Vec<String>, Vec<String>), Box<VariantRecord>> {
        let task = self.task;
        let variant = match clock.time("transform", || {
            make_variant(&task.program, &task.index, map)
        }) {
            Ok(v) => v,
            Err(e) => {
                return Err(Box::new(VariantRecord {
                    detail: Some(format!("transform: {e}")),
                    ..base.clone()
                }))
            }
        };

        let run_cfg = RunConfig {
            cost: task.cost.clone(),
            budget: Some(task.timeout_factor * self.baseline.total_cycles),
            max_events: task.max_events,
            wrapper_names: variant.wrappers.iter().cloned().collect(),
        };
        let t_run = Instant::now();
        let run = match run_program(&variant.program, &variant.index, &run_cfg) {
            Ok(o) => o,
            Err(e) => {
                // Aborted runs (timeouts especially) still did real work
                // before failing; charge it to the exec stage.
                clock.add_ns("exec", t_run.elapsed().as_nanos() as u64);
                let status = match e {
                    RunError::Timeout { .. } => Status::Timeout,
                    _ => Status::RuntimeError,
                };
                return Err(Box::new(VariantRecord {
                    outcome: Outcome {
                        status,
                        speedup: 0.0,
                        error: f64::INFINITY,
                    },
                    wrappers: variant.wrappers,
                    detail: Some(e.to_string()),
                    ..base.clone()
                }));
            }
        };
        let hotspot_set = hotspot_scope_with_wrappers(
            &variant.program,
            &variant.index,
            &task.hotspot_procs,
            &variant.wrappers,
        );
        Ok((run, variant.wrappers, hotspot_set))
    }

    /// The template fast path: replay the wrapper rewrite on the variant
    /// template ("transform"), specialize the pre-lowered IR ("lower"), and
    /// run it — no text round trip, no full re-lower.
    fn run_fast(
        &self,
        vt: &VariantTemplate<'_>,
        it: &IrTemplate<'_>,
        map: &PrecisionMap,
        clock: &mut StageClock,
        trial_counters: &mut Counters,
        base: &VariantRecord,
    ) -> Result<(RunOutcome, Vec<String>, Vec<String>), Box<VariantRecord>> {
        let task = self.task;
        let plan = clock.time("transform", || vt.instantiate(map));
        let wrappers = plan.wrapper_names();
        let hotspot_set = hotspot_scope_from_callers(&task.hotspot_procs, &plan.wrapper_callers());

        let VariantPlan {
            wrappers: planned,
            decisions,
        } = plan;
        let pairs: Vec<(String, Procedure)> =
            planned.into_iter().map(|w| (w.callee, w.ast)).collect();
        let ir = match clock.time("lower", || it.instantiate(map, &pairs, &decisions)) {
            Ok(ir) => ir,
            Err(e) => {
                return Err(Box::new(VariantRecord {
                    wrappers,
                    detail: Some(format!("transform: {e}")),
                    ..base.clone()
                }))
            }
        };

        let run_cfg = RunConfig {
            cost: task.cost.clone(),
            budget: Some(task.timeout_factor * self.baseline.total_cycles),
            max_events: task.max_events,
            // Wrapper classification is baked into the template-lowered IR;
            // run_ir ignores this field.
            wrapper_names: Default::default(),
        };
        let t_run = Instant::now();
        let run = match run_ir(&ir, &run_cfg) {
            Ok(o) => o,
            Err(e) => {
                clock.add_ns("exec", t_run.elapsed().as_nanos() as u64);
                let status = match e {
                    RunError::Timeout { .. } => Status::Timeout,
                    _ => Status::RuntimeError,
                };
                return Err(Box::new(VariantRecord {
                    outcome: Outcome {
                        status,
                        speedup: 0.0,
                        error: f64::INFINITY,
                    },
                    wrappers,
                    detail: Some(e.to_string()),
                    ..base.clone()
                }));
            }
        };

        if self.take_crosscheck() {
            self.crosscheck_faithful(map, &wrappers, &run, &run_cfg);
            trial_counters.bump("crosscheck_faithful", 1);
        }
        Ok((run, wrappers, hotspot_set))
    }

    /// Claim one faithful cross-check ticket, if any remain.
    fn take_crosscheck(&self) -> bool {
        self.crosschecks_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Re-run one configuration through the faithful unparse → reparse →
    /// re-lower pipeline and assert the fast path produced bit-identical
    /// observables. A divergence is a fidelity bug in the templates, not a
    /// data point — it aborts the experiment rather than contaminating it.
    fn crosscheck_faithful(
        &self,
        map: &PrecisionMap,
        fast_wrappers: &[String],
        fast: &RunOutcome,
        run_cfg: &RunConfig,
    ) {
        let task = self.task;
        let variant = make_variant(&task.program, &task.index, map)
            .expect("crosscheck: faithful transform failed on a fast-path success");
        assert_eq!(
            variant.wrappers, fast_wrappers,
            "crosscheck: wrapper sets diverge between variant paths"
        );
        let cfg = RunConfig {
            wrapper_names: variant.wrappers.iter().cloned().collect(),
            ..run_cfg.clone()
        };
        let faithful = run_program(&variant.program, &variant.index, &cfg)
            .expect("crosscheck: faithful run failed on a fast-path success");
        assert_eq!(
            faithful.records, fast.records,
            "crosscheck: recorded outputs diverge between variant paths"
        );
        assert_eq!(
            faithful.total_cycles, fast.total_cycles,
            "crosscheck: simulated cycles diverge between variant paths"
        );
        assert_eq!(
            faithful.ops, fast.ops,
            "crosscheck: op counts diverge between variant paths"
        );
    }
}

/// The hotspot procedure set for one variant: the target procedures plus
/// every synthesized wrapper whose call sites all lie inside the set
/// (computed to a fixed point, since wrappers may call through wrappers).
pub fn hotspot_scope_with_wrappers(
    program: &prose_fortran::Program,
    index: &prose_fortran::ProgramIndex,
    hotspot_procs: &[String],
    wrappers: &[String],
) -> Vec<String> {
    let mut set: Vec<String> = hotspot_procs.to_vec();
    if wrappers.is_empty() {
        return set;
    }
    let graph = FpFlowGraph::build(program, index);
    loop {
        let mut grew = false;
        for w in wrappers {
            if set.contains(w) {
                continue;
            }
            let callers: Vec<String> = graph
                .sites()
                .iter()
                .filter(|s| &s.callee == w)
                .map(|s| index.scope_info(s.caller).name.clone())
                .collect();
            if !callers.is_empty() && callers.iter().all(|c| set.contains(c)) {
                set.push(w.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}

/// Fast-path equivalent of [`hotspot_scope_with_wrappers`]: the caller sets
/// come from the variant plan's decision streams instead of a flow-graph
/// walk over the rewritten program. The main program body appears under
/// [`prose_transform::MAIN_BODY_KEY`], which is never a hotspot procedure,
/// so boundary wrappers stay outside the scope exactly as on the faithful
/// path.
pub fn hotspot_scope_from_callers(
    hotspot_procs: &[String],
    wrapper_callers: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let mut set: Vec<String> = hotspot_procs.to_vec();
    loop {
        let mut grew = false;
        for (w, callers) in wrapper_callers {
            if set.contains(w) {
                continue;
            }
            if !callers.is_empty() && callers.iter().all(|c| set.contains(c)) {
                set.push(w.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}

fn collect_proc_samples(timers: &Timers, fingerprints: &[(String, u64)]) -> Vec<ProcSample> {
    let fp: HashMap<&str, u64> = fingerprints.iter().map(|(p, f)| (p.as_str(), *f)).collect();
    fingerprints
        .iter()
        .filter_map(|(p, _)| {
            timers.get(p).map(|t| ProcSample {
                proc: p.clone(),
                cycles: t.cycles,
                calls: t.calls,
                fingerprint: fp[p.as_str()],
            })
        })
        .collect()
}

/// Rebuild a (reduced) variant record from a journaled trial. The outcome
/// and summary measurements survive the round trip; per-procedure samples
/// and wrapper names are not journaled and come back empty.
///
/// The pass/fail-accuracy verdict is **recomputed** from the journaled
/// error against the current task's threshold, so a journal written under
/// one threshold replays correctly under another (the measurements are
/// config properties; the verdict is a task property). Timeout and error
/// statuses are kept as recorded.
fn variant_from_trial(tr: &TrialRecord, error_threshold: f64) -> Option<VariantRecord> {
    let status = match status_from_name(&tr.status)? {
        Status::Pass | Status::FailAccuracy => {
            if tr.error <= error_threshold {
                Status::Pass
            } else {
                Status::FailAccuracy
            }
        }
        other => other,
    };
    Some(VariantRecord {
        config: tr.config.clone(),
        outcome: Outcome {
            status,
            speedup: tr.speedup,
            error: tr.error,
        },
        fraction_single: tr.fraction_single,
        per_proc: Vec::new(),
        wrappers: Vec::new(),
        detail: Some("replayed from trial journal".into()),
        total_cycles: tr.total_cycles,
        hotspot_cycles: tr.hotspot_cycles,
    })
}

impl<'a> prose_search::Evaluator for DynamicEvaluator<'a> {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        let rec = self.eval_one(lowered);
        let outcome = rec.outcome;
        self.records.lock().push(rec);
        outcome
    }

    fn evaluate_batch(&mut self, batch: &[Config]) -> Vec<Outcome> {
        // One logical "node" per variant: rayon parallelism substitutes the
        // paper's PBS fan-out.
        let recs: Vec<VariantRecord> = batch.par_iter().map(|cfg| self.eval_one(cfg)).collect();
        let outcomes = recs.iter().map(|r| r.outcome).collect();
        self.records.lock().extend(recs);
        outcomes
    }

    fn atom_count(&self) -> usize {
        self.task.atoms.len()
    }
}
