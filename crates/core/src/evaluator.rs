//! The dynamic-evaluation half of the Figure-1 cycle: transform → run →
//! measure, for one tuning task.
//!
//! Implements [`prose_search::Evaluator`]; batches are evaluated on a
//! scoped-thread worker pool ([`TuningTask::workers`]), standing in for
//! the paper's one-Derecho-node-per-variant parallelism.
//!
//! ## Determinism under parallelism
//!
//! Worker count must never change results. Three invariants make a
//! parallel run byte-equivalent to a serial one (up to wall-clock and
//! worker-provenance fields):
//!
//! 1. **Stable reduction order** — batch results land in index-ordered
//!    slots, so the search applies outcomes in submission order no matter
//!    which worker finished first. Worker panics are captured per slot
//!    and re-raised in batch order.
//! 2. **Single-flight memo** — the config cache carries an in-flight set
//!    guarded by the same lock; concurrent requests for one configuration
//!    wait for the first evaluation instead of repeating it, so every
//!    configuration runs the interpreter at most once per journal.
//! 3. **Deferred journal writes** — workers only *record* trials; the
//!    submitting thread appends them through the single journal writer in
//!    batch index order, so sequence numbers and record order in the file
//!    are identical at any worker count. Per-trial fault plans are keyed
//!    by a hash of the configuration ([`prose_faults::config_hash`]), not
//!    by evaluation arrival order.
//!
//! ## Memoization and the trial journal
//!
//! Every evaluation request is answered through a config-keyed cache.
//! Delta-debugging's probe sets overlap heavily across granularity levels,
//! and re-running an experiment repeats them wholesale; the cache
//! guarantees the interpreter runs **at most once per configuration per
//! journal**. When [`TuningTask::journal`] is set, the cache is preloaded
//! from the journal file and every request (hit or miss) is appended to
//! it, so a re-run against an existing journal performs zero interpreter
//! evaluations and the journal doubles as the experiment's audit trail.

use crate::speedup::{speedup, NoiseModel};
use crate::tuner::{PerfScope, TuningTask, VariantPath};
use prose_analysis::flow::FpFlowGraph;
use prose_fortran::ast::Procedure;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::FpVarId;
use prose_interp::{
    run_ir_shadow, run_program, run_program_shadow, IrTemplate, OpCounts, RunConfig, RunError,
    RunOutcome, ShadowReport, Timers,
};
use prose_search::{Config, Outcome, Status};
use prose_trace::{Counters, Journal, ShadowTrial, StageClock, TrialRecord};
use prose_transform::{make_variant, VariantPlan, VariantTemplate};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Poison-tolerant lock acquisition. A worker panic while holding a lock
/// poisons it; every panic that can unwind through a lock scope here is
/// either contained per-trial or deliberately re-raised (strict desync,
/// injected kill), so the guarded data is never left half-updated in a way
/// the search cares about. Propagating the poison would instead cascade
/// one contained failure into a panic on every later trial.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a variant evaluation failed, one level finer than [`Status`].
///
/// `Status` is the search-facing verdict (a timeout and a floating-point
/// trap are both "not a candidate"); `FailureKind` is the operator-facing
/// diagnosis that the journal and `prose-report` preserve. Every failed
/// evaluation carries exactly one kind; passing and fail-accuracy records
/// carry none (an accuracy miss is a measurement, not a fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Simulated-cycle budget or event-limit valve tripped.
    Timeout,
    /// Wall-clock deadline exceeded — the supervision layer killed a run
    /// (or the watchdog declared a stuck election dead). Real elapsed
    /// time, unlike [`FailureKind::Timeout`]'s modeled cycles.
    Deadline,
    /// Non-finite value surfaced where the interpreter checks for one.
    FpException,
    /// Fast-path template output diverged from the faithful pipeline.
    TemplateDesync,
    /// A panic unwound out of the evaluation and was contained.
    Panic,
    /// The trial journal could not be read or written.
    JournalError,
    /// The source-level transform rejected the precision assignment.
    Transform,
    /// Any other interpreter abort (out-of-bounds, div-by-zero, ...).
    RuntimeOther,
    /// The scalar metric passed but the shadow-execution guardrail demoted
    /// the trial: per-variable shadow error over budget, or catastrophic
    /// cancellation flagged.
    ShadowBudget,
}

impl FailureKind {
    /// Journal-facing name.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::Deadline => "deadline",
            FailureKind::FpException => "fp_exception",
            FailureKind::TemplateDesync => "template_desync",
            FailureKind::Panic => "panic",
            FailureKind::JournalError => "journal_error",
            FailureKind::Transform => "transform",
            FailureKind::RuntimeOther => "runtime_other",
            FailureKind::ShadowBudget => "shadow_budget",
        }
    }

    /// Inverse of [`FailureKind::name`].
    pub fn from_name(name: &str) -> Option<FailureKind> {
        Some(match name {
            "timeout" => FailureKind::Timeout,
            "deadline" => FailureKind::Deadline,
            "fp_exception" => FailureKind::FpException,
            "template_desync" => FailureKind::TemplateDesync,
            "panic" => FailureKind::Panic,
            "journal_error" => FailureKind::JournalError,
            "transform" => FailureKind::Transform,
            "runtime_other" => FailureKind::RuntimeOther,
            "shadow_budget" => FailureKind::ShadowBudget,
            _ => return None,
        })
    }

    /// Classify an interpreter abort.
    pub fn from_run_error(e: &RunError) -> FailureKind {
        match e {
            RunError::Timeout { .. } | RunError::EventLimit => FailureKind::Timeout,
            RunError::Deadline { .. } => FailureKind::Deadline,
            RunError::NonFinite { .. } => FailureKind::FpException,
            RunError::Lower(_) => FailureKind::Transform,
            _ => FailureKind::RuntimeOther,
        }
    }
}

/// Panic payload raised by the strict crosscheck policy: a template
/// divergence under `--strict` must abort the experiment, so
/// [`DynamicEvaluator::eval_one`]'s containment re-raises it instead of
/// recording a [`FailureKind::Panic`] trial.
pub struct StrictDesync(pub String);

/// Panic payload raised when the task's cancellation token flips while a
/// search is running. Raised only at evaluation boundaries on the
/// submitting thread — between journal appends, never inside one — so the
/// journal of a cancelled run is always intact and resumable. Callers
/// embedding the tuner as a library (`run_job`, `prose-tune`'s signal
/// handler) catch it with `catch_unwind` and downcast.
pub struct CancelRequested;

/// Best-effort text of a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Journal-facing name of a [`Status`].
pub fn status_name(s: Status) -> &'static str {
    match s {
        Status::Pass => "pass",
        Status::FailAccuracy => "fail_accuracy",
        Status::Timeout => "timeout",
        Status::RuntimeError => "runtime_error",
        Status::TransformError => "transform_error",
    }
}

/// Inverse of [`status_name`].
pub fn status_from_name(name: &str) -> Option<Status> {
    Some(match name {
        "pass" => Status::Pass,
        "fail_accuracy" => Status::FailAccuracy,
        "timeout" => Status::Timeout,
        "runtime_error" => Status::RuntimeError,
        "transform_error" => Status::TransformError,
        _ => return None,
    })
}

/// Render interpreter op counts as journal counters.
fn ops_counters(ops: &OpCounts, events: u64) -> Counters {
    let mut c = Counters::new();
    c.bump("interp_fp32_ops", ops.fp32_ops);
    c.bump("interp_fp64_ops", ops.fp64_ops);
    c.bump("interp_mem_ops", ops.mem_ops);
    c.bump("interp_casts", ops.casts);
    c.bump("interp_cast_stores", ops.cast_stores);
    c.bump("interp_timed_calls", ops.timed_calls);
    c.bump("interp_loop_iters", ops.loop_iters);
    c.bump("interp_allreduces", ops.allreduces);
    c.bump("interp_events", events);
    c
}

/// Per-procedure timing sample inside one variant (Figure 6's raw data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcSample {
    pub proc: String,
    pub cycles: f64,
    pub calls: u64,
    /// Fingerprint of the precision assignment restricted to this
    /// procedure's own FP variables — "unique procedure variants".
    pub fingerprint: u64,
}

impl ProcSample {
    pub fn per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.cycles / self.calls as f64
        }
    }
}

/// Everything measured about one explored variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRecord {
    /// Search configuration (true = 32-bit).
    pub config: Config,
    pub outcome: Outcome,
    /// Fraction of atoms at 32-bit.
    pub fraction_single: f64,
    /// Hotspot procedures' timers for this variant.
    pub per_proc: Vec<ProcSample>,
    /// Wrapper procedures synthesized for this variant.
    pub wrappers: Vec<String>,
    /// Human-readable failure detail, when the run aborted.
    pub detail: Option<String>,
    /// Whole-model simulated cycles (present when the run completed).
    pub total_cycles: Option<f64>,
    /// Hotspot-scoped cycles (present when the run completed).
    pub hotspot_cycles: Option<f64>,
    /// Structured failure classification (set iff the evaluation failed
    /// for a reason other than accuracy).
    #[serde(default)]
    pub failure: Option<FailureKind>,
    /// Name of the fault injected into this trial, when the fault harness
    /// planned one ("nan" / "timeout" / "abort" / "jitter").
    #[serde(default)]
    pub fault_kind: Option<String>,
    /// Per-trial fault-plan seed (reproduces the injection exactly).
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Shadow-execution diagnostics, when the task ran with `--shadow`.
    #[serde(default)]
    pub shadow: Option<ShadowTrial>,
}

/// What a variant path hands back: the completed run, the wrapper set, the
/// variant's hotspot procedure scope, and the shadow report (when the task
/// runs with shadow execution). Failures come back as finished records.
type PathResult =
    Result<(RunOutcome, Vec<String>, Vec<String>, Option<ShadowReport>), Box<VariantRecord>>;

/// Flatten an interpreter shadow report to the journal-friendly per-trial
/// summary. `demoted` is filled in by the guardrail gate afterwards.
fn shadow_trial(rep: &ShadowReport) -> ShadowTrial {
    ShadowTrial {
        worst_rel: rep.worst_rel,
        worst_var: rep.worst_var().map(|v| v.name.clone()),
        cancellations: rep.cancellations,
        cancellation_site: rep.worst_cancellation.as_ref().map(|c| {
            format!(
                "{}:{} ({:.1} bits lost, rel {:.2e})",
                c.proc, c.line, c.lost_bits, c.rel_err
            )
        }),
        nonfinite_origin: rep
            .nonfinite
            .as_ref()
            .map(|n| format!("{} at {}:{}", n.op, n.proc, n.line)),
        nonfinite_injected: rep.nonfinite.as_ref().is_some_and(|n| n.injected),
        demoted: false,
    }
}

/// Operator-facing explanation of a guardrail demotion.
fn shadow_demotion_detail(rep: &ShadowReport, budget: f64) -> String {
    let mut parts = Vec::new();
    if rep.worst_rel > budget {
        let var = rep
            .worst_var()
            .map(|v| v.name.clone())
            .unwrap_or_else(|| "?".into());
        parts.push(format!(
            "shadow error {:.2e} on {var} exceeds budget {budget:.2e}",
            rep.worst_rel
        ));
    }
    if rep.cancellations > 0 {
        let site = rep
            .worst_cancellation
            .as_ref()
            .map(|c| format!("{}:{}", c.proc, c.line))
            .unwrap_or_else(|| "?".into());
        parts.push(format!(
            "{} catastrophic cancellation(s), worst at {site}",
            rep.cancellations
        ));
    }
    format!("shadow guardrail: {}", parts.join("; "))
}

/// Is this failed record worth re-attempting? Transient kinds are the two
/// wall-clock-ish ones jitter can cause: an injected timeout and a
/// deadline kill. Deterministic rejections (accuracy, transform errors,
/// FP traps, panics) re-fail identically and are never retried.
fn is_transient(rec: &VariantRecord) -> bool {
    matches!(
        rec.failure,
        Some(FailureKind::Timeout) | Some(FailureKind::Deadline)
    )
}

/// Config-keyed memoization state. The in-flight set lives under the same
/// lock as the map so a membership check and an insertion are atomic:
/// concurrent workers asking for the same configuration elect exactly one
/// evaluator, and the rest wait on [`DynamicEvaluator::memo_cv`].
#[derive(Default)]
struct MemoState {
    map: HashMap<Config, VariantRecord>,
    /// In-flight configurations, keyed to their election time so the
    /// watchdog can spot a stuck evaluator by wall-clock age.
    inflight: HashMap<Config, Instant>,
}

/// One completed evaluation attempt that was retried: its failed record
/// plus the bookkeeping its journal entry needs.
struct AttemptTrial {
    rec: VariantRecord,
    attempt: u32,
    wall_ms: f64,
    clock: StageClock,
    counters: Counters,
}

/// Per-trial bookkeeping produced alongside a [`VariantRecord`] and
/// consumed by the (possibly deferred) journal append.
struct TrialMeta {
    cached: bool,
    /// Wall time of *this evaluation*, measured when it completed — not
    /// when its journal record is appended, so batch queueing never skews
    /// the number.
    wall_ms: f64,
    clock: StageClock,
    counters: Counters,
    /// Pool worker that ran the trial (`None`: submitting thread).
    worker: Option<u32>,
    /// Attempt ordinal of the *final* record (0 unless transient-failure
    /// retries happened).
    attempt: u32,
    /// Earlier attempts that failed transiently and were retried; each is
    /// journaled (in attempt order) ahead of the final record.
    prior: Vec<AttemptTrial>,
}

impl TrialMeta {
    fn cached_hit(wall_ms: f64, worker: Option<u32>) -> Self {
        TrialMeta {
            cached: true,
            wall_ms,
            clock: StageClock::new(),
            counters: Counters::new(),
            worker,
            attempt: 0,
            prior: Vec::new(),
        }
    }
}

/// Removes the in-flight marker for a configuration even when the
/// evaluation unwinds, so waiters blocked on the single-flight condvar are
/// released instead of deadlocking under a propagating panic.
struct InflightGuard<'a, 'b> {
    eval: &'a DynamicEvaluator<'b>,
    config: &'a Config,
}

impl Drop for InflightGuard<'_, '_> {
    fn drop(&mut self) {
        let mut memo = lock(&self.eval.memo);
        memo.inflight.remove(self.config);
        drop(memo);
        self.eval.memo_cv.notify_all();
    }
}

/// Baseline measurements shared by every variant evaluation.
#[derive(Debug)]
pub struct Baseline {
    pub outcome: RunOutcome,
    pub hotspot_cycles: f64,
    pub total_cycles: f64,
}

impl Baseline {
    pub fn scoped(&self, scope: PerfScope) -> f64 {
        match scope {
            PerfScope::Hotspot => self.hotspot_cycles,
            PerfScope::WholeModel => self.total_cycles,
        }
    }

    /// Fraction of whole-model time spent in the hotspot (Table I).
    pub fn hotspot_share(&self) -> f64 {
        if self.total_cycles == 0.0 {
            0.0
        } else {
            self.hotspot_cycles / self.total_cycles
        }
    }
}

/// The evaluator driven by the search strategies.
pub struct DynamicEvaluator<'a> {
    pub task: &'a TuningTask,
    pub baseline: Baseline,
    noise: NoiseModel,
    /// Per hotspot procedure: its own FP variable ids (for fingerprints).
    proc_vars: Vec<(String, Vec<FpVarId>)>,
    /// All evaluated variants, in evaluation order.
    records: Mutex<Vec<VariantRecord>>,
    /// Config-keyed memoization: every measured configuration, including
    /// outcomes replayed from a preloaded journal, plus the in-flight set
    /// backing the single-flight election.
    memo: Mutex<MemoState>,
    /// Signalled whenever an in-flight evaluation completes (or unwinds).
    memo_cv: Condvar,
    /// Aggregate observability counters (cache hits/misses, interpreter op
    /// totals).
    counters: Mutex<Counters>,
    /// Trial journal sink ([`TuningTask::journal`]); `None` disables
    /// journaling but not in-memory memoization.
    journal: Option<Mutex<Journal>>,
    /// Next journal sequence number (continues a preloaded journal).
    seq: AtomicU64,
    /// Fast-path templates, built once per task when
    /// [`TuningTask::variant_path`] is [`VariantPath::Fast`]. `None` means
    /// every evaluation takes the faithful unparse → reparse → re-lower
    /// pipeline (requested, or the template build failed).
    templates: Option<(VariantTemplate<'a>, IrTemplate<'a>)>,
    /// Faithful cross-check tickets remaining ([`TuningTask::crosscheck`]).
    crosschecks_left: AtomicU64,
    /// Set when a lenient crosscheck caught a template divergence: the
    /// fast path is no longer trusted and every subsequent evaluation
    /// takes the faithful pipeline.
    fast_disabled: AtomicBool,
    /// Journal records appended this process (drives the fault harness's
    /// `kill-after` mid-run abort).
    journal_appends: AtomicU64,
    /// Evaluation-round ordinal: one per [`eval_one`] call or
    /// [`Evaluator::evaluate_batch`] submission. Deterministic across
    /// worker counts (it counts submissions, not completions) and stamped
    /// into every trial record so `prose-report` can reconstruct
    /// wall-clock-per-round.
    batch_seq: AtomicU64,
    /// Absint pre-pass context stamped into every journaled trial
    /// ([`TrialRecord::static_verdict`]); `None` when no pre-pass ran.
    static_verdict: Option<String>,
}

impl<'a> DynamicEvaluator<'a> {
    /// Run the 64-bit baseline and set up the evaluator.
    pub fn new(task: &'a TuningTask) -> Result<Self, RunError> {
        let cfg = RunConfig {
            cost: task.cost.clone(),
            budget: None,
            max_events: task.max_events,
            wrapper_names: Default::default(),
            // The baseline is never fault-injected: it anchors correctness
            // and timing for every variant. It is also never shadowed —
            // the baseline is all-fp64, so its shadow is itself. No
            // deadline either: killing the baseline would abort the whole
            // task, and it is exactly the run the deadline is calibrated
            // against.
            fault: None,
            shadow: false,
            deadline: None,
        };
        let outcome = run_program(&task.program, &task.index, &cfg)?;

        // Fast-path templates: one AST scan + one full lowering per task,
        // amortized over every uncached evaluation. A build failure is not
        // fatal — the faithful pipeline remains available.
        let templates = match task.variant_path {
            VariantPath::Faithful => None,
            VariantPath::Fast => {
                match IrTemplate::new(&task.program, &task.index, task.cost.inline_max_stmts) {
                    Ok(ir) => Some((VariantTemplate::new(&task.program, &task.index), ir)),
                    Err(e) => {
                        eprintln!(
                            "[prose] fast variant path unavailable ({e}); using faithful path"
                        );
                        None
                    }
                }
            }
        };

        let hotspot_cycles = outcome
            .timers
            .scoped_cycles(task.hotspot_procs.iter().map(String::as_str));
        let total_cycles = outcome.total_cycles;
        let noise = NoiseModel::new(task.noise_rsd, task.seed);

        let proc_vars = task
            .hotspot_procs
            .iter()
            .map(|p| {
                let vars = task
                    .index
                    .scope_of_procedure(p)
                    .map(|s| task.index.atoms_in_scopes(&[s]))
                    .unwrap_or_default();
                (p.clone(), vars)
            })
            .collect();

        // Preload the memoization cache from the task's journal, when one
        // is configured and already has records for this atom count.
        let mut cache: HashMap<Config, VariantRecord> = HashMap::new();
        let mut counters = Counters::new();
        let mut journal = None;
        let mut seq = 0;
        if let Some(path) = &task.journal {
            // Repair mode: corrupt mid-file records are quarantined (not
            // fatal) and a torn tail is truncated so this process's appends
            // can never merge into a partial line. A healthy journal is
            // left untouched.
            match Journal::load_repair_or_empty(path) {
                Ok(report) => {
                    counters.bump("journal_torn_lines", u64::from(report.torn_tail));
                    counters.bump("journal_quarantined", u64::from(report.quarantined));
                    if report.damaged() > 0 {
                        if let Some(q) = &report.quarantine_path {
                            eprintln!(
                                "[prose] journal repair: {} damaged record(s) quarantined to {}",
                                report.damaged(),
                                q.display()
                            );
                        }
                    }
                    // Continue the sequence after the highest surviving
                    // record (not the record count: quarantine can leave
                    // holes, and seq collisions would corrupt resume).
                    seq = report
                        .records
                        .iter()
                        .map(|tr| tr.seq + 1)
                        .max()
                        .unwrap_or(0);
                    for tr in &report.records {
                        // Records are keyed by (config, ensemble member):
                        // the same configuration evaluated on a different
                        // held-out member is a different measurement.
                        if tr.member != task.member {
                            continue;
                        }
                        if tr.config.len() == task.atoms.len() && !cache.contains_key(&tr.config) {
                            if let Some(rec) = variant_from_trial(tr, task.error_threshold) {
                                cache.insert(tr.config.clone(), rec);
                                counters.bump("cache_preloaded", 1);
                            }
                        }
                    }
                }
                Err(e) => {
                    counters.bump("journal_errors", 1);
                    eprintln!(
                        "[prose] ignoring unreadable trial journal {} ({}): {e}",
                        path.display(),
                        FailureKind::JournalError.name()
                    );
                }
            }
            match Journal::open_append_with(path, task.wal_flush) {
                Ok(j) => journal = Some(Mutex::new(j)),
                Err(e) => {
                    counters.bump("journal_errors", 1);
                    eprintln!(
                        "[prose] trial journaling disabled ({}: {e})",
                        path.display()
                    );
                }
            }
        }

        Ok(DynamicEvaluator {
            task,
            baseline: Baseline {
                outcome,
                hotspot_cycles,
                total_cycles,
            },
            noise,
            proc_vars,
            records: Mutex::new(Vec::new()),
            memo: Mutex::new(MemoState {
                map: cache,
                inflight: HashMap::new(),
            }),
            memo_cv: Condvar::new(),
            counters: Mutex::new(counters),
            journal,
            seq: AtomicU64::new(seq),
            templates,
            crosschecks_left: AtomicU64::new(task.crosscheck as u64),
            fast_disabled: AtomicBool::new(false),
            journal_appends: AtomicU64::new(0),
            batch_seq: AtomicU64::new(0),
            static_verdict: None,
        })
    }

    /// Record the absint pre-pass verdict stamp; every subsequently
    /// journaled trial carries it. Set once, before the search starts.
    pub fn set_static_verdict(&mut self, stamp: Option<String>) {
        self.static_verdict = stamp;
    }

    /// Journal-facing name of the path evaluations actually take.
    pub fn variant_path_name(&self) -> &'static str {
        if self.templates.is_some() && !self.fast_disabled.load(Ordering::Relaxed) {
            VariantPath::Fast.name()
        } else {
            VariantPath::Faithful.name()
        }
    }

    /// Consume the evaluator, returning every variant record.
    pub fn into_records(self) -> Vec<VariantRecord> {
        self.records
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the aggregate observability counters.
    pub fn metrics(&self) -> Counters {
        lock(&self.counters).clone()
    }

    /// Effective worker-pool width for batch evaluation.
    pub fn workers(&self) -> usize {
        self.task.workers.max(1)
    }

    /// Map a search configuration to a precision assignment over the task's
    /// atoms.
    pub fn precision_map(&self, lowered: &Config) -> PrecisionMap {
        let mut map = PrecisionMap::declared(&self.task.index);
        for (i, low) in lowered.iter().enumerate() {
            if *low {
                map.set(self.task.atoms[i], prose_fortran::ast::FpPrecision::Single);
            }
        }
        map
    }

    /// Deterministic variant id independent of evaluation order.
    fn variant_id(lowered: &Config) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in lowered {
            h ^= u64::from(*b) + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Answer one configuration, consulting the memoization cache first.
    /// Cache hits never touch the interpreter; every request — hit or
    /// miss — is appended to the trial journal when one is configured.
    pub fn eval_one(&self, lowered: &Config) -> VariantRecord {
        self.check_cancelled();
        let batch = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let (rec, meta) = self.eval_record(lowered, None);
        self.journal_append(&rec, &meta, batch);
        rec
    }

    /// Measure one configuration without journaling it: the memoized (or
    /// freshly evaluated) record plus the bookkeeping a journal append
    /// needs. Safe to call from pool workers; the single-flight election
    /// guarantees the interpreter runs at most once per configuration even
    /// when several workers ask concurrently.
    fn eval_record(&self, lowered: &Config, worker: Option<u32>) -> (VariantRecord, TrialMeta) {
        let t0 = Instant::now();
        {
            let mut memo = lock(&self.memo);
            let mut logged_wait = false;
            let mut reelections = 0u64;
            loop {
                if let Some(hit) = memo.map.get(lowered) {
                    let hit = hit.clone();
                    drop(memo);
                    lock(&self.counters).bump("cache_hits", 1);
                    let mut meta = TrialMeta::cached_hit(t0.elapsed().as_secs_f64() * 1e3, worker);
                    if reelections > 0 {
                        // Surface the re-election in the waiter's journal
                        // record; a healthy run journals nothing extra, so
                        // journals stay byte-stable across worker counts.
                        meta.counters.bump("watchdog_reelections", reelections);
                    }
                    return (hit, meta);
                }
                match memo.inflight.get(lowered) {
                    None => {
                        memo.inflight.insert(lowered.clone(), Instant::now());
                        break;
                    }
                    Some(elected_at) if elected_at.elapsed() > self.watchdog_limit() => {
                        // Watchdog: the elected evaluator has been in
                        // flight longer than any legitimate evaluation
                        // can take (every escalated retry plus grace).
                        // Either it is hung with no interpreter deadline
                        // armed to kill it, or its thread died abnormally
                        // without unwinding. Re-elect: mark the trial
                        // failed-by-deadline so every waiter (and the
                        // search) moves on instead of stranding forever.
                        // A late answer from the stuck worker simply
                        // overwrites this record with the same verdict.
                        memo.inflight.remove(lowered);
                        let rec = self.watchdog_record(lowered);
                        memo.map.insert(lowered.clone(), rec);
                        reelections += 1;
                        lock(&self.counters).bump("watchdog_reelections", 1);
                        drop(memo);
                        self.memo_cv.notify_all();
                        memo = lock(&self.memo);
                    }
                    Some(_) => {
                        // Another worker is evaluating this exact
                        // configuration: wait for it rather than
                        // duplicating interpreter work — but never
                        // unboundedly, so a stuck election is noticed.
                        if !logged_wait {
                            lock(&self.counters).bump("singleflight_waits", 1);
                            logged_wait = true;
                        }
                        let (m, _timed_out) = self
                            .memo_cv
                            .wait_timeout(memo, self.watchdog_tick())
                            .unwrap_or_else(PoisonError::into_inner);
                        memo = m;
                    }
                }
            }
        }
        let guard = InflightGuard {
            eval: self,
            config: lowered,
        };
        // Transient-failure retry: an injected timeout or a wall-clock
        // deadline kill may be jitter, not a property of the
        // configuration. Re-attempt up to `task.retry_attempts` times with
        // a doubled budget and deadline each attempt; every attempt is
        // journaled. Only the final verdict enters the memo cache, so an
        // exhausted retry quarantines the configuration as an ordinary
        // rejection — delta debugging treats it like any failed trial.
        let mut prior: Vec<AttemptTrial> = Vec::new();
        let mut attempt: u32 = 0;
        let (rec, clock, trial_counters) = loop {
            let t_attempt = Instant::now();
            let mut clock = StageClock::new();
            let mut trial_counters = Counters::new();
            let rec = self.eval_uncached(lowered, attempt, &mut clock, &mut trial_counters);
            if attempt < self.task.retry_attempts && is_transient(&rec) {
                trial_counters.bump("retry_attempts", 1);
                {
                    let mut agg = lock(&self.counters);
                    agg.bump("retry_attempts", 1);
                    agg.merge(&trial_counters);
                }
                prior.push(AttemptTrial {
                    rec,
                    attempt,
                    wall_ms: t_attempt.elapsed().as_secs_f64() * 1e3,
                    clock,
                    counters: trial_counters,
                });
                attempt += 1;
                continue;
            }
            break (rec, clock, trial_counters);
        };
        {
            let mut agg = lock(&self.counters);
            agg.bump("cache_misses", 1);
            agg.merge(&trial_counters);
            if rec.failure == Some(FailureKind::Deadline) {
                agg.bump("deadline_kills", 1);
            }
            if !prior.is_empty() && rec.outcome.status == Status::Pass {
                agg.bump("retry_recovered", 1);
            }
        }
        lock(&self.memo).map.insert(lowered.clone(), rec.clone());
        drop(guard); // releases the in-flight marker and wakes waiters
        let meta = TrialMeta {
            cached: false,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            clock,
            counters: trial_counters,
            worker,
            attempt,
            prior,
        };
        (rec, meta)
    }

    /// Raise [`CancelRequested`] when the task's cancellation token has
    /// flipped. Called only at evaluation boundaries on the submitting
    /// thread, so the unwind can never tear a journal record or strand a
    /// single-flight election on a worker.
    fn check_cancelled(&self) {
        if let Some(cancel) = &self.task.cancel {
            if cancel.load(Ordering::Relaxed) {
                lock(&self.counters).bump("cancel_checkpoints", 1);
                std::panic::panic_any(CancelRequested);
            }
        }
    }

    /// How long an election may be in flight before the watchdog declares
    /// it dead. Generous by construction: the sum of every escalated
    /// attempt's deadline plus a fixed grace, so a legitimately slow (but
    /// progressing) evaluation is never misfired on. Without a configured
    /// deadline there is no calibration to lean on and the limit falls
    /// back to a large constant.
    fn watchdog_limit(&self) -> Duration {
        match self.task.deadline_ms {
            Some(ms) => {
                let escalated: u64 = (0..=self.task.retry_attempts.min(20))
                    .map(|a| ms.saturating_mul(1u64 << a))
                    .fold(0, u64::saturating_add);
                Duration::from_millis(escalated.saturating_add((ms * 4).max(5_000)))
            }
            None => Duration::from_secs(300),
        }
    }

    /// Condvar wait quantum for single-flight waiters: short enough to
    /// notice a stuck election promptly, long enough not to spin.
    fn watchdog_tick(&self) -> Duration {
        (self.watchdog_limit() / 8).clamp(Duration::from_millis(10), Duration::from_secs(1))
    }

    /// The record a watchdog re-election synthesizes for a stuck trial:
    /// failed-by-deadline, rejected by the search.
    fn watchdog_record(&self, lowered: &Config) -> VariantRecord {
        let map = self.precision_map(lowered);
        VariantRecord {
            config: lowered.clone(),
            outcome: Outcome {
                status: Status::Timeout,
                speedup: 0.0,
                error: f64::INFINITY,
            },
            fraction_single: map.fraction_single(&self.task.atoms),
            per_proc: Vec::new(),
            wrappers: Vec::new(),
            detail: Some(format!(
                "watchdog: elected evaluator stuck past {} ms; marked failed-by-deadline",
                self.watchdog_limit().as_millis()
            )),
            total_cycles: None,
            hotspot_cycles: None,
            failure: Some(FailureKind::Deadline),
            fault_kind: None,
            fault_seed: None,
            shadow: None,
        }
    }

    /// Evaluate a batch on the worker pool and return the records in batch
    /// index order, with journal appends performed afterwards — also in
    /// batch index order — on the calling thread. This is what makes the
    /// journal byte-stable across worker counts. A panic escaping any
    /// trial (only [`StrictDesync`] and [`prose_faults::InjectedKill`]
    /// escape containment) is re-raised here in batch index order with its
    /// payload intact.
    pub fn eval_batch_records(&self, batch: &[Config]) -> Vec<VariantRecord> {
        self.check_cancelled();
        type Slot = Option<std::thread::Result<(VariantRecord, TrialMeta)>>;
        let batch_id = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let workers = self.workers().min(batch.len()).max(1);
        let mut slots: Vec<std::thread::Result<(VariantRecord, TrialMeta)>> = if workers <= 1 {
            batch
                .iter()
                .map(|cfg| catch_unwind(AssertUnwindSafe(|| self.eval_record(cfg, None))))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let cells: Vec<Mutex<Slot>> = batch.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let next = &next;
                    let cells = &cells;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cfg) = batch.get(i) else { break };
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            self.eval_record(cfg, Some(w as u32))
                        }));
                        *lock(&cells[i]) = Some(out);
                    });
                }
            });
            cells
                .into_iter()
                .map(|c| {
                    c.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .expect("worker filled every claimed slot")
                })
                .collect()
        };
        // Reduce in submission order: journal appends (and any re-raised
        // panic) happen exactly where a serial run would place them.
        let mut recs = Vec::with_capacity(slots.len());
        for slot in slots.drain(..) {
            match slot {
                Ok((rec, meta)) => {
                    self.journal_append(&rec, &meta, batch_id);
                    recs.push(rec);
                }
                Err(payload) => resume_unwind(payload),
            }
        }
        recs
    }

    /// Append one request to the trial journal (no-op without a journal).
    /// Retried attempts are appended first, in attempt order, then the
    /// final record; each gets its own sequence number and CRC stamp.
    fn journal_append(&self, rec: &VariantRecord, meta: &TrialMeta, batch: u64) {
        if self.journal.is_none() {
            return;
        }
        for a in &meta.prior {
            self.journal_append_one(
                &a.rec,
                a.attempt,
                false,
                a.wall_ms,
                &a.clock,
                &a.counters,
                meta.worker,
                batch,
            );
        }
        self.journal_append_one(
            rec,
            meta.attempt,
            meta.cached,
            meta.wall_ms,
            &meta.clock,
            &meta.counters,
            meta.worker,
            batch,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn journal_append_one(
        &self,
        rec: &VariantRecord,
        attempt: u32,
        cached: bool,
        wall_ms: f64,
        clock: &StageClock,
        counters: &Counters,
        worker: Option<u32>,
        batch: u64,
    ) {
        let Some(journal) = &self.journal else { return };
        // The sequence number is taken under the journal lock so records
        // land in the file in sequence order; batch appends additionally
        // arrive pre-ordered by the submission-order reduction.
        let mut j = lock(journal);
        let tr = TrialRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            config: rec.config.clone(),
            status: status_name(rec.outcome.status).to_string(),
            speedup: rec.outcome.speedup,
            error: rec.outcome.error,
            cached,
            wall_ms,
            fraction_single: rec.fraction_single,
            wrappers: rec.wrappers.len() as u64,
            total_cycles: rec.total_cycles,
            hotspot_cycles: rec.hotspot_cycles,
            stages: clock.stages().clone(),
            counters: counters.clone(),
            variant_path: self.variant_path_name().to_string(),
            failure_kind: rec.failure.map(|f| f.name().to_string()),
            fault_kind: rec.fault_kind.clone(),
            fault_seed: rec.fault_seed,
            shadow: rec.shadow.clone(),
            member: self.task.member,
            search_granularity: self.task.granularity.name().to_string(),
            workers: self.workers() as u64,
            worker,
            batch: Some(batch),
            attempt,
            job: self.task.job_id.clone(),
            static_verdict: self.static_verdict.clone(),
            crc: None,
        };
        // Serialize (stamping the CRC) before deciding how to write: the
        // corrupt-record fault flips one bit of the already-checksummed
        // line, which is exactly the damage `load_repair` must catch. The
        // draw is keyed off the trial's own fault plan, never arrival
        // order, so a parallel run corrupts exactly the records a serial
        // run would.
        let write_result = match Journal::serialize_line(&tr) {
            Ok(line) => {
                let flip = self
                    .task
                    .faults
                    .as_ref()
                    .filter(|f| f.is_active())
                    .map(|f| f.plan_for_config_attempt(&tr.config, attempt))
                    .and_then(|p| p.corrupt_at(line.len()));
                if let Some((off, bit)) = flip {
                    let mut bytes = line.into_bytes();
                    bytes[off] ^= bit;
                    lock(&self.counters).bump("journal_corruptions_injected", 1);
                    j.append_raw_line(&bytes)
                } else {
                    j.append_raw_line(line.as_bytes())
                }
            }
            Err(e) => Err(e),
        };
        if let Err(e) = write_result {
            // A journal failure cannot itself be journaled; it surfaces as
            // a counter and a warning instead of killing the search.
            lock(&self.counters).bump("journal_errors", 1);
            eprintln!(
                "[prose] trial journal write failed ({}): {e}",
                FailureKind::JournalError.name()
            );
        }
        let appended = self.journal_appends.fetch_add(1, Ordering::Relaxed) + 1;
        drop(j);
        // Fault harness kill switch: simulate the process dying mid-run
        // right after the k-th append. Raised as an uncontained panic so it
        // tears down the whole search exactly where a real crash would.
        // Appends are always performed on the submitting thread (batch
        // reduction is deferred), so the kill tears down the search rather
        // than a worker.
        if let Some(k) = self.task.faults.as_ref().and_then(|f| f.kill_after) {
            if appended >= k {
                std::panic::panic_any(prose_faults::InjectedKill { appended });
            }
        }
    }

    /// Transform, run, and measure one configuration, with panic
    /// containment and fault-plan bookkeeping.
    ///
    /// Any panic that unwinds out of the evaluation — an injected abort
    /// from the fault harness, or a genuine bug in a transform/interpreter
    /// path — is caught here and classified as [`FailureKind::Panic`], so
    /// one poisoned variant rejects that configuration instead of killing
    /// the whole search. Two payloads are deliberately re-raised:
    /// [`StrictDesync`] (the `--strict` crosscheck policy aborts the
    /// experiment) and [`prose_faults::InjectedKill`] (the harness's
    /// process-death stand-in must not be contained).
    fn eval_uncached(
        &self,
        lowered: &Config,
        attempt: u32,
        clock: &mut StageClock,
        trial_counters: &mut Counters,
    ) -> VariantRecord {
        let vid = Self::variant_id(lowered);
        // Fault plans are keyed by the configuration's own hash, never by
        // arrival order, so a parallel run injects exactly the faults a
        // serial run would. Retries re-draw (attempt 0 is bit-identical to
        // the unkeyed plan): a transient injected fault models jitter, and
        // jitter does not strike the same run twice deterministically.
        let plan = self
            .task
            .faults
            .as_ref()
            .filter(|f| f.is_active())
            .map(|f| f.plan_for_config_attempt(lowered, attempt));
        if plan.as_ref().is_some_and(|p| p.kind_name().is_some()) {
            trial_counters.bump("faults_injected", 1);
        }
        let contained = catch_unwind(AssertUnwindSafe(|| {
            self.eval_inner(lowered, vid, attempt, plan.as_ref(), clock, trial_counters)
        }));
        let mut rec = match contained {
            Ok(rec) => rec,
            Err(payload) => {
                if payload.downcast_ref::<StrictDesync>().is_some()
                    || payload
                        .downcast_ref::<prose_faults::InjectedKill>()
                        .is_some()
                {
                    resume_unwind(payload);
                }
                trial_counters.bump("failures_contained_panic", 1);
                let detail = if let Some(a) = payload.downcast_ref::<prose_faults::InjectedAbort>()
                {
                    format!(
                        "contained panic: injected abort after {} events",
                        a.after_events
                    )
                } else {
                    format!("contained panic: {}", panic_message(payload.as_ref()))
                };
                let map = self.precision_map(lowered);
                VariantRecord {
                    config: lowered.clone(),
                    outcome: Outcome {
                        status: Status::RuntimeError,
                        speedup: 0.0,
                        error: f64::INFINITY,
                    },
                    fraction_single: map.fraction_single(&self.task.atoms),
                    per_proc: Vec::new(),
                    wrappers: Vec::new(),
                    detail: Some(detail),
                    total_cycles: None,
                    hotspot_cycles: None,
                    failure: Some(FailureKind::Panic),
                    fault_kind: None,
                    fault_seed: None,
                    shadow: None,
                }
            }
        };
        if let Some(p) = &plan {
            rec.fault_kind = p.kind_name().map(str::to_string);
            rec.fault_seed = Some(p.seed);
        }
        rec
    }

    /// The uncontained evaluation body (pure w.r.t. shared state), filling
    /// per-stage wall clocks and interpreter counters.
    /// Simulated-cycle budget for one attempt: the configured timeout
    /// factor, doubled per retry so a genuinely slow (but convergent)
    /// variant gets headroom a transient draw did not.
    fn run_budget(&self, attempt: u32) -> f64 {
        self.task.timeout_factor * (1u64 << attempt.min(20)) as f64 * self.baseline.total_cycles
    }

    /// Wall-clock deadline for one attempt (None: deadlines disabled),
    /// escalating in lockstep with the budget.
    fn run_deadline(&self, attempt: u32) -> Option<Duration> {
        self.task
            .deadline_ms
            .map(|ms| Duration::from_millis(ms.saturating_mul(1u64 << attempt.min(20))))
    }

    fn eval_inner(
        &self,
        lowered: &Config,
        vid: u64,
        attempt: u32,
        plan: Option<&prose_faults::TrialFaults>,
        clock: &mut StageClock,
        trial_counters: &mut Counters,
    ) -> VariantRecord {
        let task = self.task;
        let map = self.precision_map(lowered);
        let fraction_single = map.fraction_single(&task.atoms);
        let fingerprints: Vec<(String, u64)> = self
            .proc_vars
            .iter()
            .map(|(p, vars)| (p.clone(), map.fingerprint(vars)))
            .collect();

        let base = VariantRecord {
            config: lowered.clone(),
            outcome: Outcome {
                status: Status::TransformError,
                speedup: 0.0,
                error: f64::INFINITY,
            },
            fraction_single,
            per_proc: Vec::new(),
            wrappers: Vec::new(),
            detail: None,
            total_cycles: None,
            hotspot_cycles: None,
            failure: None,
            fault_kind: None,
            fault_seed: None,
            shadow: None,
        };

        // T2 + T3 via the task's variant path. Both paths return the
        // completed run plus the wrapper set and the variant's hotspot
        // procedure scope; failures come back as finished records.
        let fault = plan.and_then(|p| p.fault.clone());
        let path_result = match &self.templates {
            Some((vt, it)) if !self.fast_disabled.load(Ordering::Relaxed) => {
                self.run_fast(vt, it, &map, fault, attempt, clock, trial_counters, &base)
            }
            _ => self.run_faithful(&map, fault, attempt, clock, &base),
        };
        let (run, wrappers, hotspot_set, report) = match path_result {
            Ok(t) => t,
            Err(rec) => return *rec,
        };
        clock.add_ns("lower", run.lower_ns);
        clock.add_ns("exec", run.exec_ns);
        trial_counters.merge(&ops_counters(&run.ops, run.events));
        let mut shadow = report.as_ref().map(shadow_trial);

        // Correctness.
        let error = task
            .metric
            .compute(&self.baseline.outcome.records, &run.records);
        let Some(error) = error else {
            return VariantRecord {
                outcome: Outcome {
                    status: Status::RuntimeError,
                    speedup: 0.0,
                    error: f64::INFINITY,
                },
                wrappers,
                detail: Some("correctness metric unavailable (corrupted output)".into()),
                failure: Some(FailureKind::RuntimeOther),
                shadow,
                ..base
            };
        };

        // Performance: Eq. 1 median-of-n over noisy samples. Hotspot scope
        // mirrors GPTL's inclusive regions: wrappers called from inside a
        // hotspot procedure are part of the measured time; wrappers at the
        // hotspot's outer boundary are not (the Figure-5 vs Figure-7
        // distinction).
        let scoped_variant = match task.scope {
            PerfScope::Hotspot => run
                .timers
                .scoped_cycles(hotspot_set.iter().map(String::as_str)),
            PerfScope::WholeModel => run.total_cycles,
        };
        let measure = |n: usize| -> f64 {
            let base_samples = self.noise.samples(self.baseline.scoped(task.scope), 0, n);
            let mut var_samples = self.noise.samples(scoped_variant, vid | 1, n);
            if let Some(p) = plan {
                // Injected timing jitter perturbs each variant sample
                // independently; the streams are prefix-stable, so a
                // larger n re-observes the same draws plus fresh ones.
                for (v, j) in var_samples.iter_mut().zip(p.jitter_factors(n)) {
                    *v *= j;
                }
            }
            speedup(&base_samples, &var_samples)
        };
        let mut n = task.n_runs.max(1);
        let mut sp = measure(n);
        // Noise-tolerant re-evaluation: a speedup landing within
        // `retry_band` (relative) of the acceptance bar is re-measured
        // with an escalating sample count until it leaves the band or the
        // run budget is exhausted, so borderline accept/reject verdicts
        // stop flapping with the noise draw.
        if task.retry_band > 0.0 && task.min_speedup > 0.0 {
            while (sp - task.min_speedup).abs() <= task.retry_band * task.min_speedup
                && n < task.retry_max_runs
            {
                n = (n * 2 + 1).min(task.retry_max_runs);
                trial_counters.bump("speedup_reeval", 1);
                sp = measure(n);
            }
        }

        let mut status = if error <= task.error_threshold {
            Status::Pass
        } else {
            Status::FailAccuracy
        };

        // Guardrail gate: a trial that passes the scalar metric is still
        // demoted when the shadow run shows the variant's arithmetic
        // diverging beyond budget anywhere, or catastrophically cancelling.
        // The scalar metric samples what the model records; the shadow sees
        // every store.
        let mut failure = None;
        let mut detail = None;
        if status == Status::Pass {
            if let Some(rep) = &report {
                let budget = task.shadow_budget.unwrap_or(task.error_threshold);
                if rep.worst_rel > budget || rep.cancellations > 0 {
                    status = Status::FailAccuracy;
                    failure = Some(FailureKind::ShadowBudget);
                    detail = Some(shadow_demotion_detail(rep, budget));
                    if let Some(s) = &mut shadow {
                        s.demoted = true;
                    }
                    trial_counters.bump("shadow_demotions", 1);
                }
            }
        }

        let per_proc = collect_proc_samples(&run.timers, &fingerprints);
        VariantRecord {
            outcome: Outcome {
                status,
                speedup: sp,
                error,
            },
            per_proc,
            wrappers,
            detail,
            total_cycles: Some(run.total_cycles),
            hotspot_cycles: Some(
                run.timers
                    .scoped_cycles(hotspot_set.iter().map(String::as_str)),
            ),
            failure,
            shadow,
            ..base
        }
    }

    /// The faithful pipeline: clone + rewrite the AST, unparse → reparse →
    /// reanalyze ([`make_variant`]), then lower and run from scratch.
    fn run_faithful(
        &self,
        map: &PrecisionMap,
        fault: Option<prose_faults::InjectedFault>,
        attempt: u32,
        clock: &mut StageClock,
        base: &VariantRecord,
    ) -> PathResult {
        let task = self.task;
        let variant = match clock.time("transform", || {
            make_variant(&task.program, &task.index, map)
        }) {
            Ok(v) => v,
            Err(e) => {
                return Err(Box::new(VariantRecord {
                    detail: Some(format!("transform: {e}")),
                    failure: Some(FailureKind::Transform),
                    ..base.clone()
                }))
            }
        };

        let run_cfg = RunConfig {
            cost: task.cost.clone(),
            budget: Some(self.run_budget(attempt)),
            max_events: task.max_events,
            wrapper_names: variant.wrappers.iter().cloned().collect(),
            fault,
            shadow: task.shadow,
            deadline: self.run_deadline(attempt),
        };
        let t_run = Instant::now();
        let (res, report) = run_program_shadow(&variant.program, &variant.index, &run_cfg);
        let run = match res {
            Ok(o) => o,
            Err(e) => {
                // Aborted runs (timeouts especially) still did real work
                // before failing; charge it to the exec stage. The shadow
                // report survives the abort — that is where NaN/Inf
                // provenance lives.
                clock.add_ns("exec", t_run.elapsed().as_nanos() as u64);
                let status = match e {
                    RunError::Timeout { .. } | RunError::Deadline { .. } => Status::Timeout,
                    _ => Status::RuntimeError,
                };
                return Err(Box::new(VariantRecord {
                    outcome: Outcome {
                        status,
                        speedup: 0.0,
                        error: f64::INFINITY,
                    },
                    wrappers: variant.wrappers,
                    detail: Some(e.to_string()),
                    failure: Some(FailureKind::from_run_error(&e)),
                    shadow: report.as_ref().map(shadow_trial),
                    ..base.clone()
                }));
            }
        };
        let hotspot_set = hotspot_scope_with_wrappers(
            &variant.program,
            &variant.index,
            &task.hotspot_procs,
            &variant.wrappers,
        );
        Ok((run, variant.wrappers, hotspot_set, report))
    }

    /// The template fast path: replay the wrapper rewrite on the variant
    /// template ("transform"), specialize the pre-lowered IR ("lower"), and
    /// run it — no text round trip, no full re-lower.
    #[allow(clippy::too_many_arguments)]
    fn run_fast(
        &self,
        vt: &VariantTemplate<'_>,
        it: &IrTemplate<'_>,
        map: &PrecisionMap,
        fault: Option<prose_faults::InjectedFault>,
        attempt: u32,
        clock: &mut StageClock,
        trial_counters: &mut Counters,
        base: &VariantRecord,
    ) -> PathResult {
        let task = self.task;
        let plan = clock.time("transform", || vt.instantiate(map));
        let wrappers = plan.wrapper_names();
        let hotspot_set = hotspot_scope_from_callers(&task.hotspot_procs, &plan.wrapper_callers());

        let VariantPlan {
            wrappers: planned,
            decisions,
        } = plan;
        let pairs: Vec<(String, Procedure)> =
            planned.into_iter().map(|w| (w.callee, w.ast)).collect();
        let ir = match clock.time("lower", || it.instantiate(map, &pairs, &decisions)) {
            Ok(ir) => ir,
            Err(e) => {
                return Err(Box::new(VariantRecord {
                    wrappers,
                    detail: Some(format!("transform: {e}")),
                    failure: Some(FailureKind::Transform),
                    ..base.clone()
                }))
            }
        };

        let run_cfg = RunConfig {
            cost: task.cost.clone(),
            budget: Some(self.run_budget(attempt)),
            max_events: task.max_events,
            // Wrapper classification is baked into the template-lowered IR;
            // run_ir ignores this field.
            wrapper_names: Default::default(),
            fault,
            shadow: task.shadow,
            deadline: self.run_deadline(attempt),
        };
        let t_run = Instant::now();
        let (res, report) = run_ir_shadow(&ir, &run_cfg);
        let run = match res {
            Ok(o) => o,
            Err(e) => {
                clock.add_ns("exec", t_run.elapsed().as_nanos() as u64);
                let status = match e {
                    RunError::Timeout { .. } | RunError::Deadline { .. } => Status::Timeout,
                    _ => Status::RuntimeError,
                };
                return Err(Box::new(VariantRecord {
                    outcome: Outcome {
                        status,
                        speedup: 0.0,
                        error: f64::INFINITY,
                    },
                    wrappers,
                    detail: Some(e.to_string()),
                    failure: Some(FailureKind::from_run_error(&e)),
                    shadow: report.as_ref().map(shadow_trial),
                    ..base.clone()
                }));
            }
        };

        if self.take_crosscheck() {
            trial_counters.bump("crosscheck_faithful", 1);
            if let Err(why) = self.crosscheck_faithful(map, &wrappers, &run, &run_cfg) {
                trial_counters.bump("crosscheck_desync", 1);
                if task.strict {
                    // --strict: a template fidelity bug must abort the
                    // experiment, not contaminate it. The typed payload
                    // rides through eval_one's containment untouched.
                    eprintln!(
                        "[prose] fast-path crosscheck divergence under --strict ({}): {why}",
                        FailureKind::TemplateDesync.name()
                    );
                    std::panic::panic_any(StrictDesync(why));
                }
                // Lenient (default): distrust the templates from here on,
                // count the desync, and re-answer this configuration via
                // the faithful pipeline. A fault is never in play here —
                // a planned fault would have aborted the fast run above.
                eprintln!(
                    "[prose] fast-path crosscheck divergence ({}): {why}; \
                     downgrading to the faithful pipeline",
                    FailureKind::TemplateDesync.name()
                );
                self.fast_disabled.store(true, Ordering::Relaxed);
                return self.run_faithful(map, None, attempt, clock, base);
            }
        }
        Ok((run, wrappers, hotspot_set, report))
    }

    /// Claim one faithful cross-check ticket, if any remain.
    fn take_crosscheck(&self) -> bool {
        self.crosschecks_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Re-run one configuration through the faithful unparse → reparse →
    /// re-lower pipeline and check the fast path produced bit-identical
    /// observables. A divergence is a fidelity bug in the templates, not a
    /// data point — the caller decides whether to abort (`--strict`) or
    /// downgrade to the faithful pipeline (lenient default).
    fn crosscheck_faithful(
        &self,
        map: &PrecisionMap,
        fast_wrappers: &[String],
        fast: &RunOutcome,
        run_cfg: &RunConfig,
    ) -> Result<(), String> {
        let task = self.task;
        let variant = make_variant(&task.program, &task.index, map)
            .map_err(|e| format!("faithful transform failed on a fast-path success: {e}"))?;
        if variant.wrappers != fast_wrappers {
            return Err("wrapper sets diverge between variant paths".into());
        }
        let cfg = RunConfig {
            wrapper_names: variant.wrappers.iter().cloned().collect(),
            // The crosscheck is a reference run; never fault-inject it,
            // and skip the shadow (the comparison is on primary outputs).
            fault: None,
            shadow: false,
            ..run_cfg.clone()
        };
        let faithful = run_program(&variant.program, &variant.index, &cfg)
            .map_err(|e| format!("faithful run failed on a fast-path success: {e}"))?;
        if faithful.records != fast.records {
            return Err("recorded outputs diverge between variant paths".into());
        }
        if faithful.total_cycles != fast.total_cycles {
            return Err("simulated cycles diverge between variant paths".into());
        }
        if faithful.ops != fast.ops {
            return Err("op counts diverge between variant paths".into());
        }
        Ok(())
    }
}

/// The hotspot procedure set for one variant: the target procedures plus
/// every synthesized wrapper whose call sites all lie inside the set
/// (computed to a fixed point, since wrappers may call through wrappers).
pub fn hotspot_scope_with_wrappers(
    program: &prose_fortran::Program,
    index: &prose_fortran::ProgramIndex,
    hotspot_procs: &[String],
    wrappers: &[String],
) -> Vec<String> {
    let mut set: Vec<String> = hotspot_procs.to_vec();
    if wrappers.is_empty() {
        return set;
    }
    let graph = FpFlowGraph::build(program, index);
    loop {
        let mut grew = false;
        for w in wrappers {
            if set.contains(w) {
                continue;
            }
            let callers: Vec<String> = graph
                .sites()
                .iter()
                .filter(|s| &s.callee == w)
                .map(|s| index.scope_info(s.caller).name.clone())
                .collect();
            if !callers.is_empty() && callers.iter().all(|c| set.contains(c)) {
                set.push(w.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}

/// Fast-path equivalent of [`hotspot_scope_with_wrappers`]: the caller sets
/// come from the variant plan's decision streams instead of a flow-graph
/// walk over the rewritten program. The main program body appears under
/// [`prose_transform::MAIN_BODY_KEY`], which is never a hotspot procedure,
/// so boundary wrappers stay outside the scope exactly as on the faithful
/// path.
pub fn hotspot_scope_from_callers(
    hotspot_procs: &[String],
    wrapper_callers: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let mut set: Vec<String> = hotspot_procs.to_vec();
    loop {
        let mut grew = false;
        for (w, callers) in wrapper_callers {
            if set.contains(w) {
                continue;
            }
            if !callers.is_empty() && callers.iter().all(|c| set.contains(c)) {
                set.push(w.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}

fn collect_proc_samples(timers: &Timers, fingerprints: &[(String, u64)]) -> Vec<ProcSample> {
    let fp: HashMap<&str, u64> = fingerprints.iter().map(|(p, f)| (p.as_str(), *f)).collect();
    fingerprints
        .iter()
        .filter_map(|(p, _)| {
            timers.get(p).map(|t| ProcSample {
                proc: p.clone(),
                cycles: t.cycles,
                calls: t.calls,
                fingerprint: fp[p.as_str()],
            })
        })
        .collect()
}

/// Rebuild a (reduced) variant record from a journaled trial. The outcome
/// and summary measurements survive the round trip; per-procedure samples
/// and wrapper names are not journaled and come back empty.
///
/// The pass/fail-accuracy verdict is **recomputed** from the journaled
/// error against the current task's threshold, so a journal written under
/// one threshold replays correctly under another (the measurements are
/// config properties; the verdict is a task property). Timeout and error
/// statuses are kept as recorded.
fn variant_from_trial(tr: &TrialRecord, error_threshold: f64) -> Option<VariantRecord> {
    let failure = tr.failure_kind.as_deref().and_then(FailureKind::from_name);
    let status = match status_from_name(&tr.status)? {
        // A shadow-guardrail demotion is sticky: the journaled scalar error
        // may be under the threshold (that is the whole point of the
        // gate), so the threshold recomputation below must not resurrect
        // the trial to Pass.
        _ if failure == Some(FailureKind::ShadowBudget) => Status::FailAccuracy,
        Status::Pass | Status::FailAccuracy => {
            if tr.error <= error_threshold {
                Status::Pass
            } else {
                Status::FailAccuracy
            }
        }
        other => other,
    };
    Some(VariantRecord {
        config: tr.config.clone(),
        outcome: Outcome {
            status,
            speedup: tr.speedup,
            error: tr.error,
        },
        fraction_single: tr.fraction_single,
        per_proc: Vec::new(),
        wrappers: Vec::new(),
        detail: Some("replayed from trial journal".into()),
        total_cycles: tr.total_cycles,
        hotspot_cycles: tr.hotspot_cycles,
        failure,
        fault_kind: tr.fault_kind.clone(),
        fault_seed: tr.fault_seed,
        shadow: tr.shadow.clone(),
    })
}

impl<'a> prose_search::Evaluator for DynamicEvaluator<'a> {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        let rec = self.eval_one(lowered);
        let outcome = rec.outcome;
        lock(&self.records).push(rec);
        outcome
    }

    fn evaluate_batch(&mut self, batch: &[Config]) -> Vec<Outcome> {
        // One logical "node" per variant: the scoped-thread worker pool
        // substitutes the paper's PBS fan-out. Results come back (and are
        // journaled) in batch index order regardless of worker count.
        let recs = self.eval_batch_records(batch);
        let outcomes = recs.iter().map(|r| r.outcome).collect();
        lock(&self.records).extend(recs);
        outcomes
    }

    fn atom_count(&self) -> usize {
        self.task.atoms.len()
    }
}
