//! Integration tests for evaluator memoization and the trial journal:
//! the PR's acceptance criterion is that re-running a tune against an
//! existing journal performs **zero** duplicate interpreter evaluations.

use prose_core::tuner::{tune, ModelSpec, PerfScope};
use prose_core::{metrics::CorrectnessMetric, DynamicEvaluator};
use prose_trace::Journal;
use std::path::PathBuf;

/// A funarc-style model, shrunk so delta debugging finishes in
/// milliseconds: 6 search atoms, 60 integration steps.
const SRC: &str = r#"
module arc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 4
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine arc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    h = 3.141592653589793d0 / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine arc
end module arc_mod

program main
  use arc_mod, only: arc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call arc(result, 60)
  call prose_record('result', result)
end program main
"#;

fn spec() -> ModelSpec {
    ModelSpec {
        name: "arc_test".into(),
        source: SRC.into(),
        hotspot_module: "arc_mod".into(),
        target_procs: vec!["arc".into(), "fun".into()],
        metric: CorrectnessMetric::ScalarSeriesL2 {
            key: "result".into(),
        },
        error_threshold: 4.0e-4,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec!["result".into()],
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("prose_memo_{tag}_{}.jsonl", std::process::id()))
}

/// Same config twice ⇒ identical `Outcome`, and the interpreter does not
/// run a second time (visible as a cache hit and as unchanged interpreter
/// op counters).
#[test]
fn repeated_config_is_served_from_cache() {
    let model = spec().load().unwrap();
    let task = model.task(PerfScope::Hotspot, 7).unwrap();
    let eval = DynamicEvaluator::new(&task).unwrap();

    let cfg = vec![true; task.atoms.len()];
    let first = eval.eval_one(&cfg);
    let ops_after_first = eval.metrics().get("interp_fp64_ops");
    assert!(
        ops_after_first > 0,
        "uncached run must execute the interpreter"
    );

    let second = eval.eval_one(&cfg);
    assert_eq!(first.outcome, second.outcome);
    assert_eq!(first.config, second.config);

    let m = eval.metrics();
    assert_eq!(m.get("cache_misses"), 1);
    assert_eq!(m.get("cache_hits"), 1);
    assert_eq!(
        m.get("interp_fp64_ops"),
        ops_after_first,
        "cache hit must not re-run the interpreter"
    );
}

/// Re-running the same tune against an existing journal answers every
/// request from the preloaded cache: zero interpreter evaluations, the
/// same search result, and a journal whose new records are all
/// `cached: true`.
#[test]
fn rerun_against_journal_performs_zero_interpreter_evaluations() {
    let path = temp_journal("rerun");
    let _ = std::fs::remove_file(&path);

    let model = spec().load().unwrap();
    let mut task = model.task(PerfScope::Hotspot, 7).unwrap();
    task.journal = Some(path.clone());

    let run1 = tune(&task).unwrap();
    let miss1 = run1.metrics.get("cache_misses");
    assert!(miss1 > 0, "first run must evaluate variants");
    assert_eq!(run1.metrics.get("cache_preloaded"), 0);
    let records1 = Journal::load(&path).unwrap();
    assert_eq!(
        records1.len() as u64,
        miss1 + run1.metrics.get("cache_hits")
    );

    let run2 = tune(&task).unwrap();
    assert_eq!(
        run2.metrics.get("cache_misses"),
        0,
        "second run must not run the interpreter at all"
    );
    assert_eq!(run2.metrics.get("cache_preloaded"), miss1);
    assert_eq!(run2.search.final_config, run1.search.final_config);
    assert_eq!(
        run2.search.best.as_ref().map(|b| b.outcome),
        run1.search.best.as_ref().map(|b| b.outcome)
    );

    // Every record the second run appended is a cache hit, and there is
    // one per request — so cached-record count == repeated configs.
    let records2 = Journal::load(&path).unwrap();
    let new = &records2[records1.len()..];
    assert!(!new.is_empty());
    assert!(new.iter().all(|r| r.cached));
    assert_eq!(new.len() as u64, run2.metrics.get("cache_hits"));

    let _ = std::fs::remove_file(&path);
}

/// The journal stores measurements (error, speedup); the pass/fail verdict
/// is a task property. Replaying a journal under a stricter threshold must
/// reclassify: a threshold nothing can meet yields no accepted variant,
/// still without running the interpreter.
#[test]
fn replayed_verdicts_follow_the_current_threshold() {
    let path = temp_journal("threshold");
    let _ = std::fs::remove_file(&path);

    let model = spec().load().unwrap();
    let mut task = model.task(PerfScope::Hotspot, 7).unwrap();
    task.journal = Some(path.clone());
    let run1 = tune(&task).unwrap();
    assert!(run1.search.best.is_some());

    // Changed verdicts steer delta debugging down a different path, so new
    // configs may legitimately be evaluated — but journaled ones replay.
    task.error_threshold = 1.0e-30;
    let run2 = tune(&task).unwrap();
    assert!(run2.metrics.get("cache_hits") > 0);
    assert!(
        run2.search.best.is_none(),
        "no journaled variant can pass a 1e-30 threshold"
    );

    let _ = std::fs::remove_file(&path);
}
