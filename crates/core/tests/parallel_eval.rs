//! Parallel-evaluation invariants: the worker pool must be a pure
//! wall-clock optimization. These tests pin the two guarantees the
//! `parallel-smoke` CI job relies on — (1) a grouped delta-debugging
//! tune produces byte-identical journals at any worker count once the
//! scheduling-dependent fields are normalized, and (2) the shared memo
//! and journal writer survive concurrent hammering without lost,
//! duplicated, or torn records.

use prose_core::tuner::{tune, ModelSpec, PerfScope, SearchGranularity, TuningTask};
use prose_core::{metrics::CorrectnessMetric, DynamicEvaluator};
use prose_trace::{Journal, TrialRecord};
use std::path::PathBuf;

/// A funarc-style model, shrunk so delta debugging finishes in
/// milliseconds: 6 search atoms, 60 integration steps.
const SRC: &str = r#"
module arc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 4
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine arc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    h = 3.141592653589793d0 / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine arc
end module arc_mod

program main
  use arc_mod, only: arc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call arc(result, 60)
  call prose_record('result', result)
end program main
"#;

fn spec() -> ModelSpec {
    ModelSpec {
        name: "arc_parallel".into(),
        source: SRC.into(),
        hotspot_module: "arc_mod".into(),
        target_procs: vec!["arc".into(), "fun".into()],
        metric: CorrectnessMetric::ScalarSeriesL2 {
            key: "result".into(),
        },
        error_threshold: 4.0e-4,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec!["result".into()],
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("prose_parallel_{tag}_{}.jsonl", std::process::id()))
}

/// Strip the fields that legitimately vary with scheduling: wall clock,
/// per-stage timings, the pool-width stamp, and worker provenance.
/// Everything else — seq, config, outcome, cache status, batch ordinal,
/// fault seed — must be byte-identical across worker counts.
fn normalized(mut r: TrialRecord) -> TrialRecord {
    r.wall_ms = 0.0;
    r.stages.clear();
    r.workers = 0;
    r.worker = None;
    // The CRC covers the wall-clock fields cleared above, so it differs
    // between equivalent runs by construction.
    r.crc = None;
    r
}

fn grouped_task(workers: usize, journal: PathBuf) -> TuningTask {
    let model = spec().load().unwrap();
    let mut task = model.task(PerfScope::Hotspot, 7).unwrap();
    task.granularity = SearchGranularity::Grouped;
    task.journal = Some(journal);
    task.workers = workers;
    // Exercise the full pipeline the CI smoke gate runs: deterministic
    // fault injection plus the retry band's escalating re-measurements.
    task.faults = Some(prose_faults::FaultConfig {
        nan: 0.05,
        timeout: 0.05,
        abort: 0.0,
        jitter: 0.02,
        seed: 11,
        kill_after: None,
        hang: 0.0,
        corrupt_record: 0.0,
    });
    task.retry_band = 0.05;
    task.retry_max_runs = 4;
    task
}

/// The differential gate: a grouped delta-debugging tune at 1 worker and
/// at 8 workers must produce the same final configuration, the same best
/// outcome, and journals whose records match exactly after normalizing
/// the scheduling-dependent fields.
#[test]
fn grouped_dd_serial_vs_eight_workers_journals_match() {
    let path1 = temp_journal("serial");
    let path8 = temp_journal("eight");
    let _ = std::fs::remove_file(&path1);
    let _ = std::fs::remove_file(&path8);

    let serial = tune(&grouped_task(1, path1.clone())).unwrap();
    let pooled = tune(&grouped_task(8, path8.clone())).unwrap();

    assert_eq!(serial.search.final_config, pooled.search.final_config);
    assert_eq!(
        serial.search.best.as_ref().map(|b| b.outcome),
        pooled.search.best.as_ref().map(|b| b.outcome)
    );
    assert_eq!(
        serial.search.trace.len(),
        pooled.search.trace.len(),
        "worker pool must not change how many trials the search makes"
    );
    assert_eq!(
        serial.metrics.get("cache_misses"),
        pooled.metrics.get("cache_misses"),
        "worker pool must not change how many interpreter runs happen"
    );

    let rec1 = Journal::load(&path1).unwrap();
    let rec8 = Journal::load(&path8).unwrap();
    assert_eq!(rec1.len(), rec8.len());
    for (a, b) in rec1.into_iter().zip(rec8) {
        // Sanity that the width really was stamped before normalization.
        assert_eq!(a.workers, 1);
        assert_eq!(b.workers, 8);
        assert_eq!(normalized(a), normalized(b));
    }

    let _ = std::fs::remove_file(&path1);
    let _ = std::fs::remove_file(&path8);
}

/// Concurrency stress: many threads issue overlapping `eval_one` requests
/// against one evaluator. Single-flight election must keep the
/// interpreter-run count at exactly one per unique configuration, every
/// thread must observe the same outcome per configuration, and the
/// journal must hold one intact record per request with no torn lines.
#[test]
fn concurrent_memo_and_journal_survive_hammering() {
    const THREADS: usize = 8;
    let path = temp_journal("stress");
    let _ = std::fs::remove_file(&path);

    let model = spec().load().unwrap();
    let mut task = model.task(PerfScope::Hotspot, 7).unwrap();
    task.journal = Some(path.clone());
    let eval = DynamicEvaluator::new(&task).unwrap();

    // Every subset of the first 4 atoms, padded to full width: 16 unique
    // configurations, each requested once per thread in a per-thread
    // order, so threads collide on the memo constantly.
    let n = task.atoms.len();
    let configs: Vec<Vec<bool>> = (0u32..16)
        .map(|bits| (0..n).map(|i| i < 4 && (bits >> i) & 1 == 1).collect())
        .collect();

    let per_thread: Vec<Vec<prose_core::evaluator::VariantRecord>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let eval = &eval;
                let configs = &configs;
                scope.spawn(move || {
                    (0..configs.len())
                        .map(|i| eval.eval_one(&configs[(i + t * 5) % configs.len()]))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Memo consistency: all threads agree on every configuration's outcome.
    let reference: std::collections::HashMap<Vec<bool>, _> = per_thread[0]
        .iter()
        .map(|r| (r.config.clone(), r.outcome))
        .collect();
    assert_eq!(reference.len(), configs.len());
    for thread_records in &per_thread {
        for r in thread_records {
            assert_eq!(reference[&r.config], r.outcome, "memo served torn outcome");
        }
    }

    // Single-flight: exactly one interpreter run per unique configuration,
    // no lost and no duplicated memo entries.
    let m = eval.metrics();
    assert_eq!(m.get("cache_misses"), configs.len() as u64);
    // Every request resolves as exactly one hit or one miss; the
    // single-flight wait counter is scheduling-dependent extra telemetry.
    assert_eq!(
        m.get("cache_hits") + m.get("cache_misses"),
        (THREADS * configs.len()) as u64
    );

    drop(eval);
    let report = prose_trace::Journal::load_report(&path).unwrap();
    assert_eq!(report.torn_tail, 0, "no torn journal lines");
    assert_eq!(report.records.len(), THREADS * configs.len());
    // Exactly one uncached record per unique configuration.
    let mut uncached = std::collections::HashMap::new();
    for r in &report.records {
        if !r.cached {
            *uncached.entry(r.config.clone()).or_insert(0u32) += 1;
        }
    }
    assert_eq!(uncached.len(), configs.len());
    assert!(uncached.values().all(|&c| c == 1), "duplicate evaluation");
    // Sequence numbers are a clean 0..N run: the single writer never
    // skipped or reused one under contention.
    let mut seqs: Vec<u64> = report.records.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (0..(THREADS * configs.len()) as u64).collect::<Vec<_>>()
    );

    let _ = std::fs::remove_file(&path);
}
