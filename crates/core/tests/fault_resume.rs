//! Integration tests for the fault-injection harness, structured failure
//! classification, and crash-safe resume:
//!
//! * with injection enabled, no search entry point panics, and every
//!   injected fault lands in the journal with its kind and seed;
//! * `Status::Timeout` / abort classifications round-trip through the
//!   journal into the preloaded memo;
//! * a search killed mid-run (via the harness's `kill-after` switch)
//!   resumes from its journal to the same 1-minimal result with zero
//!   duplicate interpreter evaluations;
//! * a torn final journal line is tolerated and counted.

use prose_core::ensemble::{validate_ensemble, EnsembleParams};
use prose_core::tuner::{tune, tune_brute_force, ModelSpec, PerfScope, TuningTask};
use prose_core::{metrics::CorrectnessMetric, DynamicEvaluator, FailureKind};
use prose_faults::{FaultConfig, InjectedKill};
use prose_search::Status;
use prose_trace::Journal;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// The same funarc-style mini model as `memo_journal.rs`: 6 search atoms,
/// small enough that delta debugging finishes in milliseconds.
const SRC: &str = r#"
module arc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 4
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine arc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    h = 3.141592653589793d0 / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine arc
end module arc_mod

program main
  use arc_mod, only: arc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call arc(result, 60)
  call prose_record('result', result)
end program main
"#;

fn spec() -> ModelSpec {
    ModelSpec {
        name: "arc_faults".into(),
        source: SRC.into(),
        hotspot_module: "arc_mod".into(),
        target_procs: vec!["arc".into(), "fun".into()],
        metric: CorrectnessMetric::ScalarSeriesL2 {
            key: "result".into(),
        },
        error_threshold: 4.0e-4,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec!["result".into()],
    }
}

fn task_with(tag: &str) -> (TuningTask, PathBuf) {
    let path =
        std::env::temp_dir().join(format!("prose_faults_{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let model = spec().load().unwrap();
    let mut task = model.task(PerfScope::Hotspot, 7).unwrap();
    task.journal = Some(path.clone());
    (task, path)
}

/// Expected failure classification for an injected fault kind.
fn expected_failure(fault_kind: &str) -> Option<&'static str> {
    match fault_kind {
        "nan" => Some(FailureKind::FpException.name()),
        "timeout" => Some(FailureKind::Timeout.name()),
        "abort" => Some(FailureKind::Panic.name()),
        _ => None,
    }
}

/// With a hostile fault mix, both search entry points finish without a
/// panic escaping, and every uncached journal record carries its fault
/// kind, derived seed, and the matching failure classification.
#[test]
fn injected_faults_are_contained_classified_and_journaled() {
    let (mut task, path) = task_with("mix");
    task.faults = Some(FaultConfig::parse("nan=0.25,timeout=0.25,abort=0.25,seed=11").unwrap());

    let outcome = tune(&task).expect("the search must survive injected faults");
    assert!(!outcome.search.trace.is_empty());

    let records = Journal::load(&path).unwrap();
    let injected: Vec<_> = records
        .iter()
        .filter(|r| !r.cached && r.fault_kind.is_some())
        .collect();
    assert!(
        !injected.is_empty(),
        "75% injection probability over {} trials must fire at least once",
        records.len()
    );
    for r in &injected {
        let kind = r.fault_kind.as_deref().unwrap();
        assert_eq!(
            r.failure_kind.as_deref(),
            expected_failure(kind),
            "fault `{kind}` misclassified in seq {}",
            r.seq
        );
        assert!(
            r.fault_seed.is_some(),
            "injected fault must journal its seed (seq {})",
            r.seq
        );
    }
    assert!(
        outcome.metrics.get("faults_injected") >= injected.len() as u64,
        "injection counter must cover journaled faults"
    );

    // Brute force walks all 64 configs through the same containment.
    let (mut task_b, path_b) = task_with("mix_brute");
    task_b.faults = task.faults.clone();
    tune_brute_force(&task_b).expect("brute force must survive injected faults");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&path_b);
}

/// A certain-to-fire spurious timeout is classified `Status::Timeout` /
/// `FailureKind::Timeout`, and the classification survives the round trip
/// journal → preloaded memo of a fresh evaluator (with injection off).
#[test]
fn timeout_classification_round_trips_through_journal_and_memo() {
    let (mut task, path) = task_with("timeout_rt");
    task.faults = Some(FaultConfig::parse("timeout=1.0,seed=3").unwrap());

    let cfg = vec![true; task.atoms.len()];
    let eval = DynamicEvaluator::new(&task).unwrap();
    let rec = eval.eval_one(&cfg);
    assert_eq!(rec.outcome.status, Status::Timeout);
    assert_eq!(rec.failure, Some(FailureKind::Timeout));
    assert_eq!(rec.fault_kind.as_deref(), Some("timeout"));
    assert!(rec.fault_seed.is_some());
    drop(eval);

    task.faults = None;
    let eval2 = DynamicEvaluator::new(&task).unwrap();
    let replayed = eval2.eval_one(&cfg);
    assert_eq!(eval2.metrics().get("cache_preloaded"), 1);
    assert_eq!(eval2.metrics().get("cache_hits"), 1);
    assert_eq!(replayed.outcome.status, Status::Timeout);
    assert_eq!(replayed.failure, Some(FailureKind::Timeout));
    assert_eq!(replayed.fault_kind.as_deref(), Some("timeout"));
    assert_eq!(replayed.fault_seed, rec.fault_seed);

    let _ = std::fs::remove_file(&path);
}

/// A certain-to-fire mid-run abort panic is contained by the evaluator,
/// classified `FailureKind::Panic`, and round-trips like any other trial.
#[test]
fn abort_classification_round_trips_through_journal_and_memo() {
    let (mut task, path) = task_with("abort_rt");
    task.faults = Some(FaultConfig::parse("abort=1.0,seed=5").unwrap());

    let cfg = vec![true; task.atoms.len()];
    let eval = DynamicEvaluator::new(&task).unwrap();
    let rec = eval.eval_one(&cfg);
    assert_eq!(rec.outcome.status, Status::RuntimeError);
    assert_eq!(rec.failure, Some(FailureKind::Panic));
    assert_eq!(rec.fault_kind.as_deref(), Some("abort"));
    assert!(
        rec.detail
            .as_deref()
            .unwrap_or("")
            .contains("injected abort"),
        "detail should identify the abort: {:?}",
        rec.detail
    );
    assert_eq!(eval.metrics().get("failures_contained_panic"), 1);
    drop(eval);

    task.faults = None;
    let eval2 = DynamicEvaluator::new(&task).unwrap();
    let replayed = eval2.eval_one(&cfg);
    assert_eq!(replayed.outcome.status, Status::RuntimeError);
    assert_eq!(replayed.failure, Some(FailureKind::Panic));
    assert_eq!(replayed.fault_kind.as_deref(), Some("abort"));

    let _ = std::fs::remove_file(&path);
}

/// The headline crash-safety property: kill the tuning process mid-search
/// (the harness raises an uncontained panic after k journal appends), then
/// resume against the same journal. The resumed search must reach the same
/// 1-minimal result as an uninterrupted reference run, re-running the
/// interpreter only for configurations the killed run never measured —
/// zero duplicate evaluations.
#[test]
fn kill_mid_run_resume_reaches_same_result_with_zero_duplicate_evaluations() {
    // A threshold this tight forces delta debugging to isolate several
    // critical atoms — ~23 unique evaluations, so a kill after 4 appends
    // lands mid-search.
    const TIGHT: f64 = 1.0e-8;

    // Uninterrupted reference run (no journal, no faults).
    let model = spec().load().unwrap();
    let mut reference_task = model.task(PerfScope::Hotspot, 7).unwrap();
    reference_task.error_threshold = TIGHT;
    let reference = tune(&reference_task).unwrap();
    let reference_misses = reference.metrics.get("cache_misses");
    assert!(reference_misses > 4, "model too small to kill mid-run");

    // Killed run: the journal is an append-only WAL flushed per record, so
    // everything appended before the kill survives.
    let (mut task, path) = task_with("kill");
    task.error_threshold = TIGHT;
    task.faults = Some(FaultConfig {
        kill_after: Some(4),
        ..FaultConfig::default()
    });
    let killed = catch_unwind(AssertUnwindSafe(|| tune(&task)));
    let payload = killed.expect_err("kill-after must tear down the search");
    let kill = payload
        .downcast_ref::<InjectedKill>()
        .expect("the kill panic carries its typed payload");
    assert!(kill.appended >= 4);

    let survivors = Journal::load(&path).unwrap();
    assert!(
        survivors.len() >= 4,
        "per-record WAL flushing must persist pre-kill appends"
    );
    let unique_configs: std::collections::HashSet<_> =
        survivors.iter().map(|r| r.config.clone()).collect();

    // Resume: same task, faults off. The deterministic search replays the
    // journaled prefix from the preloaded memo and continues from there.
    task.faults = None;
    let resumed = tune(&task).unwrap();
    assert_eq!(
        resumed.metrics.get("cache_preloaded"),
        unique_configs.len() as u64
    );
    assert_eq!(
        resumed.metrics.get("cache_misses") + unique_configs.len() as u64,
        reference_misses,
        "resume must evaluate exactly the configurations the killed run never reached"
    );
    assert_eq!(resumed.search.final_config, reference.search.final_config);
    assert_eq!(resumed.search.one_minimal, reference.search.one_minimal);
    assert_eq!(
        resumed.search.best.as_ref().map(|b| b.outcome),
        reference.search.best.as_ref().map(|b| b.outcome)
    );

    let _ = std::fs::remove_file(&path);
}

/// A torn final line — the fingerprint of a crash mid-write under a
/// buffered flush policy — is dropped with a warning counter; the rest of
/// the journal still preloads.
#[test]
fn torn_journal_tail_is_tolerated_and_counted() {
    let (mut task, path) = task_with("torn");
    let run1 = tune(&task).unwrap();
    let miss1 = run1.metrics.get("cache_misses");

    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    write!(f, "{{\"seq\":9999,\"config\":[tr").unwrap();
    drop(f);

    task.faults = None;
    let run2 = tune(&task).unwrap();
    assert_eq!(run2.metrics.get("journal_torn_lines"), 1);
    assert_eq!(run2.metrics.get("cache_preloaded"), miss1);
    assert_eq!(run2.metrics.get("cache_misses"), 0);
    assert_eq!(run2.search.final_config, run1.search.final_config);

    let _ = std::fs::remove_file(&path);
}

/// Shadow execution composes with fault injection: a NaN injected by the
/// harness is attributed to the injection in the shadow provenance
/// (`injected = true`), never misreported as genuine catastrophic
/// cancellation — and classified `FpException` as before.
#[test]
fn injected_nan_is_attributed_to_the_fault_not_to_cancellation() {
    let (mut task, path) = task_with("nan_shadow");
    task.shadow = true;
    task.faults = Some(FaultConfig::parse("nan=1.0,seed=9").unwrap());

    let cfg = vec![true; task.atoms.len()];
    let eval = DynamicEvaluator::new(&task).unwrap();
    let rec = eval.eval_one(&cfg);
    assert_eq!(rec.outcome.status, Status::RuntimeError);
    assert_eq!(rec.failure, Some(FailureKind::FpException));
    assert_eq!(rec.fault_kind.as_deref(), Some("nan"));
    let sh = rec
        .shadow
        .as_ref()
        .expect("shadow diagnostics survive aborted runs");
    assert!(
        sh.nonfinite_injected,
        "the NaN's provenance must say it was injected: {sh:?}"
    );
    assert!(
        sh.nonfinite_origin.is_some(),
        "provenance must name the op and site"
    );
    assert_eq!(
        sh.cancellations, 0,
        "an injected NaN must not be blamed on cancellation"
    );
    assert!(
        !sh.demoted,
        "the guardrail gate only demotes passing trials"
    );
    drop(eval);

    // The attribution round-trips through the journal into a fresh memo.
    task.faults = None;
    let eval2 = DynamicEvaluator::new(&task).unwrap();
    let replayed = eval2.eval_one(&cfg);
    assert_eq!(eval2.metrics().get("cache_hits"), 1);
    let sh2 = replayed
        .shadow
        .expect("shadow section replays from journal");
    assert!(sh2.nonfinite_injected);
    assert_eq!(sh2.cancellations, 0);

    let _ = std::fs::remove_file(&path);
}

/// Held-out ensemble validation under resume: member measurements are
/// stamped with their member id in the journal and memo key, so a repeated
/// validation against the same journal re-runs nothing, members never
/// share cache entries, and growing the ensemble only evaluates the new
/// member.
#[test]
fn ensemble_members_resume_from_journal_without_rerunning() {
    let (mut task, path) = task_with("ensemble_resume");
    task.error_threshold = 1.0e-6;
    let outcome = tune(&task).unwrap();
    let baseline_len = Journal::load(&path).unwrap().len();

    let params = EnsembleParams {
        members: 3,
        seed: 99,
        amplitude: 1e-3,
        max_candidates: 2,
    };
    let report1 = validate_ensemble(&task, &outcome, &params).unwrap();
    let after_first = Journal::load(&path).unwrap();
    assert!(after_first.len() > baseline_len);
    for m in 1..=3u32 {
        let member_recs: Vec<_> = after_first.iter().filter(|r| r.member == Some(m)).collect();
        assert!(
            !member_recs.is_empty(),
            "member {m} left no journal records"
        );
        assert!(
            member_recs.iter().all(|r| !r.cached),
            "member {m} must evaluate fresh — identical configs from other \
             members or the tuning run must not satisfy it"
        );
    }
    // Tuning-input records stay unstamped.
    assert!(after_first[..baseline_len]
        .iter()
        .all(|r| r.member.is_none()));

    // Resume: the same validation again — zero interpreter re-runs.
    let report2 = validate_ensemble(&task, &outcome, &params).unwrap();
    let after_second = Journal::load(&path).unwrap();
    let replayed = &after_second[after_first.len()..];
    assert!(!replayed.is_empty());
    assert!(
        replayed.iter().all(|r| r.cached),
        "a resumed ensemble must serve every completed member from the journal"
    );
    assert_eq!(report1.winner, report2.winner);
    for (a, b) in report1.candidates.iter().zip(&report2.candidates) {
        assert_eq!(a.validated, b.validated);
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.record.outcome, mb.record.outcome);
        }
    }

    // Growing the ensemble: only the new member touches the interpreter.
    let report3 = validate_ensemble(
        &task,
        &outcome,
        &EnsembleParams {
            members: 4,
            ..params
        },
    )
    .unwrap();
    let after_third = Journal::load(&path).unwrap();
    let fresh: Vec<_> = after_third[after_second.len()..]
        .iter()
        .filter(|r| !r.cached)
        .collect();
    assert!(!fresh.is_empty(), "member 4 must actually run");
    assert!(
        fresh.iter().all(|r| r.member == Some(4)),
        "members 1-3 must replay from the journal"
    );
    assert_eq!(report3.candidates.len(), report1.candidates.len());

    let _ = std::fs::remove_file(&path);
}

/// The noise-tolerant re-evaluation defense: with amplified jitter and a
/// retry band, borderline speedups are re-measured with escalating sample
/// counts (visible via the `speedup_reeval` counter), and the search still
/// completes.
#[test]
fn retry_escalation_engages_under_injected_jitter() {
    let (mut task, path) = task_with("jitter");
    task.n_runs = 3;
    task.noise_rsd = 0.02;
    task.faults = Some(FaultConfig::parse("jitter=0.3,seed=13").unwrap());
    task.retry_band = 0.5;
    task.retry_max_runs = 31;

    let outcome = tune(&task).expect("search must survive jitter");
    assert!(
        outcome.metrics.get("speedup_reeval") > 0,
        "a 50% band around the bar must trigger at least one re-measurement"
    );

    let _ = std::fs::remove_file(&path);
}
