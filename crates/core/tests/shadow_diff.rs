//! Differential test for shadow execution: running with the fp64 shadow
//! enabled must be observably **bit-identical** to running without it in
//! every primary output — recorded values, simulated cycles, op counts,
//! events, per-procedure timers — across random precision assignments, on
//! both the faithful pipeline (`run_program`) and the template fast path
//! (`run_ir`). The shadow is pure bookkeeping; if it ever perturbs a
//! primary value or charges a cycle, the guardrail would be changing the
//! very measurements it is guarding.

use proptest::prelude::*;
use prose_fortran::ast::FpPrecision;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::{analyze, parse_program};
use prose_interp::{run_ir, run_ir_shadow, run_program, run_program_shadow, IrTemplate, RunConfig};
use prose_transform::{make_variant, VariantPlan, VariantTemplate};

/// Scalar interprocedural flow with a recurrence (funarc-shaped), plus a
/// cancellation-prone difference so the shadow bookkeeping is genuinely
/// exercised (not just carried along at zero error).
const ARC: &str = r#"
module arc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 4
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine arc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2, eps
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    h = 3.141592653589793d0 / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    eps = 1.0d-8
    result = s1 + ((1.0d0 + eps) - 1.0d0)
  end subroutine arc
end module arc_mod

program main
  use arc_mod, only: arc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call arc(result, 40)
  call prose_record('result', result)
end program main
"#;

/// Array arguments, a module global in the callee, reductions, and
/// broadcast assignment — the array half of the shadow bookkeeping.
const FLOW: &str = r#"
module flow_mod
  real(kind=8) :: drag = 0.125d0
contains
  function edge_flux(q, v) result(f)
    real(kind=8) :: q, v, f
    f = q * v - drag * q * q
  end function edge_flux

  subroutine advance(u, w, n)
    real(kind=8), intent(inout) :: u(n)
    real(kind=8), intent(out) :: w(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n - 1
      w(i) = edge_flux(u(i), u(i + 1))
    end do
    do i = 1, n - 1
      u(i) = u(i) - 0.01d0 * w(i)
    end do
  end subroutine advance
end module flow_mod

program main
  use flow_mod, only: advance
  implicit none
  real(kind=8) :: u(32), w(32), acc
  integer :: step, i
  w = 0.0d0
  do i = 1, 32
    u(i) = 1.0d0 + 0.03125d0 * i
  end do
  do step = 1, 6
    call advance(u, w, 32)
  end do
  acc = sum(u) + maxval(w)
  call prose_record('acc', acc)
  call prose_record_array('u', u)
end program main
"#;

const MODELS: &[&str] = &[ARC, FLOW];

fn assert_outcomes_identical(
    on: &prose_interp::RunOutcome,
    off: &prose_interp::RunOutcome,
    path: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &on.records,
        &off.records,
        "{}: recorded outputs diverge",
        path
    );
    prop_assert_eq!(
        on.total_cycles,
        off.total_cycles,
        "{}: simulated cycles diverge",
        path
    );
    prop_assert_eq!(on.ops, off.ops, "{}: op counts diverge", path);
    prop_assert_eq!(on.events, off.events, "{}: event counts diverge", path);
    prop_assert_eq!(
        on.timers.len(),
        off.timers.len(),
        "{}: timer tables diverge",
        path
    );
    for (proc, t) in off.timers.iter() {
        prop_assert_eq!(
            on.timers.get(proc),
            Some(t),
            "{}: timers diverge for `{}`",
            path,
            proc
        );
    }
    Ok(())
}

fn shadow_differential(src: &str, bits: &[bool]) -> Result<(), TestCaseError> {
    let program = parse_program(src).expect("mini-model parses");
    let index = analyze(&program).expect("mini-model analyzes");
    let atoms = index.atoms();
    let mut map = PrecisionMap::declared(&index);
    for (i, a) in atoms.iter().enumerate() {
        if bits[i % bits.len()] {
            map.set(*a, FpPrecision::Single);
        }
    }

    // Faithful path: transformed source, shadow off vs shadow on.
    let variant = make_variant(&program, &index, &map).expect("faithful transform");
    let cfg_off = RunConfig {
        cost: Default::default(),
        budget: None,
        max_events: 50_000_000,
        wrapper_names: variant.wrappers.iter().cloned().collect(),
        fault: None,
        shadow: false,
        deadline: None,
    };
    let cfg_on = RunConfig {
        shadow: true,
        ..cfg_off.clone()
    };
    let off = run_program(&variant.program, &variant.index, &cfg_off);
    let (on, report) = run_program_shadow(&variant.program, &variant.index, &cfg_on);
    match (&off, &on) {
        (Ok(f), Ok(g)) => {
            assert_outcomes_identical(g, f, "faithful")?;
            prop_assert!(report.is_some(), "shadow on must produce a report");
        }
        (Err(ef), Err(eg)) => prop_assert_eq!(
            eg.to_string(),
            ef.to_string(),
            "faithful: run errors diverge"
        ),
        _ => {
            return Err(TestCaseError::fail(format!(
                "faithful: shadow changed the verdict: off {off:?} vs on {on:?}"
            )))
        }
    }

    // Fast path: specialized template IR, shadow off vs shadow on.
    let vt = VariantTemplate::new(&program, &index);
    let it =
        IrTemplate::new(&program, &index, cfg_off.cost.inline_max_stmts).expect("template lowers");
    let VariantPlan {
        wrappers,
        decisions,
    } = vt.instantiate(&map);
    let pairs: Vec<_> = wrappers.into_iter().map(|w| (w.callee, w.ast)).collect();
    let ir = it
        .instantiate(&map, &pairs, &decisions)
        .expect("template instantiates");
    let off = run_ir(&ir, &cfg_off);
    let (on, report) = run_ir_shadow(&ir, &cfg_on);
    match (&off, &on) {
        (Ok(f), Ok(g)) => {
            assert_outcomes_identical(g, f, "fast")?;
            prop_assert!(report.is_some(), "shadow on must produce a report");
        }
        (Err(ef), Err(eg)) => {
            prop_assert_eq!(eg.to_string(), ef.to_string(), "fast: run errors diverge")
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "fast: shadow changed the verdict: off {off:?} vs on {on:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn shadow_execution_never_perturbs_primary_results(
        model in 0usize..MODELS.len(),
        bits in proptest::collection::vec(any::<bool>(), 1..24),
    ) {
        shadow_differential(MODELS[model], &bits)?;
    }
}

/// The precision extremes, deterministically: all-double (shadow tracks an
/// identical computation) and all-single (maximum shadow divergence, so the
/// bookkeeping is busiest).
#[test]
fn precision_extremes_match_with_shadow() {
    for src in MODELS {
        shadow_differential(src, &[false]).unwrap();
        shadow_differential(src, &[true]).unwrap();
    }
}
