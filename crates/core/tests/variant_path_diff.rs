//! Differential test for the variant fast path: for random precision
//! assignments over mini-models, the template pipeline
//! (`VariantTemplate` → `IrTemplate` → `run_ir`) must be observably
//! **bit-identical** to the faithful pipeline (`make_variant` →
//! unparse → reparse → reanalyze → `run_program`): same wrapper set, same
//! recorded outputs, same simulated cycles, same op counts, same
//! per-procedure timers.

use proptest::prelude::*;
use prose_fortran::ast::FpPrecision;
use prose_fortran::precision::PrecisionMap;
use prose_fortran::{analyze, parse_program};
use prose_interp::{run_ir, run_program, IrTemplate, RunConfig};
use prose_transform::{make_variant, VariantPlan, VariantTemplate};

/// Scalar interprocedural flow through a function, with a recurrence
/// (funarc-shaped, shrunk).
const ARC: &str = r#"
module arc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 4
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine arc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    h = 3.141592653589793d0 / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine arc
end module arc_mod

program main
  use arc_mod, only: arc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call arc(result, 40)
  call prose_record('result', result)
end program main
"#;

/// Array arguments, a module global inside the callee, and a
/// function-in-a-loop call pattern — the shapes that demand wrappers and
/// exercise vectorization classification.
const FLOW: &str = r#"
module flow_mod
  real(kind=8) :: drag = 0.125d0
contains
  function edge_flux(q, v) result(f)
    real(kind=8) :: q, v, f
    f = q * v - drag * q * q
  end function edge_flux

  subroutine advance(u, w, n)
    real(kind=8), intent(inout) :: u(n)
    real(kind=8), intent(out) :: w(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n - 1
      w(i) = edge_flux(u(i), u(i + 1))
    end do
    do i = 1, n - 1
      u(i) = u(i) - 0.01d0 * w(i)
    end do
  end subroutine advance
end module flow_mod

program main
  use flow_mod, only: advance
  implicit none
  real(kind=8) :: u(32), w(32), acc
  integer :: step, i
  do i = 1, 32
    u(i) = 1.0d0 + 0.03125d0 * i
  end do
  do step = 1, 6
    call advance(u, w, 32)
  end do
  acc = 0.0d0
  do i = 1, 32
    acc = acc + u(i)
  end do
  call prose_record('acc', acc)
  call prose_record_array('u', u)
end program main
"#;

const MODELS: &[&str] = &[ARC, FLOW];

fn differential(src: &str, bits: &[bool]) -> Result<(), TestCaseError> {
    let program = parse_program(src).expect("mini-model parses");
    let index = analyze(&program).expect("mini-model analyzes");
    let atoms = index.atoms();
    let mut map = PrecisionMap::declared(&index);
    for (i, a) in atoms.iter().enumerate() {
        if bits[i % bits.len()] {
            map.set(*a, FpPrecision::Single);
        }
    }

    // Faithful: transformed source, text round trip, full re-lower.
    let variant = make_variant(&program, &index, &map).expect("faithful transform");
    let cfg = RunConfig {
        cost: Default::default(),
        budget: None,
        max_events: 50_000_000,
        wrapper_names: variant.wrappers.iter().cloned().collect(),
        fault: None,
        shadow: false,
        deadline: None,
    };
    let faithful = run_program(&variant.program, &variant.index, &cfg);

    // Fast: specialize templates built from the pristine baseline.
    let vt = VariantTemplate::new(&program, &index);
    let it = IrTemplate::new(&program, &index, cfg.cost.inline_max_stmts).expect("template lowers");
    let plan = vt.instantiate(&map);
    prop_assert_eq!(
        plan.wrapper_names(),
        variant.wrappers.clone(),
        "wrapper sets diverge"
    );
    let VariantPlan {
        wrappers,
        decisions,
    } = plan;
    let pairs: Vec<_> = wrappers.into_iter().map(|w| (w.callee, w.ast)).collect();
    let ir = it
        .instantiate(&map, &pairs, &decisions)
        .expect("template instantiates");
    let fast = run_ir(&ir, &cfg);

    match (faithful, fast) {
        (Ok(f), Ok(g)) => {
            prop_assert_eq!(&g.records, &f.records, "recorded outputs diverge");
            prop_assert_eq!(g.total_cycles, f.total_cycles, "simulated cycles diverge");
            prop_assert_eq!(g.ops, f.ops, "op counts diverge");
            prop_assert_eq!(g.events, f.events, "event counts diverge");
            prop_assert_eq!(g.timers.len(), f.timers.len(), "timer tables diverge");
            for (proc, t) in f.timers.iter() {
                let gt = g.timers.get(proc);
                prop_assert_eq!(gt, Some(t), "timers diverge for `{}`", proc);
            }
        }
        (Err(ef), Err(eg)) => {
            prop_assert_eq!(eg.to_string(), ef.to_string(), "run errors diverge");
        }
        (f, g) => {
            return Err(TestCaseError::fail(format!(
                "one path ran, the other failed: faithful {f:?} vs fast {g:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fast_path_is_bit_identical_to_faithful(
        model in 0usize..MODELS.len(),
        bits in proptest::collection::vec(any::<bool>(), 1..24),
    ) {
        differential(MODELS[model], &bits)?;
    }
}

/// The two precision extremes, deterministically (proptest may not sample
/// them): all-double must plan zero wrappers on both paths, all-single must
/// still bit-match.
#[test]
fn precision_extremes_match() {
    for src in MODELS {
        differential(src, &[false]).unwrap();
        differential(src, &[true]).unwrap();
    }
}
