//! Supervised-evaluation invariants: wall-clock deadlines, the
//! stuck-worker story, transient-failure retry, and self-healing journal
//! resume, end to end through `tune`.
//!
//! The load-bearing guarantees pinned here:
//!
//! 1. **An armed deadline that never fires is free** — modeled cycles,
//!    numerics, and journals are bit-identical to a deadline-off run, on
//!    both variant-generation paths (the `shadow_diff` discipline applied
//!    to the supervision layer).
//! 2. **Hangs cannot wedge the search** — a hang-faulted search at
//!    `--workers 4` completes, hung trials are journaled as
//!    failed-by-deadline, and the journal still matches the serial run's
//!    byte for byte after normalizing scheduling-dependent fields.
//! 3. **Transient failures retry deterministically** — each attempt is
//!    journaled with its `attempt` stamp, recovery is counted, exhaustion
//!    stands as an ordinary rejection, and resumes never re-attempt.
//! 4. **Journal corruption is survivable** — a resume over a corrupted
//!    journal quarantines the damage, re-evaluates only the lost trials,
//!    and leaves a strictly-loadable journal with no duplicated work.

use prose_core::evaluator::FailureKind;
use prose_core::metrics::CorrectnessMetric;
use prose_core::tuner::{tune, ModelSpec, PerfScope, SearchGranularity, TuningTask, VariantPath};
use prose_core::DynamicEvaluator;
use prose_faults::FaultConfig;
use prose_search::Status;
use prose_trace::{quarantine_path_for, Journal, TrialRecord};
use std::path::PathBuf;

/// The shrunk funarc model shared with `parallel_eval`: 7 search atoms,
/// 60 integration steps, so each healthy trial finishes in milliseconds.
const SRC: &str = r#"
module arc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 4
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine arc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    h = 3.141592653589793d0 / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine arc
end module arc_mod

program main
  use arc_mod, only: arc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call arc(result, 60)
  call prose_record('result', result)
end program main
"#;

fn spec() -> ModelSpec {
    ModelSpec {
        name: "arc_supervised".into(),
        source: SRC.into(),
        hotspot_module: "arc_mod".into(),
        target_procs: vec!["arc".into(), "fun".into()],
        metric: CorrectnessMetric::ScalarSeriesL2 {
            key: "result".into(),
        },
        // Tight enough that the all-single config fails accuracy, so delta
        // debugging genuinely bisects (~7 unique grouped configs, ~17 at
        // variable granularity) instead of accepting all-true immediately.
        error_threshold: 1.0e-7,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec!["result".into()],
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "prose_supervision_{tag}_{}.jsonl",
        std::process::id()
    ))
}

fn grouped_task(journal: Option<PathBuf>) -> TuningTask {
    let model = spec().load().unwrap();
    let mut task = model.task(PerfScope::Hotspot, 7).unwrap();
    task.granularity = SearchGranularity::Grouped;
    task.journal = journal;
    task
}

/// Strip the fields that legitimately vary with scheduling and wall
/// clock (same discipline as `parallel_eval`): the CRC goes too, since
/// it covers the cleared fields.
fn normalized(mut r: TrialRecord) -> TrialRecord {
    r.wall_ms = 0.0;
    r.stages.clear();
    r.workers = 0;
    r.worker = None;
    r.crc = None;
    r
}

fn assert_journals_match(a: &PathBuf, b: &PathBuf) {
    let ra = Journal::load(a).unwrap();
    let rb = Journal::load(b).unwrap();
    assert_eq!(ra.len(), rb.len(), "journal lengths diverge");
    for (x, y) in ra.into_iter().zip(rb) {
        assert_eq!(normalized(x), normalized(y));
    }
}

/// Guarantee 1: arming a generous deadline (and a retry budget that never
/// triggers, absent transient faults) changes nothing — same search, same
/// metrics, byte-identical journals — on both variant paths, including
/// under non-transient fault injection.
#[test]
fn armed_but_unfired_deadline_is_bit_identical_to_deadline_off() {
    for path in [VariantPath::Fast, VariantPath::Faithful] {
        let off_path = temp_journal(&format!("dl_off_{}", path.name()));
        let on_path = temp_journal(&format!("dl_on_{}", path.name()));
        let _ = std::fs::remove_file(&off_path);
        let _ = std::fs::remove_file(&on_path);

        let build = |journal: PathBuf, deadline_ms: Option<u64>| {
            let mut task = grouped_task(Some(journal));
            task.variant_path = path;
            // Non-transient faults (nan + jitter): exercised identically by
            // both runs, and retry never fires on them.
            task.faults = Some(FaultConfig {
                nan: 0.1,
                jitter: 0.05,
                seed: 23,
                ..FaultConfig::default()
            });
            task.deadline_ms = deadline_ms;
            task.retry_attempts = if deadline_ms.is_some() { 2 } else { 0 };
            task
        };

        // 10 minutes per variant: can never fire on millisecond trials.
        let off = tune(&build(off_path.clone(), None)).unwrap();
        let on = tune(&build(on_path.clone(), Some(600_000))).unwrap();

        assert_eq!(off.search.final_config, on.search.final_config);
        assert_eq!(
            off.search.best.as_ref().map(|b| b.outcome),
            on.search.best.as_ref().map(|b| b.outcome)
        );
        assert_eq!(off.search.trace.len(), on.search.trace.len());
        assert_eq!(
            off.metrics.get("cache_misses"),
            on.metrics.get("cache_misses"),
            "an unfired deadline must not change how many interpreter runs happen"
        );
        assert_eq!(on.metrics.get("deadline_kills"), 0);
        assert_eq!(on.metrics.get("retry_recovered"), 0);
        assert_journals_match(&off_path, &on_path);

        let _ = std::fs::remove_file(&off_path);
        let _ = std::fs::remove_file(&on_path);
    }
}

fn hang_task(workers: usize, journal: PathBuf) -> TuningTask {
    let mut task = grouped_task(Some(journal));
    // Variable granularity explores ~17 unique configs here — enough for
    // the 20% hang rate to fire several times.
    task.granularity = SearchGranularity::Variable;
    task.workers = workers;
    // Hung trials stall the event loop; only the deadline kills them. The
    // deadline is two orders of magnitude above a healthy trial's wall
    // time, so it can only ever fire on an injected hang.
    task.faults = Some(FaultConfig {
        hang: 0.2,
        seed: 31,
        ..FaultConfig::default()
    });
    task.deadline_ms = Some(400);
    task
}

/// Guarantee 2 (the issue's acceptance gate): a hang-faulted search at
/// `--workers 4` runs to completion, journals every hung trial as
/// failed-by-deadline, and still matches the serial journal byte for byte
/// — a hang stalls at a deterministic event count, so everything but wall
/// clock is reproducible.
#[test]
fn hang_faulted_search_completes_at_four_workers_with_deadline_kills() {
    let serial_path = temp_journal("hang_serial");
    let pooled_path = temp_journal("hang_pooled");
    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&pooled_path);

    let serial = tune(&hang_task(1, serial_path.clone())).unwrap();
    let pooled = tune(&hang_task(4, pooled_path.clone())).unwrap();

    // The searches completed and agree.
    assert_eq!(serial.search.final_config, pooled.search.final_config);
    assert_eq!(serial.search.trace.len(), pooled.search.trace.len());
    assert_eq!(
        serial.metrics.get("cache_misses"),
        pooled.metrics.get("cache_misses")
    );

    // Hangs actually happened, and every one was killed by the deadline.
    let kills = serial.metrics.get("deadline_kills");
    assert!(kills > 0, "seed 31 must inject at least one hang");
    assert_eq!(kills, pooled.metrics.get("deadline_kills"));
    let deadline_kind = FailureKind::Deadline.name();
    let records = Journal::load(&serial_path).unwrap();
    let hung: Vec<&TrialRecord> = records
        .iter()
        .filter(|r| !r.cached && r.failure_kind.as_deref() == Some(deadline_kind))
        .collect();
    assert_eq!(hung.len() as u64, kills);
    for r in &hung {
        assert_eq!(r.status, "timeout", "deadline kills report as timeouts");
        assert_eq!(r.fault_kind.as_deref(), Some("hang"));
        assert_eq!(r.error, f64::INFINITY);
    }

    // A hung trial dies with wall clock >= the deadline; healthy trials
    // finish far under it (the margin the fixture is sized for).
    for r in &hung {
        assert!(r.wall_ms >= 400.0, "hang died early: {} ms", r.wall_ms);
    }

    // Determinism survives the pathology: serial and 4-worker journals
    // match after normalizing scheduling-dependent fields.
    assert_journals_match(&serial_path, &pooled_path);

    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&pooled_path);
}

/// Guarantee 3a: injected timeouts are transient — with a retry budget,
/// trials that failed on attempt 0 re-draw their fault plan and mostly
/// recover; every attempt is journaled with a contiguous `attempt` stamp
/// and no (config, attempt) pair is ever evaluated twice.
#[test]
fn transient_timeouts_recover_under_retry_with_per_attempt_journals() {
    let path = temp_journal("retry");
    let _ = std::fs::remove_file(&path);

    let mut task = grouped_task(Some(path.clone()));
    task.granularity = SearchGranularity::Variable;
    task.faults = Some(FaultConfig {
        timeout: 0.4,
        seed: 5,
        ..FaultConfig::default()
    });
    task.retry_attempts = 3;
    let outcome = tune(&task).unwrap();

    assert!(
        outcome.metrics.get("retry_recovered") > 0,
        "at 40% transient rate and 3 retries, some trial must recover"
    );

    let records = Journal::load(&path).unwrap();
    let retried: Vec<&TrialRecord> = records.iter().filter(|r| r.attempt > 0).collect();
    assert!(!retried.is_empty(), "retries must journal their attempts");

    // Per config: uncached attempt stamps are contiguous from 0, every
    // attempt before the last failed transiently, and no stamp repeats.
    use std::collections::BTreeMap;
    let mut by_config: BTreeMap<&[bool], Vec<&TrialRecord>> = BTreeMap::new();
    for r in records.iter().filter(|r| !r.cached) {
        by_config.entry(&r.config).or_default().push(r);
    }
    for (config, recs) in by_config {
        let mut attempts: Vec<u32> = recs.iter().map(|r| r.attempt).collect();
        attempts.sort_unstable();
        let expect: Vec<u32> = (0..recs.len() as u32).collect();
        assert_eq!(
            attempts, expect,
            "config {config:?}: attempts must be contiguous and unique"
        );
        let max = recs.len() - 1;
        for r in recs.iter().filter(|r| (r.attempt as usize) < max) {
            assert_eq!(
                r.failure_kind.as_deref(),
                Some("timeout"),
                "only transient failures may precede a retry"
            );
        }
    }

    // Recovered trials pass on their final attempt.
    assert!(records
        .iter()
        .any(|r| !r.cached && r.attempt > 0 && r.status == "pass"));

    let _ = std::fs::remove_file(&path);
}

/// Guarantee 3b: when every attempt draws the fault, the retry budget
/// exhausts and the final failure stands as an ordinary rejection — and a
/// resumed evaluator serves it from the journal without re-attempting.
#[test]
fn exhausted_retries_stand_as_rejection_and_resume_without_reattempt() {
    let path = temp_journal("exhaust");
    let q = quarantine_path_for(&path);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&q);

    let mut task = grouped_task(Some(path.clone()));
    let faults = FaultConfig {
        timeout: 0.9,
        seed: 17,
        ..FaultConfig::default()
    };
    task.retry_attempts = 2;

    // Pick a config whose plan draws the timeout on every attempt — the
    // permanently-faulted case retry must not paper over.
    let n = task.atoms.len();
    let doomed: Vec<bool> = (0u32..1 << n)
        .map(|bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect::<Vec<bool>>())
        .find(|c| (0..=2).all(|a| faults.plan_for_config_attempt(c, a).fault.is_some()))
        .expect("at 90% fault rate some config faults on all three attempts");
    task.faults = Some(faults);

    {
        let eval = DynamicEvaluator::new(&task).unwrap();
        let rec = eval.eval_one(&doomed);
        assert_ne!(rec.outcome.status, Status::Pass);
        assert_eq!(rec.failure, Some(FailureKind::Timeout));

        // One logical evaluation, three journaled attempts.
        let m = eval.metrics();
        assert_eq!(m.get("cache_misses"), 1);
        assert_eq!(m.get("retry_recovered"), 0);

        // A repeat request is a pure cache hit.
        let again = eval.eval_one(&doomed);
        assert_eq!(again.outcome, rec.outcome);
        assert_eq!(eval.metrics().get("cache_hits"), 1);
        assert_eq!(eval.metrics().get("cache_misses"), 1);
    }

    let records = Journal::load(&path).unwrap();
    let uncached: Vec<u32> = records
        .iter()
        .filter(|r| !r.cached)
        .map(|r| r.attempt)
        .collect();
    assert_eq!(uncached, vec![0, 1, 2], "all three attempts journaled");
    assert!(records
        .iter()
        .filter(|r| !r.cached)
        .all(|r| r.status == "timeout"));
    assert_eq!(records.iter().filter(|r| r.cached).count(), 1);

    // Resume: a fresh evaluator preloads the journaled rejection and
    // never re-attempts the doomed config.
    {
        let eval = DynamicEvaluator::new(&task).unwrap();
        let rec = eval.eval_one(&doomed);
        assert_ne!(rec.outcome.status, Status::Pass);
        assert_eq!(rec.failure, Some(FailureKind::Timeout));
        assert!(eval.metrics().get("cache_preloaded") > 0);
        assert_eq!(eval.metrics().get("cache_misses"), 0, "resume re-attempted");
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&q);
}

/// Guarantee 4 (the issue's resume gate): a search whose journal was
/// corrupted mid-file resumes through the self-healing load — damage is
/// quarantined, only the lost trials are re-evaluated, the healed journal
/// is strictly loadable, and no (config, attempt) pair was evaluated
/// twice across both runs.
#[test]
fn corrupted_journal_resumes_with_quarantine_and_no_duplicate_evaluation() {
    let path = temp_journal("corrupt");
    let q = quarantine_path_for(&path);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&q);

    // Run 1: corruption faults flip a byte in ~30% of journal lines.
    // Outcomes are untouched — only the journal bytes are damaged.
    let mut task = grouped_task(Some(path.clone()));
    task.granularity = SearchGranularity::Variable;
    task.faults = Some(FaultConfig {
        corrupt_record: 0.3,
        seed: 47,
        ..FaultConfig::default()
    });
    let first = tune(&task).unwrap();
    let injected = first.metrics.get("journal_corruptions_injected");
    assert!(injected > 0, "seed 47 must corrupt at least one record");
    assert!(
        Journal::load(&path).is_err(),
        "strict load must reject the corrupted journal"
    );

    // Run 2: same task minus the fault plan. The evaluator's preload runs
    // the self-healing load; the search must reconverge.
    task.faults = None;
    let second = tune(&task).unwrap();
    assert_eq!(first.search.final_config, second.search.final_config);
    assert_eq!(first.search.trace.len(), second.search.trace.len());

    // The damage was quarantined (a flip can at most split one line in
    // two, so quarantined >= injected is the tight lower bound)...
    let quarantined =
        second.metrics.get("journal_quarantined") + second.metrics.get("journal_torn_lines");
    assert!(
        quarantined >= injected,
        "{quarantined} quarantined < {injected} injected"
    );
    assert!(q.exists(), "quarantine file must be produced");
    // ...and only the lost trials were re-evaluated.
    assert!(
        second.metrics.get("cache_misses") <= quarantined,
        "resume re-evaluated more than the quarantined trials"
    );
    assert!(second.metrics.get("cache_preloaded") > 0);

    // The healed journal is strictly loadable and contains no duplicated
    // evaluation: at most one uncached record per (config, attempt).
    let records = Journal::load(&path).unwrap();
    let mut seen = std::collections::HashSet::new();
    for r in records.iter().filter(|r| !r.cached) {
        assert!(
            seen.insert((r.config.clone(), r.attempt)),
            "duplicate evaluation of {:?} attempt {}",
            r.config,
            r.attempt
        );
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&q);
}
