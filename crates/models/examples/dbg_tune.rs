use prose_core::tuner::{tune, PerfScope};
use prose_models::*;
fn main() {
    let which = std::env::args().nth(1).unwrap_or("mpas_a".into());
    let size = if std::env::args().nth(2).as_deref() == Some("paper") {
        ModelSize::Paper
    } else {
        ModelSize::Small
    };
    for spec in all_models(size) {
        if spec.name != which {
            continue;
        }
        let m = spec.load().unwrap();
        let mut task = m.task(PerfScope::Hotspot, 11).unwrap();
        task.max_variants = Some(300);
        let t0 = std::time::Instant::now();
        let out = tune(&task).unwrap();
        let s = out.search.status_summary();
        println!(
            "=== {} ({} atoms) in {:?} ===",
            spec.name,
            m.atoms.len(),
            t0.elapsed()
        );
        println!(
            "variants={} pass={:.1}% fail={:.1}% timeout={:.1}% error={:.1}% | best speedup {:.2}",
            s.total,
            s.pct(s.pass),
            s.pct(s.fail),
            s.pct(s.timeout),
            s.pct(s.error),
            s.best_speedup
        );
        println!(
            "one_minimal={} budget_exhausted={} remaining_double={}",
            out.search.one_minimal,
            out.search.budget_exhausted,
            out.remaining_double()
        );
        let high: Vec<String> = out
            .search
            .final_config
            .iter()
            .enumerate()
            .filter(|(_, b)| !**b)
            .map(|(i, _)| m.index.fp_var_path(task.atoms[i]))
            .collect();
        println!("final high set: {high:?}");
    }
}
