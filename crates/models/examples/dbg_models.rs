use prose_core::tuner::PerfScope;
use prose_interp::{run_program, RunConfig};
use prose_models::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    for spec in all_models(ModelSize::Small) {
        if !which.is_empty() && spec.name != which {
            continue;
        }
        let m = match spec.load() {
            Ok(m) => m,
            Err(e) => {
                println!("{}: LOAD ERR {e}", spec.name);
                continue;
            }
        };
        println!("=== {} : {} atoms ===", spec.name, m.atoms.len());
        match run_program(&m.program, &m.index, &RunConfig::default()) {
            Ok(out) => {
                println!(
                    "baseline total={:.0} events={}",
                    out.total_cycles, out.events
                );
                let mut rows: Vec<_> = out
                    .timers
                    .iter()
                    .map(|(p, t)| (p.to_string(), t.cycles, t.calls))
                    .collect();
                rows.sort_by(|a, b| b.1.total_cmp(&a.1));
                for (p, c, n) in rows.iter().take(12) {
                    println!(
                        "  {:40} {:>12.0} cyc {:>8} calls ({:.1}%)",
                        p,
                        c,
                        n,
                        100.0 * c / out.total_cycles
                    );
                }
                let hs: f64 = spec
                    .target_procs
                    .iter()
                    .filter_map(|p| out.timers.get(p))
                    .map(|t| t.cycles)
                    .sum();
                println!("  hotspot share = {:.1}%", 100.0 * hs / out.total_cycles);
                for (k, v) in &out.records.scalars {
                    let preview: Vec<_> = v.iter().take(6).map(|x| format!("{x:.4}")).collect();
                    println!("  rec {}: {:?}...", k, preview);
                }
                // uniform 32
                let task = m.task(PerfScope::Hotspot, 1).unwrap();
                let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
                let rec = eval.eval_one(&vec![true; m.atoms.len()]);
                println!(
                    "  uniform32: {:?} err={:.3e} detail={:?}",
                    rec.outcome.status, rec.outcome.error, rec.detail
                );
                println!("  uniform32 hotspot speedup = {:.2}", rec.outcome.speedup);
                let taskw = m.task(PerfScope::WholeModel, 1).unwrap();
                let evalw = prose_core::DynamicEvaluator::new(&taskw).unwrap();
                let recw = evalw.eval_one(&vec![true; m.atoms.len()]);
                println!(
                    "  uniform32 whole-model speedup = {:.2} ({:?})",
                    recw.outcome.speedup, recw.outcome.status
                );
            }
            Err(e) => println!("baseline ERR: {e}"),
        }
    }
}
