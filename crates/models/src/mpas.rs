//! Miniature MPAS-A (the atmosphere model, Section IV-A/IV-B/IV-C).

use crate::{substitute, ModelSize};
use prose_core::metrics::CorrectnessMetric;
use prose_core::tuner::ModelSpec;

const TEMPLATE: &str = include_str!("../fortran/mpas_a.f90");

/// The split-explicit shallow-water atmosphere. Targets are the five work
/// routines of `atm_time_integration`; `atm_srk3` stays untargeted (it is
/// the full-precision boundary).
///
/// The error threshold follows the paper's MPAS-A protocol: it is set to
/// the error observed for the *uniform 32-bit* configuration of the same
/// metric (the developers ship a single-precision build; a variant passes
/// when it is no worse). The constant below was measured from this model's
/// uniform-32 variant at `Paper` size; the benches re-derive it at run
/// time and report both.
pub fn mpas_a(size: ModelSize) -> ModelSpec {
    let (nc, nz, steps, ns) = match size {
        ModelSize::Small => (48, 6, 8, 2),
        ModelSize::Paper => (150, 18, 30, 2),
    };
    ModelSpec {
        name: "mpas_a".into(),
        source: substitute(
            TEMPLATE,
            &[
                ("__NC__", nc),
                ("__NZ__", nz),
                ("__STEPS__", steps),
                ("__NS__", ns),
            ],
        ),
        hotspot_module: "atm_time_integration".into(),
        target_procs: vec![
            "atm_compute_dyn_tend_work".into(),
            "atm_advance_acoustic_step_work".into(),
            "atm_recover_large_step_variables_work".into(),
            "flux4".into(),
            "flux3".into(),
        ],
        metric: CorrectnessMetric::MaxOverSpaceL2OverTime {
            key: "ke".into(),
            floor_frac: 0.01,
        },
        error_threshold: uniform32_reference_error(size),
        n_runs: 1,
        noise_rsd: 0.01,
        exclude: vec![],
    }
}

/// The measured uniform-32 error of this model (the threshold per the
/// paper's protocol). Benches re-measure and assert agreement.
pub fn uniform32_reference_error(size: ModelSize) -> f64 {
    match size {
        // Measured by `official_32bit_error` and rounded down to two
        // significant figures, exactly the paper's convention (its 1.4e2
        // MPAS-A threshold is visibly a 2-sig-fig measurement). The
        // hotspot-only uniform-32 variant lands a hair above the bar, so
        // the search must find variants that beat the official
        // single-precision build — which exist: keeping the reference-
        // energy correction chain (phi0/gsum/gmean/bias) in 64-bit cuts
        // the error by more than an order of magnitude at ~4% cost.
        ModelSize::Small => 3.9e-3,
        ModelSize::Paper => 2.5e-2,
    }
}

/// Measure the error of the "official single-precision build": every FP
/// variable in the program lowered to 32-bit (the analog of compiling the
/// model with 32-bit reals, which MPAS-A supports). The benches re-derive
/// the threshold with this and assert it matches the constants above.
pub fn official_32bit_error(m: &prose_core::LoadedModel) -> Option<f64> {
    use prose_interp::{run_program, RunConfig};
    let base = run_program(&m.program, &m.index, &RunConfig::default()).ok()?;
    let mut full = prose_fortran::PrecisionMap::declared(&m.index);
    for v in m.index.fp_variables() {
        if !v.is_parameter {
            full.set(v.id, prose_fortran::ast::FpPrecision::Single);
        }
    }
    let vf = prose_transform::make_variant(&m.program, &m.index, &full).ok()?;
    let cfg = RunConfig {
        wrapper_names: vf.wrappers.iter().cloned().collect(),
        ..RunConfig::default()
    };
    let out = run_program(&vf.program, &vf.index, &cfg).ok()?;
    m.spec.metric.compute(&base.records, &out.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_core::tuner::PerfScope;
    use prose_interp::{run_program, RunConfig};

    #[test]
    fn baseline_runs_and_stays_finite() {
        let m = mpas_a(ModelSize::Small).load().unwrap();
        let out = run_program(&m.program, &m.index, &RunConfig::default()).unwrap();
        let ke = &out.records.arrays["ke"];
        assert_eq!(ke.len(), 8); // one snapshot per step
                                 // Waves develop: kinetic energy becomes nonzero.
        let last_max = ke.last().unwrap().iter().cloned().fold(0.0f64, f64::max);
        assert!(last_max > 1e-6, "max KE {last_max}");
        assert!(last_max < 1e4, "max KE {last_max}");
    }

    #[test]
    fn atom_inventory_covers_the_work_routines_only() {
        let m = mpas_a(ModelSize::Small).load().unwrap();
        assert!(m.atoms.len() >= 25, "atoms {}", m.atoms.len());
        for a in &m.atoms {
            let path = m.index.fp_var_path(*a);
            assert!(
                !path.contains("atm_srk3") && !path.contains("mpas_atm_"),
                "driver variable leaked into atoms: {path}"
            );
        }
    }

    #[test]
    fn hotspot_is_a_minority_share_of_the_model() {
        let m = mpas_a(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::Hotspot, 3).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let share = eval.baseline.hotspot_share();
        assert!(share > 0.05 && share < 0.45, "hotspot share {share}");
    }

    #[test]
    fn uniform_32_hotspot_speedup_is_large() {
        let m = mpas_a(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::Hotspot, 3).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let rec = eval.eval_one(&vec![true; m.atoms.len()]);
        assert!(
            rec.outcome.speedup > 1.5,
            "uniform-32 hotspot speedup {} ({:?}, {:?})",
            rec.outcome.speedup,
            rec.outcome.status,
            rec.detail
        );
    }

    #[test]
    fn uniform_32_whole_model_is_slower() {
        // The Figure-7 effect: boundary casting outweighs the hotspot gain.
        let m = mpas_a(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::WholeModel, 3).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let rec = eval.eval_one(&vec![true; m.atoms.len()]);
        assert!(
            rec.outcome.speedup < 0.9,
            "uniform-32 whole-model speedup {} (detail {:?})",
            rec.outcome.speedup,
            rec.detail
        );
    }
}
