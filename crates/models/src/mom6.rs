//! Miniature MOM6 (the large-scale ocean model, Section IV-A/IV-B).

use crate::{substitute, ModelSize};
use prose_core::metrics::CorrectnessMetric;
use prose_core::tuner::ModelSpec;

const TEMPLATE: &str = include_str!("../fortran/mom6.f90");

/// Layered continuity with PPM reconstruction and iterative flux
/// adjustment. Threshold 2.5e-1 on the max-CFL series (Section IV-A), and
/// n = 7 because the model's timing noise is large (9% RSD).
pub fn mom6(size: ModelSize) -> ModelSpec {
    let (nx, ny, nz, steps, itmax) = match size {
        ModelSize::Small => (14, 8, 8, 6, 60),
        ModelSize::Paper => (24, 12, 35, 15, 60),
    };
    ModelSpec {
        name: "mom6".into(),
        source: substitute(
            TEMPLATE,
            &[
                ("__NX__", nx),
                ("__NY__", ny),
                ("__NZ__", nz),
                ("__STEPS__", steps),
                ("__ITMAX__", itmax),
            ],
        ),
        hotspot_module: "mom_continuity_ppm".into(),
        target_procs: vec![
            "continuity_ppm".into(),
            "zonal_mass_flux".into(),
            "merid_mass_flux".into(),
            "zonal_flux_adjust".into(),
            "merid_flux_adjust".into(),
            "ppm_reconstruction".into(),
            "ppm_limit_pos".into(),
            "check_recon".into(),
            "row_transport".into(),
        ],
        metric: CorrectnessMetric::ScalarSeriesL2 { key: "cfl".into() },
        error_threshold: 2.5e-1,
        n_runs: 7,
        noise_rsd: 0.09,
        exclude: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_core::tuner::PerfScope;
    use prose_interp::{run_program, RunConfig, RunError};

    #[test]
    fn baseline_runs_with_fast_flux_adjust_convergence() {
        let m = mom6(ModelSize::Small).load().unwrap();
        let out = run_program(&m.program, &m.index, &RunConfig::default()).unwrap();
        let cfl = &out.records.scalars["cfl"];
        assert_eq!(cfl.len(), 6);
        assert!(
            cfl.iter().all(|c| c.is_finite() && *c > 0.0 && *c < 1.0),
            "{cfl:?}"
        );
        // The adjusters converge far below itmax in double precision:
        // their share of hotspot time is modest.
        let adjust = out.timers.get("zonal_flux_adjust").unwrap();
        let calls_per_step = adjust.calls as f64 / 6.0;
        assert!(calls_per_step >= 1.0);
    }

    #[test]
    fn uniform_32_runs_to_itmax_and_slows_down() {
        let m = mom6(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::Hotspot, 9).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let map = eval.precision_map(&vec![true; m.atoms.len()]);
        let v = prose_transform::make_variant(&m.program, &m.index, &map).unwrap();
        let cfg = RunConfig {
            wrapper_names: v.wrappers.iter().cloned().collect(),
            ..RunConfig::default()
        };
        let out32 = run_program(&v.program, &v.index, &cfg)
            .expect("uniformly-lowered MOM6 stays executable");
        let base = &eval.baseline.outcome;
        let t32 = out32.timers.get("zonal_flux_adjust").unwrap().per_call();
        let t64 = base.timers.get("zonal_flux_adjust").unwrap().per_call();
        let slowdown = t32 / t64;
        assert!(
            slowdown > 3.0,
            "expected flux_adjust to run to itmax in f32: slowdown {slowdown}"
        );
    }

    #[test]
    fn mixed_precision_reconstruction_trips_the_fatal_check() {
        // Split the hl/hr face arrays across precisions: the consistency
        // check must abort (stop 24) — the 95%-runtime-error mechanism.
        let m = mom6(ModelSize::Small).load().unwrap();
        let mut map = prose_fortran::PrecisionMap::declared(&m.index);
        let recon = m.index.scope_of_procedure("ppm_reconstruction").unwrap();
        map.set(
            m.index.fp_var_id(recon, "hl").unwrap(),
            prose_fortran::ast::FpPrecision::Single,
        );
        let v = prose_transform::make_variant(&m.program, &m.index, &map).unwrap();
        let cfg = RunConfig {
            wrapper_names: v.wrappers.iter().cloned().collect(),
            ..RunConfig::default()
        };
        let err = run_program(&v.program, &v.index, &cfg).expect_err("mixed hl/hr must abort");
        assert!(
            matches!(
                err,
                RunError::Stop { code: 21 }
                    | RunError::Stop { code: 24 }
                    | RunError::NonFinite { .. }
            ),
            "unexpected failure mode: {err}"
        );
    }

    #[test]
    fn hotspot_share_is_small() {
        let m = mom6(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::Hotspot, 9).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let share = eval.baseline.hotspot_share();
        assert!(share > 0.03 && share < 0.6, "hotspot share {share}");
    }
}
