//! # prose-models
//!
//! The four embedded Fortran workloads of the case study, with the
//! experiment parameters of Section IV-A:
//!
//! | Paper model | Here | Hotspot module | Metric | Threshold | n |
//! |---|---|---|---|---|---|
//! | MPAS-A (5-day global run) | [`mpas::mpas_a`] | `atm_time_integration` work routines | per-cell kinetic energy, max over cells, L2 over time | observed uniform-32 error | 1 |
//! | ADCIRC (40-day tidal run) | [`adcirc::adcirc`] | `itpackv` | running-max elevation per node, L2 over grid | 1.0e-1 | 1 |
//! | MOM6 (benchmark config) | [`mom6::mom6`] | `MOM_continuity_PPM` | max CFL per step, L2 over time | 2.5e-1 | 7 |
//! | funarc (motivating example) | [`funarc::funarc`] | whole program | final arc length | 4.0e-4 | 1 |
//!
//! Each model is a faithful *miniature*: the full models need Derecho-scale
//! resources, so these reproduce the hotspot structure, the numerical
//! failure modes, and the performance anatomy (vectorizable vs. recurrence
//! kernels, call volumes, boundary data flow) at laptop scale — see
//! DESIGN.md's substitution table.
//!
//! Sources are parameterized by [`ModelSize`]: `Small` keeps unit tests
//! fast; `Paper` is used by the benchmark harness that regenerates the
//! paper's tables and figures.

pub mod adcirc;
pub mod funarc;
pub mod guardrail;
pub mod mom6;
pub mod mpas;

pub use prose_core::tuner::{LoadedModel, ModelSpec};

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSize {
    /// Tiny grids and few steps: seconds-fast tests.
    Small,
    /// The evaluation-scale configuration used by the benches.
    Paper,
}

/// Substitute `__TOKEN__` placeholders in a Fortran source template.
pub(crate) fn substitute(template: &str, pairs: &[(&str, i64)]) -> String {
    let mut out = template.to_string();
    for (token, value) in pairs {
        out = out.replace(token, &value.to_string());
    }
    assert!(
        !out.contains("__"),
        "unsubstituted placeholder remains in model source"
    );
    out
}

/// All four models at the given size (funarc last — it is the motivating
/// example, not a weather model).
pub fn all_models(size: ModelSize) -> Vec<ModelSpec> {
    vec![
        mpas::mpas_a(size),
        adcirc::adcirc(size),
        mom6::mom6(size),
        funarc::funarc(size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitute_replaces_all_tokens() {
        let s = substitute("a __X__ b __Y__ __X__", &[("__X__", 3), ("__Y__", -2)]);
        assert_eq!(s, "a 3 b -2 3");
    }

    #[test]
    #[should_panic(expected = "unsubstituted placeholder")]
    fn substitute_rejects_leftovers() {
        substitute("__X__ __Z__", &[("__X__", 1)]);
    }

    #[test]
    fn all_models_load() {
        for spec in all_models(ModelSize::Small) {
            let m = spec
                .load()
                .unwrap_or_else(|e| panic!("{} fails to load: {e}", spec.name));
            assert!(!m.atoms.is_empty(), "{} has no atoms", spec.name);
        }
    }
}
