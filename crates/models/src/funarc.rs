//! The funarc motivating example (Section II-B, Figure 2/3).

use crate::{substitute, ModelSize};
use prose_core::metrics::CorrectnessMetric;
use prose_core::tuner::ModelSpec;

const TEMPLATE: &str = include_str!("../fortran/funarc.f90");

/// The 8-atom arc-length program. All FP declarations in `funarc` and
/// `fun` are atoms except the `result` output — a 2⁸ = 256 variant space.
pub fn funarc(size: ModelSize) -> ModelSpec {
    let n = match size {
        ModelSize::Small => 300,
        // The classic funarc configuration integrates a million intervals;
        // at that scale the f32 accumulation error lands in the 1e-4..1e-3
        // band the paper's Figure 2 shows, and the 4e-4 threshold is
        // meaningful.
        ModelSize::Paper => 1_000_000,
    };
    ModelSpec {
        name: "funarc".into(),
        source: substitute(TEMPLATE, &[("__N__", n)]),
        hotspot_module: "funarc_mod".into(),
        target_procs: vec!["funarc".into(), "fun".into()],
        metric: CorrectnessMetric::ScalarSeriesL2 {
            key: "result".into(),
        },
        // The error threshold used in the motivating example's frontier
        // discussion (Figure 2: "given an error threshold of 4e-4 ...").
        error_threshold: 4.0e-4,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec!["result".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_core::tuner::PerfScope;
    use prose_fortran::ast::FpPrecision;
    use prose_fortran::PrecisionMap;
    use prose_interp::{run_program, RunConfig};

    #[test]
    fn has_exactly_eight_atoms() {
        let m = funarc(ModelSize::Small).load().unwrap();
        // s1, h, t1, t2, dppi (funarc) + x, t1, d1 (fun); `result` excluded.
        assert_eq!(
            m.atoms.len(),
            8,
            "{:?}",
            m.atoms
                .iter()
                .map(|a| m.index.fp_var_path(*a))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn baseline_computes_the_known_arc_length() {
        let m = funarc(ModelSize::Small).load().unwrap();
        let out = run_program(&m.program, &m.index, &RunConfig::default()).unwrap();
        let result = out.records.scalars["result"][0];
        // Arc length of x + sum 2^-k sin(2^k x) over [0, pi] ≈ 5.7957...
        assert!((result - 5.7957).abs() < 0.05, "result = {result}");
    }

    #[test]
    fn uniform_32_is_faster_and_less_accurate() {
        let m = funarc(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::WholeModel, 1).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let all32 = vec![true; m.atoms.len()];
        let rec = eval.eval_one(&all32);
        assert!(
            rec.outcome.speedup > 1.1,
            "uniform-32 speedup {}",
            rec.outcome.speedup
        );
        assert!(rec.outcome.error > 1e-8, "error {}", rec.outcome.error);
        assert!(rec.outcome.error < 1.0, "error {}", rec.outcome.error);
    }

    #[test]
    fn lowering_fun_x_requires_a_wrapper() {
        let m = funarc(ModelSize::Small).load().unwrap();
        let scope = m.index.scope_of_procedure("fun").unwrap();
        let mut map = PrecisionMap::declared(&m.index);
        map.set(m.index.fp_var_id(scope, "x").unwrap(), FpPrecision::Single);
        let v = prose_transform::make_variant(&m.program, &m.index, &map).unwrap();
        assert!(
            v.wrappers.iter().any(|w| w.starts_with("fun_w")),
            "{:?}",
            v.wrappers
        );
    }
}
