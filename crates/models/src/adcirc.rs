//! Miniature ADCIRC (the coastal ocean model, Section IV-A/IV-B).

use crate::{substitute, ModelSize};
use prose_core::metrics::CorrectnessMetric;
use prose_core::tuner::ModelSpec;

const TEMPLATE: &str = include_str!("../fortran/adcirc.f90");

/// Tidal elevation on a sloping shelf; the hotspot is the `itpackv`
/// Jacobi-CG solver. Threshold 1.0e-1 on the running-max elevation field
/// (Section IV-A, set with domain-expert advice), n = 1 (1% RSD).
pub fn adcirc(size: ModelSize) -> ModelSpec {
    let (nn, steps, nsub) = match size {
        ModelSize::Small => (48, 10, 8),
        ModelSize::Paper => (120, 40, 24),
    };
    ModelSpec {
        name: "adcirc".into(),
        source: substitute(
            TEMPLATE,
            &[("__NN__", nn), ("__STEPS__", steps), ("__NSUB__", nsub)],
        ),
        hotspot_module: "itpackv".into(),
        target_procs: vec!["jcg".into(), "pjac".into(), "peror".into(), "pmult".into()],
        metric: CorrectnessMetric::FieldL2 {
            key: "etamax".into(),
        },
        error_threshold: 1.0e-1,
        n_runs: 1,
        noise_rsd: 0.01,
        exclude: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_core::tuner::PerfScope;
    use prose_interp::{run_program, RunConfig};

    #[test]
    fn baseline_tides_propagate_and_solver_converges() {
        let m = adcirc(ModelSize::Small).load().unwrap();
        let out = run_program(&m.program, &m.index, &RunConfig::default()).unwrap();
        let etamax = out.records.arrays["etamax"].last().unwrap();
        // The tide reaches into the domain.
        assert!(etamax[0] > 0.05, "etamax near boundary {}", etamax[0]);
        assert!(etamax.iter().all(|x| x.is_finite() && *x < 10.0));
        // The CG solver converges in a handful of iterations (not itmax).
        let iters = &out.records.scalars["iters"];
        let avg: f64 = iters.iter().sum::<f64>() / iters.len() as f64;
        assert!((2.0..40.0).contains(&avg), "average CG iterations {avg}");
    }

    #[test]
    fn uniform_32_is_executable_with_modest_speedup() {
        // Documented deviation from the paper (see EXPERIMENTS.md): our
        // miniature's JCG stays numerically benign in single precision, so
        // uniform-32 passes the threshold instead of failing it. What does
        // reproduce: the modest speedup (the paper's best passing variant
        // was ~1.1×) because pjac's recurrence and peror's MPI latency
        // don't benefit from f32.
        let m = adcirc(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::Hotspot, 5).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let rec = eval.eval_one(&vec![true; m.atoms.len()]);
        assert!(
            rec.outcome.speedup > 1.02 && rec.outcome.speedup < 1.6,
            "uniform-32 hotspot speedup {} (paper band ~1.1x)",
            rec.outcome.speedup
        );
        assert!(rec.outcome.error.is_finite());
    }

    #[test]
    fn peror_and_pjac_gain_little_from_f32() {
        // Figure 6's ADCIRC panel: the two most expensive procedures do
        // not benefit much from reduced precision (MPI latency; recurrence).
        let m = adcirc(ModelSize::Small).load().unwrap();
        let base = run_program(&m.program, &m.index, &RunConfig::default()).unwrap();
        let mut map = prose_fortran::PrecisionMap::declared(&m.index);
        for a in &m.atoms {
            map.set(*a, prose_fortran::ast::FpPrecision::Single);
        }
        let v = prose_transform::make_variant(&m.program, &m.index, &map).unwrap();
        let cfg = RunConfig {
            wrapper_names: v.wrappers.iter().cloned().collect(),
            ..RunConfig::default()
        };
        let out32 = run_program(&v.program, &v.index, &cfg).unwrap();
        for proc in ["peror", "pjac"] {
            let b = base.timers.get(proc).unwrap().per_call();
            let w = out32.timers.get(proc).unwrap().per_call();
            let speedup = b / w;
            assert!(
                speedup < 1.5,
                "{proc} per-call speedup {speedup} should be small"
            );
        }
    }

    #[test]
    fn hotspot_share_is_minority() {
        let m = adcirc(ModelSize::Small).load().unwrap();
        let task = m.task(PerfScope::Hotspot, 5).unwrap();
        let eval = prose_core::DynamicEvaluator::new(&task).unwrap();
        let share = eval.baseline.hotspot_share();
        assert!(share > 0.04 && share < 0.5, "hotspot share {share}");
    }

    #[test]
    fn atoms_live_in_the_solver_only() {
        let m = adcirc(ModelSize::Small).load().unwrap();
        assert!(m.atoms.len() >= 20, "atoms {}", m.atoms.len());
        for a in &m.atoms {
            let path = m.index.fp_var_path(*a);
            assert!(path.starts_with("itpackv::"), "{path}");
        }
    }
}
