//! Synthetic guardrail testbed: planted catastrophic cancellation plus an
//! input-gated overfit branch (see `fortran/guardrail.f90` for the
//! numerical anatomy). Not one of the paper's four models — it exists to
//! exercise the shadow-execution gate and held-out ensemble validation,
//! and is what the CI guardrail-smoke job tunes.

use crate::{substitute, ModelSize};
use prose_core::metrics::CorrectnessMetric;
use prose_core::tuner::ModelSpec;

const TEMPLATE: &str = include_str!("../fortran/guardrail.f90");

/// Six-atom testbed (`eps`, `canc`, `q`, `s`, `acc`, `x`; the `out` and
/// `gate` dummies are excluded): a 2⁶ = 64 variant space small enough for
/// brute force yet containing both planted traps.
pub fn guardrail_smoke(size: ModelSize) -> ModelSpec {
    let (n, steps) = match size {
        ModelSize::Small => (400, 5),
        ModelSize::Paper => (20_000, 10),
    };
    ModelSpec {
        name: "guardrail_smoke".into(),
        source: substitute(TEMPLATE, &[("__N__", n), ("__STEPS__", steps)]),
        hotspot_module: "guard_mod".into(),
        target_procs: vec!["kernel".into()],
        metric: CorrectnessMetric::ScalarSeriesL2 { key: "out".into() },
        error_threshold: 4.0e-4,
        n_runs: 1,
        noise_rsd: 0.0,
        exclude: vec!["out".into(), "gate".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_interp::{run_program, RunConfig};

    #[test]
    fn has_exactly_six_atoms() {
        let m = guardrail_smoke(ModelSize::Small).load().unwrap();
        assert_eq!(
            m.atoms.len(),
            6,
            "{:?}",
            m.atoms
                .iter()
                .map(|a| m.index.fp_var_path(*a))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn baseline_gate_branch_is_dormant() {
        let m = guardrail_smoke(ModelSize::Small).load().unwrap();
        let out = run_program(&m.program, &m.index, &RunConfig::default()).unwrap();
        let series = &out.records.scalars["out"];
        assert_eq!(series.len(), 5);
        // The branch contributes -0.5 when taken; dormant, `out` is just
        // the positive harmonic-like sum (~ ln(n) scale).
        assert!(series[0] > 5.0 && series[0] < 8.0, "out = {}", series[0]);
    }
}
