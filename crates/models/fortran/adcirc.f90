! Miniature ADCIRC: a 1D coastal tidal-elevation model whose implicit
! gravity-wave step solves an SPD tridiagonal system with the `itpackv`
! module — a faithful mini Jacobi-preconditioned conjugate gradient with
! the paper's procedure inventory:
!
!   * `jcg`    — the solver driver: owns the key convergence parameters
!                (`delnnm`, `delnn_old`) whose precision controls the
!                stopping test. The paper's search found that exactly this
!                kind of parameter must remain 64-bit: in single precision
!                the no-progress test trips early, changing control flow
!                into the fast-but-wrong regime.
!   * `pjac`   — Gauss-Seidel preconditioner sweeps: a loop-carried
!                recurrence that never vectorizes (criterion 1 failure →
!                minimal f32 benefit).
!   * `peror`  — dot products finished with `MPI_ALLREDUCE`: fixed latency
!                independent of precision.
!   * `pmult`  — the tridiagonal matvec.
!
! The driver (untargeted) runs explicit momentum substeps, tidal forcing,
! and bottom friction; the solver is ~12% of total time. Correctness: the
! running-maximum water surface elevation per node, relative error per
! node, L2 across the grid (the paper's ADCIRC metric).

module itpackv
contains
  subroutine pmult(x, ax, adiag, aoff, nn)
    real(kind=8), intent(in) :: x(0:nn+1), adiag(nn), aoff(0:nn)
    real(kind=8), intent(out) :: ax(0:nn+1)
    integer, intent(in) :: nn
    integer :: i
    do i = 1, nn
      ax(i) = adiag(i) * x(i) - aoff(i-1) * x(i-1) - aoff(i) * x(i+1)
    end do
  end subroutine pmult

  subroutine pjac(r, z, adiag, aoff, nn, nsweep, omega)
    real(kind=8), intent(in) :: r(0:nn+1), adiag(nn), aoff(0:nn)
    real(kind=8), intent(out) :: z(0:nn+1)
    integer, intent(in) :: nn, nsweep
    real(kind=8), intent(in) :: omega
    real(kind=8) :: znew
    integer :: i, sweep
    z(0) = 0.0d0
    z(nn+1) = 0.0d0
    do i = 1, nn
      z(i) = r(i) / adiag(i)
    end do
    ! Symmetric over-relaxed Gauss-Seidel sweeps: z(i) depends on z(i-1) —
    ! the data dependency that keeps this nested loop scalar
    ! (Section IV-B). The relaxation factor comes from jcg's adaptive
    ! spectral-radius estimate, ITPACK style.
    do sweep = 1, nsweep
      do i = 1, nn
        znew = (r(i) + aoff(i-1) * z(i-1) + aoff(i) * z(i+1)) / adiag(i)
        z(i) = z(i) + omega * (znew - z(i))
      end do
      do i = nn, 1, -1
        znew = (r(i) + aoff(i-1) * z(i-1) + aoff(i) * z(i+1)) / adiag(i)
        z(i) = z(i) + omega * (znew - z(i))
      end do
    end do
  end subroutine pjac

  subroutine peror(a, b, nn, dotout)
    real(kind=8), intent(in) :: a(0:nn+1), b(0:nn+1)
    integer, intent(in) :: nn
    real(kind=8), intent(out) :: dotout
    real(kind=8) :: s
    integer :: i
    s = 0.0d0
    do i = 1, nn
      s = s + a(i) * b(i)
    end do
    dotout = 0.0d0
    call mpi_allreduce_sum(s, dotout)
  end subroutine peror

  subroutine jcg(x, rhs, adiag, aoff, nn, itmax, tol, iters)
    real(kind=8), intent(inout) :: x(0:nn+1)
    real(kind=8), intent(in) :: rhs(0:nn+1), adiag(nn), aoff(0:nn)
    integer, intent(in) :: nn, itmax
    real(kind=8), intent(in) :: tol
    integer, intent(out) :: iters
    real(kind=8) :: r(0:nn+1), z(0:nn+1), p(0:nn+1), ap(0:nn+1)
    real(kind=8) :: delnnm, delnn_old, delnn0, ptap, alpha, beta, rho, omega
    integer :: i, it
    ! r = rhs - A x (cold start: the caller zeroes x each solve).
    call pmult(x, ap, adiag, aoff, nn)
    do i = 1, nn
      r(i) = rhs(i) - ap(i)
    end do
    r(0) = 0.0d0
    r(nn+1) = 0.0d0
    omega = 1.0d0
    call pjac(r, z, adiag, aoff, nn, 1, omega)
    delnnm = 0.0d0
    call peror(r, z, nn, delnnm)
    delnn0 = delnnm
    do i = 0, nn + 1
      p(i) = z(i)
    end do
    iters = 0
    do it = 1, itmax
      iters = it
      call pmult(p, ap, adiag, aoff, nn)
      ptap = 0.0d0
      call peror(p, ap, nn, ptap)
      alpha = delnnm / ptap
      do i = 1, nn
        x(i) = x(i) + alpha * p(i)
        r(i) = r(i) - alpha * ap(i)
      end do
      call pjac(r, z, adiag, aoff, nn, 1, omega)
      delnn_old = delnnm
      call peror(r, z, nn, delnnm)
      ! Converged?
      if (abs(delnnm) < tol * abs(delnn0)) then
        exit
      end if
      ! ITPACK-style adaptive acceleration: estimate the convergence rate
      ! and retune the relaxation factor. In reduced precision the
      ! residual measure wobbles: the no-progress exit trips long before
      ! true convergence — the control-flow change behind the bimodal jcg
      ! behaviour — and a rate estimate of ~1 drives omega toward its
      ! stability limit.
      rho = abs(delnnm) / abs(delnn_old)
      if (rho >= 1.0d0) then
        exit
      end if
      omega = 2.0d0 / (1.0d0 + sqrt(1.0d0 - rho * rho))
      beta = delnnm / delnn_old
      do i = 1, nn
        p(i) = z(i) + beta * p(i)
      end do
    end do
  end subroutine jcg
end module itpackv

program adcirc_main
  use itpackv, only: jcg
  implicit none
  integer :: nn, nsteps, nsub, itmax, iters
  real(kind=8) :: eta(0:__NN__+1), u(0:__NN__+1), etamax(__NN__)
  real(kind=8) :: rhs(0:__NN__+1), adiag(__NN__), aoff(0:__NN__)
  real(kind=8) :: depth(0:__NN__+1)
  real(kind=8) :: dx, dt, dtsub, g, alpha0, tide, cf, speed, tphase, nu
  integer :: i, step, sub
  nn = __NN__
  nsteps = __STEPS__
  nsub = __NSUB__
  itmax = 60
  dx = 150.0d0
  dt = 300.0d0
  g = 9.80616d0
  cf = 0.0025d0
  nu = 60.0d0
  ! Bathymetry: sloping shelf from 12 m to a 1.2 m near-shore shallow.
  do i = 0, nn + 1
    depth(i) = 12.0d0 - 10.8d0 * i / (nn + 1)
    eta(i) = 0.0d0
    u(i) = 0.0d0
  end do
  do i = 1, nn
    etamax(i) = 0.0d0
  end do
  ! Implicit system (I - alpha d/dx(gH d/dx)) eta = rhs, assembled once per
  ! step below with the current depth field.
  do step = 1, nsteps
    tphase = 1.405d-4 * step * dt
    ! --- explicit momentum substeps (driver-side, untargeted) ---
    dtsub = dt / nsub
    do sub = 1, nsub
      do i = 1, nn
        speed = abs(u(i)) + 1.0d-8
        u(i) = u(i) - dtsub * (g * (eta(i+1) - eta(i-1)) / (2.0d0 * dx) &
               + u(i) * (u(i+1) - u(i-1)) / (2.0d0 * dx) &
               - nu * (u(i+1) - 2.0d0 * u(i) + u(i-1)) / (dx * dx) &
               + cf * speed * u(i) / (depth(i) + eta(i)) &
               - 1.0d-5 * sin(tphase) * cos(3.14159d0 * i / nn))
      end do
      u(0) = 0.0d0
      u(nn+1) = 0.0d0
    end do
    ! --- assemble the implicit elevation system ---
    alpha0 = 0.5d0 * g * dt * dt / (dx * dx)
    do i = 0, nn
      aoff(i) = alpha0 * 0.5d0 * (depth(i) + depth(i+1))
    end do
    do i = 1, nn
      adiag(i) = 1.0d0 + aoff(i-1) + aoff(i)
      rhs(i) = eta(i) - dt * (depth(i) + eta(i)) * (u(i+1) - u(i-1)) / (2.0d0 * dx)
    end do
    rhs(0) = 0.0d0
    ! Open-ocean tidal boundary forcing enters through the rhs.
    tide = 0.4d0 * cos(tphase)
    rhs(1) = rhs(1) + aoff(0) * tide
    rhs(nn+1) = 0.0d0
    ! --- the hotspot: solve with the itpackv JCG solver (cold start,
    ! as in the GWCE formulation: the previous elevation is already
    ! folded into the rhs) ---
    do i = 1, nn
      eta(i) = 0.0d0
    end do
    iters = 0
    call jcg(eta, rhs, adiag, aoff, nn, itmax, 1.0d-12, iters)
    eta(0) = tide
    eta(nn+1) = eta(nn)
    ! --- running maximum elevation (the ADCIRC correctness field) ---
    do i = 1, nn
      etamax(i) = max(etamax(i), abs(eta(i)))
    end do
    call prose_record('iters', 1.0d0 * iters)
  end do
  call prose_record_array('etamax', etamax)
end program adcirc_main
