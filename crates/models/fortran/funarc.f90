! The funarc motivating example (Section II-B; Bailey, "Resolving
! numerical anomalies in scientific computation").
!
! Computes the arc length of g(x) = x + sum_k 2^-k sin(2^k x) over [0, pi]
! with a hard-coded midpoint rule. Eight FP search atoms (the `result`
! output is excluded): funarc's s1, h, t1, t2, dppi and fun's x, t1, d1 —
! a 2^8 = 256 variant space that brute force enumerates for Figure 2.

module funarc_mod
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 5
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine funarc(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2, dppi
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    dppi = 3.141592653589793d0
    h = dppi / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine funarc
end module funarc_mod

program main
  use funarc_mod, only: funarc
  implicit none
  real(kind=8) :: result
  result = 0.0d0
  call funarc(result, __N__)
  call prose_record('result', result)
end program main
