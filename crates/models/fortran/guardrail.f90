! Synthetic guardrail testbed: two numerical traps that a scalar
! correctness metric alone cannot see.
!
! 1. Catastrophic cancellation (`eps`, `canc`): `canc = (1 + eps) - 1`
!    evaluates to exactly zero once `eps` is stored in single precision
!    (1e-8 is below the f32 unit roundoff of ~1.2e-7), while the fp64
!    shadow keeps ~1e-8. The result is scaled by 1e-10 before reaching the
!    recorded output, so the scalar metric moves by ~1e-18 and the variant
!    passes — only shadow execution flags it.
!
! 2. Input overfit (`gate`, `q`): the driver sets `gate` just below 1, so
!    the guarded branch never executes on the tuning input and `q`'s
!    precision is unconstrained by the metric. A held-out ensemble member
!    that perturbs the driver's literals by ~1e-3 pushes `gate` above 1
!    about half the time; the branch then counts 100 unit increments on
!    top of 2^24, which single precision absorbs completely (f32 spacing
!    at 2^24 is 2), so `(q - 2^24)` collapses from 100 to 0 and `out`
!    loses the branch's +1 contribution — an O(0.1) relative error, far
!    over the 4e-4 threshold. (2^24 is exactly representable in f32, so
!    kind-generic literal rounding cannot mask the trap.)
!
! The hot loop through `s`/`x` is the honest speedup: div and sqrt get the
! scalar narrow-precision discount, and single precision accumulates only
! ~1e-7 relative error — safely inside both the metric threshold and the
! shadow budget.

module guard_mod
contains
  subroutine kernel(out, gate, n)
    real(kind=8) :: out, gate
    integer :: n
    real(kind=8) :: eps, canc, q, s, acc, x
    integer :: i
    s = 0.0d0
    x = 1.0d0
    do i = 1, n
      x = x + 1.0d0
      s = s + 1.0d0 / sqrt(x * x + 1.0d0)
    end do
    eps = 1.0d-8
    canc = (1.0d0 + eps) - 1.0d0
    acc = 0.0d0
    if (gate > 1.0d0) then
      q = 16777216.0d0
      do i = 1, 100
        q = q + 1.0d0
      end do
      acc = (q - 16777216.0d0) * 1.0d-2
    end if
    out = s + acc + canc * 1.0d-10
  end subroutine kernel
end module guard_mod

program main
  use guard_mod, only: kernel
  implicit none
  real(kind=8) :: out, gate
  integer :: step
  out = 0.0d0
  gate = 1.0d0 - 1.0d-9
  do step = 1, __STEPS__
    call kernel(out, gate, __N__)
    call prose_record('out', out)
  end do
end program main
