! Miniature MOM6: a 2D layered-ocean continuity solver with the paper's
! `MOM_continuity_PPM` hotspot inventory:
!
!   * `continuity_ppm`      — the module driver: updates layer thickness
!                             from zonal and meridional mass-flux
!                             divergence, with MOM6's fatal negative-
!                             thickness check (`stop 21`).
!   * `zonal_mass_flux` /
!     `merid_mass_flux`     — per-row/column flux assembly passing work
!                             arrays to the PPM callees (the variant-58
!                             phenomenon: keeping these arrays 64-bit while
!                             callees run 32-bit buries the run in casting).
!   * `ppm_reconstruction`  — face-value reconstruction with a fatal
!                             consistency check (`stop 24`): at slope-
!                             limited cells the left/right face values are
!                             identical *by construction*, so their
!                             difference is either exactly zero or real
!                             curvature — unless the two face arrays carry
!                             different precisions, in which case the
!                             difference is representation noise and the
!                             curvature ratio explodes. This is the
!                             mixed-precision fragility that gave the paper
!                             its 95% runtime-error rate for MOM6 variants
!                             more than 10% 32-bit, while *uniformly*
!                             lowered variants stay executable.
!   * `ppm_limit_pos`       — positivity limiting.
!   * `zonal_flux_adjust` /
!     `merid_flux_adjust`   — regula-falsi-with-bisection-fallback
!                             iteration matching each row/column transport
!                             to its barotropic target, to a relative
!                             tolerance of 4e-14 — reachable in double,
!                             unreachable at the single-precision noise
!                             floor: 32-bit variants fall back to bisection
!                             and run to `itmax` (the paper's Figure-6
!                             10-100× `flux_adjust` slowdown).
!
! Driver-side (untargeted): hydrostatic pressure integration down each
! column (a recurrence) with a nonlinear equation of state, plus
! barotropic diagnostics finished with MPI reductions. Correctness: the
! maximum CFL number per step, relative error per step, L2 over time (the
! paper's MOM6 metric).

module mom_continuity_ppm
contains
  subroutine ppm_reconstruction(hrow, hl, hr, n)
    real(kind=8), intent(in) :: hrow(0:n+1)
    real(kind=8), intent(out) :: hl(n)
    integer, intent(in) :: n
    real(kind=8) :: slope, dl, dr, denom, w
    real(kind=8), intent(out) :: hr(n)
    integer :: i
    do i = 1, n
      dl = hrow(i) - hrow(i-1)
      dr = hrow(i+1) - hrow(i)
      slope = 0.5d0 * (dl + dr)
      if (dl * dr <= 0.0d0) then
        slope = 0.0d0
      end if
      hl(i) = hrow(i) - 0.5d0 * slope
      hr(i) = hrow(i) + 0.5d0 * slope
    end do
    ! Curvature-to-width diagnostics. At limited cells hl == hr exactly
    ! (same stored value), so denom is 0 and both branches are skipped; a
    ! denom that is tiny-but-nonzero is precision-mixing noise, and the
    ! ratio blows up — the fatal consistency check (`stop 24`). In the
    ! borderline band an anti-diffusive steepening fires; which cells are
    ! borderline is itself precision-sensitive, so reduced-precision
    ! variants can silently diverge instead of aborting.
    do i = 1, n
      denom = hr(i) - hl(i)
      if (abs(denom) > 1.0d-12) then
        dl = hrow(i) - hrow(i-1)
        dr = hrow(i+1) - hrow(i)
        w = (dr - dl) / denom
        if (abs(w) > 1.0d3) then
          stop 24
        end if
        if (abs(w) > 50.0d0) then
          hl(i) = hrow(i) - 0.4d0 * (dr - dl)
          hr(i) = hrow(i) + 0.4d0 * (dr - dl)
        end if
      end if
    end do
  end subroutine ppm_reconstruction

  ! MOM6-style fatal sanity check on the limited reconstruction, applied
  ! by the flux assemblers before any flux leaves the cell.
  subroutine check_recon(hrow, hl, hr, n)
    real(kind=8), intent(in) :: hrow(0:n+1), hl(n)
    integer, intent(in) :: n
    real(kind=8) :: denom, w
    real(kind=8), intent(in) :: hr(n)
    integer :: i
    do i = 1, n
      denom = hr(i) - hl(i)
      if (abs(denom) > 1.0d-12) then
        w = (hrow(i+1) - 2.0d0 * hrow(i) + hrow(i-1)) / denom
        if (abs(w) > 1.0d3) then
          stop 24
        end if
      end if
    end do
  end subroutine check_recon

  subroutine ppm_limit_pos(hl, hr, hrow, n, hmin)
    real(kind=8), intent(inout) :: hl(n)
    real(kind=8), intent(in) :: hrow(0:n+1)
    integer, intent(in) :: n
    real(kind=8), intent(in) :: hmin
    real(kind=8), intent(inout) :: hr(n)
    integer :: i
    do i = 1, n
      if (hl(i) < hmin) then
        hl(i) = hmin
      end if
      if (hr(i) < hmin) then
        hr(i) = hmin
      end if
      if (hl(i) > 2.0d0 * hrow(i)) then
        hl(i) = 2.0d0 * hrow(i)
      end if
      if (hr(i) > 2.0d0 * hrow(i)) then
        hr(i) = 2.0d0 * hrow(i)
      end if
    end do
  end subroutine ppm_limit_pos

  ! Total transport through a line of faces for a velocity correction du.
  function row_transport(urow, hl, hr, n, du) result(trans)
    real(kind=8) :: urow(0:n), hl(n), du, trans
    integer :: n
    real(kind=8) :: uf, hface, hr(n)
    integer :: i
    trans = 0.0d0
    do i = 1, n - 1
      uf = urow(i) + du
      if (uf >= 0.0d0) then
        hface = hr(i)
      else
        hface = hl(i+1)
      end if
      trans = trans + uf * hface
    end do
  end function row_transport

  subroutine zonal_flux_adjust(urow, hl, hr, n, target_trans, du, itmax, iters)
    real(kind=8), intent(in) :: urow(0:n), hl(n)
    integer, intent(in) :: n, itmax
    real(kind=8), intent(in) :: target_trans
    real(kind=8), intent(out) :: du
    integer, intent(out) :: iters
    real(kind=8), intent(in) :: hr(n)
    real(kind=8) :: dul, duh, resid, residl, residh, scale_t, dnew, denom
    integer :: it
    dul = -0.6d0
    duh = 0.6d0
    du = 0.0d0
    scale_t = abs(target_trans) + 1.0d-2
    residl = row_transport(urow, hl, hr, n, dul) - target_trans
    residh = row_transport(urow, hl, hr, n, duh) - target_trans
    iters = 0
    do it = 1, itmax
      iters = it
      ! Regula falsi when the secant is well conditioned, bisection
      ! otherwise (the 32-bit noise floor forces the bisection path).
      denom = residh - residl
      if (abs(denom) > 1.0d-13 * scale_t) then
        dnew = dul - residl * (duh - dul) / denom
        if (dnew <= dul .or. dnew >= duh) then
          dnew = 0.5d0 * (dul + duh)
        end if
      else
        dnew = 0.5d0 * (dul + duh)
      end if
      du = dnew
      resid = row_transport(urow, hl, hr, n, du) - target_trans
      if (abs(resid) < 4.0d-14 * scale_t) then
        exit
      end if
      if (resid * residl <= 0.0d0) then
        duh = du
        residh = resid
      else
        dul = du
        residl = resid
      end if
    end do
  end subroutine zonal_flux_adjust

  subroutine merid_flux_adjust(vcol, hl, hr, n, target_trans, dv, itmax, iters)
    real(kind=8), intent(in) :: vcol(0:n), hl(n)
    integer, intent(in) :: n, itmax
    real(kind=8), intent(in) :: target_trans
    real(kind=8), intent(out) :: dv
    integer, intent(out) :: iters
    real(kind=8), intent(in) :: hr(n)
    real(kind=8) :: dvl, dvh, resid, residl, residh, scale_t, dnew, denom
    integer :: it
    dvl = -0.6d0
    dvh = 0.6d0
    dv = 0.0d0
    scale_t = abs(target_trans) + 1.0d-2
    residl = row_transport(vcol, hl, hr, n, dvl) - target_trans
    residh = row_transport(vcol, hl, hr, n, dvh) - target_trans
    iters = 0
    do it = 1, itmax
      iters = it
      denom = residh - residl
      if (abs(denom) > 1.0d-13 * scale_t) then
        dnew = dvl - residl * (dvh - dvl) / denom
        if (dnew <= dvl .or. dnew >= dvh) then
          dnew = 0.5d0 * (dvl + dvh)
        end if
      else
        dnew = 0.5d0 * (dvl + dvh)
      end if
      dv = dnew
      resid = row_transport(vcol, hl, hr, n, dv) - target_trans
      if (abs(resid) < 4.0d-14 * scale_t) then
        exit
      end if
      if (resid * residl <= 0.0d0) then
        dvh = dv
        residh = resid
      else
        dvl = dv
        residl = resid
      end if
    end do
  end subroutine merid_flux_adjust

  subroutine zonal_mass_flux(h, u, uh, nx, ny, targets, hmin, itmax)
    real(kind=8), intent(in) :: h(0:nx+1, 0:ny+1), u(0:nx, ny)
    real(kind=8), intent(out) :: uh(0:nx, ny)
    integer, intent(in) :: nx, ny, itmax
    real(kind=8), intent(in) :: targets(ny), hmin
    real(kind=8) :: hrow(0:nx+1), urow(0:nx), hl(nx)
    real(kind=8) :: du, uf, hface
    real(kind=8) :: hr(nx)
    integer :: i, j, iters
    do j = 1, ny
      do i = 0, nx + 1
        hrow(i) = h(i, j)
      end do
      do i = 0, nx
        urow(i) = u(i, j)
      end do
      call ppm_reconstruction(hrow, hl, hr, nx)
      call ppm_limit_pos(hl, hr, hrow, nx, hmin)
      call check_recon(hrow, hl, hr, nx)
      du = 0.0d0
      iters = 0
      call zonal_flux_adjust(urow, hl, hr, nx, targets(j), du, itmax, iters)
      do i = 1, nx - 1
        uf = urow(i) + du
        if (uf >= 0.0d0) then
          hface = hr(i)
        else
          hface = hl(i+1)
        end if
        uh(i, j) = uf * hface
      end do
      uh(0, j) = 0.0d0
      uh(nx, j) = 0.0d0
    end do
  end subroutine zonal_mass_flux

  subroutine merid_mass_flux(h, v, vh, nx, ny, targets, hmin, itmax)
    real(kind=8), intent(in) :: h(0:nx+1, 0:ny+1), v(nx, 0:ny)
    real(kind=8), intent(out) :: vh(nx, 0:ny)
    integer, intent(in) :: nx, ny, itmax
    real(kind=8), intent(in) :: targets(nx), hmin
    real(kind=8) :: hcol(0:ny+1), vcol(0:ny), hl(ny)
    real(kind=8) :: dv, vf, hface
    real(kind=8) :: hr(ny)
    integer :: i, j, iters
    do i = 1, nx
      do j = 0, ny + 1
        hcol(j) = h(i, j)
      end do
      do j = 0, ny
        vcol(j) = v(i, j)
      end do
      call ppm_reconstruction(hcol, hl, hr, ny)
      call ppm_limit_pos(hl, hr, hcol, ny, hmin)
      call check_recon(hcol, hl, hr, ny)
      dv = 0.0d0
      iters = 0
      call merid_flux_adjust(vcol, hl, hr, ny, targets(i), dv, itmax, iters)
      do j = 1, ny - 1
        vf = vcol(j) + dv
        if (vf >= 0.0d0) then
          hface = hr(j)
        else
          hface = hl(j+1)
        end if
        vh(i, j) = vf * hface
      end do
      vh(i, 0) = 0.0d0
      vh(i, ny) = 0.0d0
    end do
  end subroutine merid_mass_flux

  subroutine continuity_ppm(h, u, v, uh, vh, nx, ny, dt, dx, ztargets, mtargets, hmin, itmax, maxcfl)
    real(kind=8), intent(inout) :: h(0:nx+1, 0:ny+1)
    real(kind=8), intent(in) :: u(0:nx, ny), v(nx, 0:ny)
    real(kind=8), intent(out) :: uh(0:nx, ny), vh(nx, 0:ny)
    integer, intent(in) :: nx, ny, itmax
    real(kind=8), intent(in) :: dt, dx, hmin
    real(kind=8), intent(in) :: ztargets(ny), mtargets(nx)
    real(kind=8), intent(out) :: maxcfl
    real(kind=8) :: hnew, dtdx, cfl
    integer :: i, j
    call zonal_mass_flux(h, u, uh, nx, ny, ztargets, hmin, itmax)
    call merid_mass_flux(h, v, vh, nx, ny, mtargets, hmin, itmax)
    dtdx = dt / dx
    maxcfl = 0.0d0
    do j = 1, ny
      do i = 1, nx
        hnew = h(i, j) - dtdx * (uh(i, j) - uh(i-1, j)) &
               - dtdx * (vh(i, j) - vh(i, j-1))
        ! MOM6's fatal consistency check: a negative layer thickness
        ! aborts the run.
        if (hnew < 0.0d0) then
          stop 21
        end if
        cfl = abs(u(i, j)) * dtdx / (hnew + hmin)
        maxcfl = max(maxcfl, cfl)
        h(i, j) = hnew
      end do
    end do
  end subroutine continuity_ppm
end module mom_continuity_ppm

program mom6_main
  use mom_continuity_ppm, only: continuity_ppm
  implicit none
  integer :: nx, ny, nz, nsteps, itmax
  real(kind=8) :: h(0:__NX__+1, 0:__NY__+1)
  real(kind=8) :: u(0:__NX__, __NY__), v(__NX__, 0:__NY__)
  real(kind=8) :: uh(0:__NX__, __NY__), vh(__NX__, 0:__NY__)
  real(kind=8) :: ztargets(__NY__), mtargets(__NX__)
  real(kind=8) :: press(__NX__, __NY__, __NZ__), rho(__NX__, __NY__, __NZ__)
  real(kind=8) :: dt, dx, hmin, maxcfl, globcfl, psum, tcoef, pi
  integer :: i, j, k, step
  nx = __NX__
  ny = __NY__
  nz = __NZ__
  nsteps = __STEPS__
  itmax = __ITMAX__
  dt = 900.0d0
  dx = 20000.0d0
  hmin = 1.0d-6
  pi = 3.14159265358979d0
  ! Layer thickness with interior extrema along both axes (the slope
  ! limiter activates there — where the reconstruction consistency check
  ! is armed).
  do j = 0, ny + 1
    do i = 0, nx + 1
      h(i, j) = 2.0d0 + 0.9d0 * sin(pi * j / (ny + 1.0d0)) &
                * sin(2.0d0 * pi * i / (nx + 1.0d0)) &
                + 0.4d0 * cos(pi * i / (nx + 1.0d0))
    end do
  end do
  do j = 1, ny
    do i = 0, nx
      u(i, j) = 1.1d0 * sin(pi * j / (ny + 1.0d0)) &
                * cos(pi * (i + 0.5d0) / (nx + 1.0d0))
    end do
  end do
  do j = 0, ny
    do i = 1, nx
      v(i, j) = -0.9d0 * sin(pi * (j + 0.5d0) / (ny + 1.0d0)) &
                * cos(pi * i / (nx + 1.0d0))
    end do
  end do
  ! Barotropic transport targets (the roots lie inside the adjusters'
  ! brackets for any target in this range).
  do j = 1, ny
    ztargets(j) = 2.0d0 * sin(pi * j / (ny + 1.0d0))
  end do
  do i = 1, nx
    mtargets(i) = -1.5d0 * cos(pi * i / (nx + 1.0d0))
  end do
  do k = 1, nz
    do j = 1, ny
      do i = 1, nx
        rho(i, j, k) = 1025.0d0 + 0.01d0 * k
        press(i, j, k) = 0.0d0
      end do
    end do
  end do
  do step = 1, nsteps
    maxcfl = 0.0d0
    call continuity_ppm(h, u, v, uh, vh, nx, ny, dt, dx, ztargets, mtargets, hmin, itmax, maxcfl)
    ! --- driver-side physics (untargeted): hydrostatic pressure
    ! integration down each column (a recurrence) with a nonlinear
    ! equation of state ---
    tcoef = 2.0d-4 * (1.0d0 + 0.05d0 * sin(0.2d0 * step))
    do j = 1, ny
      do i = 1, nx
        press(i, j, 1) = 9.8d0 * rho(i, j, 1) * h(i, j)
        do k = 2, nz
          rho(i, j, k) = rho(i, j, k) * (1.0d0 - tcoef * exp(-press(i, j, k-1) * 1.0d-7))
          press(i, j, k) = press(i, j, k-1) + 9.8d0 * rho(i, j, k) * h(i, j)
        end do
      end do
    end do
    psum = 0.0d0
    do j = 1, ny
      do i = 1, nx
        psum = psum + press(i, j, nz)
      end do
    end do
    globcfl = 0.0d0
    call mpi_allreduce_max(maxcfl, globcfl)
    call mpi_allreduce_sum(psum, psum)
    ! The paper's MOM6 metric: max CFL per step.
    call prose_record('cfl', globcfl)
  end do
end program mom6_main
