! Miniature MPAS-A: a 1D split-explicit shallow-water atmosphere with the
! paper's procedure inventory for the `atm_time_integration` hotspot.
!
! Structure mirrors the real model's time integration:
!   * `atm_srk3` — the 3-stage Runge-Kutta driver with an acoustic-substep
!     loop (NOT a tuning target: it is the boundary across which full-
!     precision state flows into the tuned work routines, the Figure-7
!     effect).
!   * `atm_compute_dyn_tend_work` — the large slow-tendency kernel
!     (advection via the high-order `flux4`/`flux3` reconstruction
!     functions, horizontal diffusion, kinetic-energy gradient).
!   * `atm_advance_acoustic_step_work` — the thin fast-wave kernel called
!     once per acoustic substep per stage (high call volume, little work
!     per call).
!   * `atm_recover_large_step_variables_work` — stage recombination.
!   * `flux4` / `flux3` — small pure reconstruction functions called per
!     cell: inline candidates whose mixed-precision wrappers devectorize
!     the tendency loops (the Figure-6 `flux` slowdown).
! `mpas_physics::physics_tend` is the untargeted driver-side physics
! (vertical implicit smoothing, a recurrence) that gives the hotspot its
! realistic ~15% share of total time.
!
! Correctness: cell kinetic energy recorded each step (the paper's MPAS-A
! metric: max relative error over cells per step, L2 over time).

! Driver-side physics, spread across six modules the way a real model's
! CPU profile is: each is comparable to — but smaller than — the targeted
! time-integration module (Section II-C: "CPU time distributed between
! many hotspots"). Each parameterization owns a slice of the column.
module mpas_atm_radiation_sw
contains
  subroutine radiation_sw(theta, nc, nz, klo, khi)
    real(kind=8), intent(inout) :: theta(nc, nz)
    integer, intent(in) :: nc, nz, klo, khi
    real(kind=8) :: flux, tau
    integer :: i, k
    do i = 1, nc
      flux = 340.0d0
      do k = klo, khi
        tau = 0.02d0 * exp(-0.1d0 * k)
        flux = flux * (1.0d0 - tau)
        theta(i, k) = theta(i, k) + 1.0d-6 * flux
      end do
    end do
  end subroutine radiation_sw
end module mpas_atm_radiation_sw

module mpas_atm_radiation_lw
contains
  subroutine radiation_lw(theta, nc, nz, klo, khi)
    real(kind=8), intent(inout) :: theta(nc, nz)
    integer, intent(in) :: nc, nz, klo, khi
    real(kind=8) :: emis, cool
    integer :: i, k
    do i = 1, nc
      cool = 0.0d0
      do k = klo, khi
        emis = 0.8d0 + 0.01d0 * sin(0.3d0 * k)
        cool = cool + 5.67d-8 * emis * 1.0d-4 * theta(i, k)
        theta(i, k) = theta(i, k) - 1.0d-4 * cool
      end do
    end do
  end subroutine radiation_lw
end module mpas_atm_radiation_lw

module mpas_atm_microphysics
contains
  subroutine microphysics(theta, nc, nz, klo, khi)
    real(kind=8), intent(inout) :: theta(nc, nz)
    integer, intent(in) :: nc, nz, klo, khi
    real(kind=8) :: qsat, cond
    integer :: i, k
    do i = 1, nc
      do k = klo, khi
        qsat = 3.8d-3 * exp(17.27d0 * (theta(i, k) - 290.0d0) / 250.0d0)
        cond = 0.5d0 * (qsat - 3.0d-3)
        theta(i, k) = theta(i, k) + 1.0d-5 * cond + 1.0d-7 * theta(i, 1)
      end do
    end do
  end subroutine microphysics
end module mpas_atm_microphysics

module mpas_atm_boundary_layer
contains
  subroutine pbl_mixing(theta, nc, nz, klo, khi)
    real(kind=8), intent(inout) :: theta(nc, nz)
    integer, intent(in) :: nc, nz, klo, khi
    real(kind=8) :: w, below
    integer :: i, k
    do i = 1, nc
      below = theta(i, klo)
      do k = klo, khi
        w = 0.3d0 * below + 0.7d0 * theta(i, k)
        below = theta(i, k)
        theta(i, k) = w + 0.001d0 * sin(w)
      end do
    end do
  end subroutine pbl_mixing
end module mpas_atm_boundary_layer

module mpas_atm_lsm
contains
  subroutine land_surface(theta, nc, nz, klo, khi)
    real(kind=8), intent(inout) :: theta(nc, nz)
    integer, intent(in) :: nc, nz, klo, khi
    real(kind=8) :: stress, drag
    integer :: i, k
    do i = 1, nc
      stress = 0.0d0
      do k = klo, khi
        drag = 1.0d-3 * log(1.0d0 + theta(i, k) * 0.01d0)
        stress = stress + drag
        theta(i, k) = theta(i, k) - 1.0d-6 * stress
      end do
    end do
  end subroutine land_surface
end module mpas_atm_lsm

module mpas_atm_gwdo
contains
  subroutine gravity_wave_drag(theta, nc, nz, klo, khi)
    real(kind=8), intent(inout) :: theta(nc, nz)
    integer, intent(in) :: nc, nz, klo, khi
    real(kind=8) :: amp, drag
    integer :: i, k
    do i = 1, nc
      amp = 1.0d-3 * cos(0.2d0 * i)
      do k = klo, khi
        drag = amp * exp(-0.05d0 * k) * theta(i, k)
        theta(i, k) = theta(i, k) - 1.0d-7 * drag
        amp = 0.9d0 * amp
      end do
    end do
  end subroutine gravity_wave_drag
end module mpas_atm_gwdo

module atm_time_integration
contains
  function flux4(qm1, q0, qp1, qp2) result(fl)
    real(kind=8) :: qm1, q0, qp1, qp2, fl
    fl = (7.0d0 * (q0 + qp1) - (qm1 + qp2)) / 12.0d0
  end function flux4

  function flux3(qm1, q0, qp1) result(fl)
    real(kind=8) :: qm1, q0, qp1, fl
    fl = (2.0d0 * q0 + 5.0d0 * qp1 - qm1) / 6.0d0
  end function flux3

  subroutine atm_compute_dyn_tend_work(u, h, hs, tend_u, tend_h, nc, dx, gravity, kdiff)
    real(kind=8), intent(in) :: u(-1:nc+2), h(-1:nc+2), hs(-1:nc+2)
    real(kind=8), intent(out) :: tend_u(-1:nc+2), tend_h(-1:nc+2)
    integer, intent(in) :: nc
    real(kind=8), intent(in) :: dx, gravity, kdiff
    real(kind=8) :: fh(-1:nc+2), fu(-1:nc+2)
    real(kind=8) :: he, ue, ke_l, ke_r, grad_b, lap_u, rdx, bfix
    ! The reference-energy correction chain — the precision "knob" the
    ! search isolates in this routine. `bias` carries the domain-mean
    ! kinetic energy on top of a large reference geopotential, so its
    ! value is a catastrophic cancellation: benign in 64-bit (it recovers
    ! ~0), an O(1e-2) artifact in 32-bit that biases every momentum
    ! tendency. It is per-call scalar work: keeping it in 64-bit costs
    ! almost nothing — which is why the paper's frontier variants are both
    ! more correct *and* as fast as uniform 32-bit.
    real(kind=8) :: phi0, gsum, gmean, bias
    integer :: i
    rdx = 1.0d0 / dx
    phi0 = 1.0d5
    ! Mass and momentum fluxes at faces via high-order reconstruction.
    do i = 1, nc + 1
      he = flux4(h(i-2), h(i-1), h(i), h(i+1))
      ue = flux3(u(i-1), u(i), u(i+1))
      ! Perturbation mass flux only: the mean-depth part is integrated by
      ! the acoustic step (no double counting).
      fh(i) = (he - 100.0d0) * ue
      fu(i) = 0.5d0 * ue * ue
    end do
    ! Reference-frame energy correction (per-call scalar chain).
    gsum = 0.0d0
    do i = 1, nc
      gsum = gsum + fu(i)
    end do
    gmean = gsum / nc
    bias = (phi0 + gmean) - phi0
    bfix = (bias - gmean) * rdx
    ! Tendencies: flux divergence, bathymetry gradient, KE gradient,
    ! horizontal diffusion, reference correction.
    do i = 1, nc
      ke_l = fu(i)
      ke_r = fu(i+1)
      grad_b = gravity * (hs(i+1) - hs(i-1)) * 0.5d0 * rdx
      lap_u = kdiff * (u(i+1) - 2.0d0 * u(i) + u(i-1)) * rdx * rdx
      tend_u(i) = -(ke_r - ke_l) * rdx - grad_b + lap_u - bfix
      tend_h(i) = -(fh(i+1) - fh(i)) * rdx
    end do
  end subroutine atm_compute_dyn_tend_work

  subroutine atm_advance_acoustic_step_work(u, h, tend_u, tend_h, nc, dts, grav, hmean, rdx)
    real(kind=8), intent(inout) :: u(-1:nc+2), h(-1:nc+2)
    real(kind=8), intent(in) :: tend_u(-1:nc+2), tend_h(-1:nc+2)
    integer, intent(in) :: nc
    real(kind=8), intent(in) :: dts, grav, hmean, rdx
    real(kind=8) :: dpdx, dudx
    integer :: i
    do i = 1, nc
      dpdx = grav * (h(i+1) - h(i-1)) * 0.5d0 * rdx
      u(i) = u(i) + dts * (tend_u(i) - dpdx)
    end do
    do i = 1, nc
      dudx = (u(i+1) - u(i-1)) * 0.5d0 * rdx
      h(i) = h(i) + dts * (tend_h(i) - hmean * dudx)
    end do
  end subroutine atm_advance_acoustic_step_work

  subroutine atm_recover_large_step_variables_work(u, h, u0, h0, nc, wnew)
    real(kind=8), intent(inout) :: u(-1:nc+2), h(-1:nc+2)
    real(kind=8), intent(in) :: u0(-1:nc+2), h0(-1:nc+2)
    integer, intent(in) :: nc
    real(kind=8), intent(in) :: wnew
    real(kind=8) :: wold
    integer :: i
    wold = 1.0d0 - wnew
    do i = 1, nc
      u(i) = wnew * u(i) + wold * u0(i)
      h(i) = wnew * h(i) + wold * h0(i)
    end do
  end subroutine atm_recover_large_step_variables_work

  ! The RK3 driver: NOT a tuning target. Holds the full-precision state and
  ! ghost handling; every call below crosses the tuning boundary.
  subroutine atm_srk3(u, h, hs, nc, dx, dt, ns)
    real(kind=8), intent(inout) :: u(-1:nc+2), h(-1:nc+2)
    real(kind=8), intent(in) :: hs(-1:nc+2)
    integer, intent(in) :: nc, ns
    real(kind=8), intent(in) :: dx, dt
    real(kind=8) :: u0(-1:nc+2), h0(-1:nc+2)
    real(kind=8) :: tend_u(-1:nc+2), tend_h(-1:nc+2)
    real(kind=8) :: rk_dt, dts, gravity, kdiff, hmean, rdx
    integer :: stage, sub, i
    gravity = 9.80616d0
    kdiff = 40.0d0
    hmean = 100.0d0
    rdx = 1.0d0 / dx
    u0 = u
    h0 = h
    do stage = 1, 3
      rk_dt = dt / (4 - stage)
      ! Periodic ghost cells on the full-precision state.
      u(0) = u(nc)
      u(-1) = u(nc-1)
      u(nc+1) = u(1)
      u(nc+2) = u(2)
      h(0) = h(nc)
      h(-1) = h(nc-1)
      h(nc+1) = h(1)
      h(nc+2) = h(2)
      call atm_compute_dyn_tend_work(u, h, hs, tend_u, tend_h, nc, dx, gravity, kdiff)
      ! Restart the stage from the step-start state.
      do i = -1, nc + 2
        u(i) = u0(i)
        h(i) = h0(i)
      end do
      dts = rk_dt / ns
      do sub = 1, ns
        call atm_advance_acoustic_step_work(u, h, tend_u, tend_h, nc, dts, gravity, hmean, rdx)
        u(0) = u(nc)
        u(-1) = u(nc-1)
        u(nc+1) = u(1)
        u(nc+2) = u(2)
        h(0) = h(nc)
        h(-1) = h(nc-1)
        h(nc+1) = h(1)
        h(nc+2) = h(2)
      end do
      call atm_recover_large_step_variables_work(u, h, u0, h0, nc, 1.0d0)
    end do
  end subroutine atm_srk3
end module atm_time_integration

program mpas_main
  use atm_time_integration, only: atm_srk3
  use mpas_atm_radiation_sw, only: radiation_sw
  use mpas_atm_radiation_lw, only: radiation_lw
  use mpas_atm_microphysics, only: microphysics
  use mpas_atm_boundary_layer, only: pbl_mixing
  use mpas_atm_lsm, only: land_surface
  use mpas_atm_gwdo, only: gravity_wave_drag
  implicit none
  integer :: nc, nz, nsteps, ns
  real(kind=8) :: u(-1:__NC__+2), h(-1:__NC__+2), hs(-1:__NC__+2)
  real(kind=8) :: theta(__NC__, __NZ__), ke(__NC__)
  real(kind=8) :: dx, dt, x, maxke, globmax
  integer :: i, k, step, ks
  nc = __NC__
  nz = __NZ__
  nsteps = __STEPS__
  ns = __NS__
  dx = 1000.0d0
  dt = 16.0d0
  ! Initial condition: fluid at rest over a ridge, with a height anomaly.
  do i = -1, nc + 2
    x = (i - nc / 2) * dx / (nc * dx / 12.0d0)
    h(i) = 100.0d0 + 4.0d0 * exp(-x * x)
    hs(i) = 0.5d0 * sin(6.283185307179586d0 * i / nc)
    u(i) = 0.0d0
  end do
  do i = 1, nc
    do k = 1, nz
      theta(i, k) = 290.0d0 + 0.01d0 * k + 0.3d0 * sin(0.7d0 * i)
    end do
  end do
  do step = 1, nsteps
    call atm_srk3(u, h, hs, nc, dx, dt, ns)
    ks = nz / 6
    call radiation_sw(theta, nc, nz, 1, ks)
    call radiation_lw(theta, nc, nz, ks + 1, 2 * ks)
    call microphysics(theta, nc, nz, 2 * ks + 1, 3 * ks)
    call pbl_mixing(theta, nc, nz, 3 * ks + 1, 4 * ks)
    call land_surface(theta, nc, nz, 4 * ks + 1, 5 * ks)
    call gravity_wave_drag(theta, nc, nz, 5 * ks + 1, nz)
    ! Diagnostics: cell kinetic energy (the correctness metric field) and a
    ! global reduction (halo/diagnostic latency on the driver side).
    maxke = 0.0d0
    do i = 1, nc
      ke(i) = 0.5d0 * h(i) * u(i) * u(i)
      maxke = max(maxke, ke(i))
    end do
    globmax = 0.0d0
    call mpi_allreduce_max(maxke, globmax)
    call prose_record_array('ke', ke)
    call prose_record('maxke', globmax)
  end do
end program mpas_main
