//! Abstract-interpretation domains for static range and round-off analysis.
//!
//! This module holds the *value domains* and their transfer functions — an
//! interval domain over the fp64 shadow value and a first-order absolute
//! round-off error domain bounding `|primary − shadow|` under a candidate
//! precision assignment. The IR walker that drives these domains lives in
//! `prose-interp` (`prose_interp::absint`): the interpreter crate already
//! depends on this one, so the walk must sit on that side of the boundary.
//!
//! ## Error model
//!
//! Every abstract value tracks `(iv, err, prec)`:
//!
//! * `iv` — an interval containing every fp64 *shadow* value the expression
//!   can take along any executed path;
//! * `err` — an upper bound on `|primary − shadow|`, the divergence the
//!   shadow machinery ([`prose-interp`'s shadow execution]) observes. Each
//!   operation adds `u(prec)·max|primary result| + u64·max|shadow result|`
//!   on top of first-order propagation of the operand errors, so the bound
//!   covers both the variant's rounding *and* the shadow's own fp64
//!   rounding — exactly the quantity `shadow_rel` measures;
//! * `prec` — the primary representation: `Some(Single|Double)` for values
//!   held in typed storage, `None` for kind-generic literals (which both
//!   primary and shadow evaluate identically in f64, contributing no
//!   divergence until they are stored into a typed slot).
//!
//! Subtraction does not amplify *absolute* error, but catastrophic
//! cancellation shows up the moment a bound is made relative: the relative
//! bound divides by `min|iv|`, so a difference interval near zero inflates
//! the relative error by exactly the cancellation condition number
//! `(|a| + |b|) / |a − b|`. [`cancellation_kappa`] exposes that factor for
//! the lint suite and certificate reports.

use prose_fortran::ast::{BinOp, Expr, FpPrecision, UnOp};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId, ScopeKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Unit roundoff of IEEE binary32 (2⁻²⁴).
pub const U32: f64 = 5.960_464_477_539_063e-8;
/// Unit roundoff of IEEE binary64 (2⁻⁵³).
pub const U64: f64 = 1.110_223_024_625_156_5e-16;

/// Unit roundoff for a precision level.
pub fn unit_roundoff(p: FpPrecision) -> f64 {
    match p {
        FpPrecision::Single => U32,
        FpPrecision::Double => U64,
    }
}

/// Near-zero fallback of the shadow's relative-error measure: below this
/// magnitude the divergence is compared absolutely (mirrors `shadow_rel`).
pub const REL_FLOOR: f64 = 1e-30;

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// A closed interval `[lo, hi]` over f64, `±∞` permitted. The empty interval
/// is not representable — unreachable states are handled by the walker
/// (`Option<Interval>` at the state level).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(!(lo.is_nan() || hi.is_nan()) || (lo.is_nan() && hi.is_nan()));
        if lo.is_nan() || hi.is_nan() {
            return Self::top();
        }
        Interval { lo, hi }
    }

    pub fn point(x: f64) -> Self {
        if x.is_nan() {
            return Self::top();
        }
        Interval { lo: x, hi: x }
    }

    /// `[-∞, +∞]` — no information.
    pub fn top() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    pub fn is_top(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// Both bounds finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// A single point (used to recover concrete loop bounds).
    pub fn singleton(&self) -> Option<f64> {
        (self.lo == self.hi && self.lo.is_finite()).then_some(self.lo)
    }

    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Least upper bound (interval hull).
    pub fn join(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Classic widening: any bound that moved since `prev` jumps to ±∞.
    pub fn widen(&self, prev: &Interval) -> Interval {
        Interval {
            lo: if self.lo < prev.lo {
                f64::NEG_INFINITY
            } else {
                self.lo
            },
            hi: if self.hi > prev.hi {
                f64::INFINITY
            } else {
                self.hi
            },
        }
    }

    /// `self ⊑ o` (containment).
    pub fn subset_of(&self, o: &Interval) -> bool {
        self.lo >= o.lo && self.hi <= o.hi
    }

    /// Largest absolute value in the interval.
    pub fn max_abs(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest absolute value in the interval (0 when it spans zero).
    pub fn min_abs(&self) -> f64 {
        if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Inflate both ends by `d` (primary-value hull given an error bound).
    pub fn inflate(&self, d: f64) -> Interval {
        if d == 0.0 {
            return *self;
        }
        if !d.is_finite() {
            return Interval::top();
        }
        Interval {
            lo: self.lo - d,
            hi: self.hi + d,
        }
    }

    pub fn add(&self, o: &Interval) -> Interval {
        Interval::new(sound_lo(self.lo + o.lo), sound_hi(self.hi + o.hi))
    }

    pub fn sub(&self, o: &Interval) -> Interval {
        Interval::new(sound_lo(self.lo - o.hi), sound_hi(self.hi - o.lo))
    }

    pub fn neg(&self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    pub fn mul(&self, o: &Interval) -> Interval {
        let cands = [
            mul_ext(self.lo, o.lo),
            mul_ext(self.lo, o.hi),
            mul_ext(self.hi, o.lo),
            mul_ext(self.hi, o.hi),
        ];
        let lo = cands.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cands.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(sound_lo(lo), sound_hi(hi))
    }

    /// Division; `⊤` when the divisor may be zero.
    pub fn div(&self, o: &Interval) -> Interval {
        if o.lo <= 0.0 && o.hi >= 0.0 {
            return Interval::top();
        }
        let cands = [
            self.lo / o.lo,
            self.lo / o.hi,
            self.hi / o.lo,
            self.hi / o.hi,
        ];
        let lo = cands.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cands.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(sound_lo(lo), sound_hi(hi))
    }

    pub fn abs(&self) -> Interval {
        Interval {
            lo: self.min_abs(),
            hi: self.max_abs(),
        }
    }

    /// `sqrt`; clamps the negative part to zero (the machine faults there,
    /// so those paths never store).
    pub fn sqrt(&self) -> Interval {
        Interval::new(self.lo.max(0.0).sqrt(), self.hi.max(0.0).sqrt())
    }

    pub fn exp(&self) -> Interval {
        Interval::new(sound_lo(self.lo.exp()), sound_hi(self.hi.exp()))
    }

    /// Natural log; `⊤` when the argument may be ≤ 0.
    pub fn ln(&self) -> Interval {
        if self.lo <= 0.0 {
            return Interval::top();
        }
        Interval::new(self.lo.ln(), self.hi.ln())
    }

    /// `sin` over the interval. Point intervals evaluate exactly (the
    /// dynamic shadow calls the very same libm, so the point *is* the
    /// shadow value). Narrow intervals get the tight envelope: endpoint
    /// values hulled with any interior extremum (`±1` at `π/2 + kπ`),
    /// padded outward for libm slop. Spans of a full period — or arguments
    /// too large for the extremum scan's `x/π` arithmetic to be exact
    /// enough — fall back to `[-1, 1]`, which is always sound.
    pub fn sin(&self) -> Interval {
        match self.singleton() {
            Some(x) => Interval::point(x.sin()),
            None => trig_env(self, f64::sin, std::f64::consts::FRAC_PI_2),
        }
    }

    pub fn cos(&self) -> Interval {
        match self.singleton() {
            Some(x) => Interval::point(x.cos()),
            None => trig_env(self, f64::cos, 0.0),
        }
    }

    pub fn min(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    pub fn max(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

/// `0·∞` in interval arithmetic is 0 (the factor is exactly zero on that
/// bound), not NaN.
fn mul_ext(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        0.0
    } else {
        p
    }
}

/// Round a computed lower bound down an ulp so float evaluation of the
/// transfer function itself cannot under-approximate.
fn sound_lo(x: f64) -> f64 {
    if x.is_finite() {
        next_down(x)
    } else {
        x
    }
}

fn sound_hi(x: f64) -> f64 {
    if x.is_finite() {
        next_up(x)
    } else {
        x
    }
}

fn next_up(x: f64) -> f64 {
    let bits = x.to_bits();
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let next = if x == 0.0 {
        1
    } else if x > 0.0 {
        bits + 1
    } else {
        bits - 1
    };
    f64::from_bits(next)
}

fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

// ---------------------------------------------------------------------------
// Combined value × round-off error domain
// ---------------------------------------------------------------------------

/// One abstract FP value: shadow interval, `|primary − shadow|` bound, and
/// the primary representation's precision (`None` = kind-generic literal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    pub iv: Interval,
    pub err: f64,
    pub prec: Option<FpPrecision>,
}

impl AbsVal {
    /// No information: any value, unbounded divergence.
    pub fn top() -> Self {
        AbsVal {
            iv: Interval::top(),
            err: f64::INFINITY,
            prec: Some(FpPrecision::Double),
        }
    }

    /// An exact kind-generic literal: both primary and shadow hold the same
    /// f64, so there is no divergence until it lands in typed storage.
    pub fn lit(x: f64) -> Self {
        AbsVal {
            iv: Interval::point(x),
            err: 0.0,
            prec: None,
        }
    }

    /// An exact typed value (e.g. a zero-initialized slot).
    pub fn exact(x: f64, prec: FpPrecision) -> Self {
        AbsVal {
            iv: Interval::point(x),
            err: 0.0,
            prec: Some(prec),
        }
    }

    pub fn join(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(&o.iv),
            err: self.err.max(o.err),
            prec: promote(self.prec, o.prec),
        }
    }

    pub fn widen(&self, prev: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.widen(&prev.iv),
            err: if self.err > prev.err {
                f64::INFINITY
            } else {
                self.err
            },
            prec: promote(self.prec, prev.prec),
        }
    }

    /// `self ⊑ o`.
    pub fn subset_of(&self, o: &AbsVal) -> bool {
        self.iv.subset_of(&o.iv) && self.err <= o.err
    }

    /// Hull of the *primary* values (shadow interval inflated by the error).
    pub fn primary_iv(&self) -> Interval {
        self.iv.inflate(self.err)
    }

    /// Upper bound on `shadow_rel(primary, shadow)` over all values this
    /// abstract value admits, with the shadow's near-zero absolute fallback.
    pub fn rel_bound(&self) -> f64 {
        rel_bound(&self.iv, self.err)
    }

    fn round(iv: &Interval, raw_err: f64, prec: Option<FpPrecision>) -> AbsVal {
        // One op's rounding: the primary rounds at its precision, the shadow
        // at f64. Both terms scale by the largest magnitude either side can
        // produce.
        let u = prec.map_or(0.0, unit_roundoff);
        let primary_max = iv.max_abs() + if raw_err.is_finite() { raw_err } else { 0.0 };
        let err = if raw_err.is_finite() && iv.is_finite() && !overflows(primary_max, prec) {
            raw_err + u * primary_max + U64 * iv.max_abs()
        } else {
            f64::INFINITY
        };
        AbsVal { iv: *iv, err, prec }
    }

    pub fn add(&self, o: &AbsVal) -> AbsVal {
        let iv = self.iv.add(&o.iv);
        AbsVal::round(&iv, self.err + o.err, promote(self.prec, o.prec))
    }

    pub fn sub(&self, o: &AbsVal) -> AbsVal {
        let iv = self.iv.sub(&o.iv);
        AbsVal::round(&iv, self.err + o.err, promote(self.prec, o.prec))
    }

    pub fn neg(&self) -> AbsVal {
        AbsVal {
            iv: self.iv.neg(),
            err: self.err,
            prec: self.prec,
        }
    }

    pub fn mul(&self, o: &AbsVal) -> AbsVal {
        let iv = self.iv.mul(&o.iv);
        // |a'b' − ab| ≤ |a|err_b + |b|err_a + err_a·err_b.
        let raw = self.iv.max_abs() * o.err + o.iv.max_abs() * self.err + self.err * o.err;
        AbsVal::round(&iv, raw, promote(self.prec, o.prec))
    }

    pub fn div(&self, o: &AbsVal) -> AbsVal {
        let iv = self.iv.div(&o.iv);
        // Quotient rule with the primary divisor bounded away from zero:
        // |a'/b' − a/b| ≤ (|b|err_a + |a|err_b) / (|b|·|b'|),
        // |b'| ≥ min|b| − err_b.
        let bmin = o.iv.min_abs();
        let bmin_primary = bmin - o.err;
        let raw = if bmin > 0.0 && bmin_primary > 0.0 {
            (bmin * self.err + self.iv.max_abs() * o.err) / (bmin * bmin_primary)
        } else {
            f64::INFINITY
        };
        AbsVal::round(&iv, raw, promote(self.prec, o.prec))
    }

    /// Power with an integer exponent (repeated multiplication, the only
    /// form the models use; fractional powers fall back to `⊤` magnitude).
    pub fn powi(&self, n: i64) -> AbsVal {
        let mut acc = AbsVal::lit(1.0);
        let (base, k) = if n >= 0 {
            (*self, n)
        } else {
            (AbsVal::lit(1.0).div(self), -n)
        };
        for _ in 0..k.min(64) {
            acc = acc.mul(&base);
        }
        if k > 64 {
            AbsVal::top()
        } else {
            acc
        }
    }

    pub fn abs(&self) -> AbsVal {
        AbsVal {
            iv: self.iv.abs(),
            err: self.err,
            prec: self.prec,
        }
    }

    /// Unary intrinsic with Lipschitz bound `lip` on the interval and the
    /// image interval `iv` (first-order: err_out ≤ lip·err_in + rounding).
    pub fn lipschitz(&self, iv: Interval, lip: f64) -> AbsVal {
        let raw = if lip.is_finite() && self.err.is_finite() {
            lip * self.err
        } else {
            f64::INFINITY
        };
        AbsVal::round(&iv, raw, self.prec)
    }

    pub fn sqrt(&self) -> AbsVal {
        let iv = self.iv.sqrt();
        // d/dx √x = 1/(2√x); evaluated at the smallest magnitude the
        // *primary* argument can reach.
        let lo_primary = (self.iv.lo - self.err).max(0.0);
        let lip = if lo_primary > 0.0 {
            0.5 / lo_primary.sqrt()
        } else if self.err == 0.0 && self.iv.singleton() == Some(0.0) {
            0.0
        } else {
            f64::INFINITY
        };
        self.lipschitz(iv, lip)
    }

    pub fn exp(&self) -> AbsVal {
        let iv = self.iv.exp();
        // d/dx eˣ = eˣ ≤ e^(hi + err).
        let lip = if self.err.is_finite() {
            (self.iv.hi + self.err).exp()
        } else {
            f64::INFINITY
        };
        self.lipschitz(iv, lip)
    }

    pub fn ln(&self) -> AbsVal {
        let iv = self.iv.ln();
        let lo_primary = self.iv.lo - self.err;
        let lip = if lo_primary > 0.0 {
            1.0 / lo_primary
        } else {
            f64::INFINITY
        };
        self.lipschitz(iv, lip)
    }

    pub fn sin(&self) -> AbsVal {
        self.lipschitz(self.iv.sin(), 1.0)
    }

    pub fn cos(&self) -> AbsVal {
        self.lipschitz(self.iv.cos(), 1.0)
    }

    pub fn min(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.min(&o.iv),
            err: self.err.max(o.err),
            prec: promote(self.prec, o.prec),
        }
    }

    pub fn max(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.max(&o.iv),
            err: self.err.max(o.err),
            prec: promote(self.prec, o.prec),
        }
    }

    /// A store into typed storage of precision `p`: the primary value is
    /// re-rounded at `p`, the shadow keeps its f64 value unrounded.
    pub fn store(&self, p: FpPrecision) -> AbsVal {
        let u = unit_roundoff(p);
        let primary_max = self.iv.max_abs() + if self.err.is_finite() { self.err } else { 0.0 };
        let err = if self.err.is_finite() && self.iv.is_finite() && !overflows(primary_max, Some(p))
        {
            self.err + u * primary_max
        } else {
            f64::INFINITY
        };
        AbsVal {
            iv: self.iv,
            err,
            prec: Some(p),
        }
    }

    /// True when this value's primary side may overflow to `±Inf` if held at
    /// precision `p` — the static trigger for the overflow pin and lint.
    pub fn may_overflow_at(&self, p: FpPrecision) -> bool {
        let primary_max = self.iv.max_abs() + if self.err.is_finite() { self.err } else { 0.0 };
        !self.err.is_finite() || !self.iv.is_finite() || overflows(primary_max, Some(p))
    }
}

/// Whether a primary magnitude bound exceeds what precision `p` can
/// represent. A silent overflow-to-Inf makes the divergence unbounded, so
/// rounding must collapse to `∞` rather than pretend `u·|x|` still holds.
fn overflows(primary_max: f64, prec: Option<FpPrecision>) -> bool {
    match prec {
        Some(FpPrecision::Single) => primary_max > f32::MAX as f64,
        Some(FpPrecision::Double) | None => primary_max > f64::MAX,
    }
}

/// Fortran promotion: double wins; kind-generic adapts to the other side.
pub fn promote(a: Option<FpPrecision>, b: Option<FpPrecision>) -> Option<FpPrecision> {
    match (a, b) {
        (Some(FpPrecision::Double), _) | (_, Some(FpPrecision::Double)) => {
            Some(FpPrecision::Double)
        }
        (Some(FpPrecision::Single), _) | (_, Some(FpPrecision::Single)) => {
            Some(FpPrecision::Single)
        }
        (None, None) => None,
    }
}

/// Tight sine-family envelope over a non-point interval: endpoint values
/// hulled with `±1` where an interior extremum lies in the span. `max_phase`
/// is where the function attains `+1` (`π/2` for sin, `0` for cos); minima
/// sit a half period later. The extremum-inclusion test is widened by a
/// magnitude-proportional slop so `x/2π` rounding can only *add* extrema
/// (sound), and endpoint evaluations are padded for libm slop.
fn trig_env(iv: &Interval, f: fn(f64) -> f64, max_phase: f64) -> Interval {
    use std::f64::consts::{PI, TAU};
    let span = iv.hi - iv.lo;
    if !span.is_finite() || span >= TAU || iv.max_abs() > 1e12 {
        return Interval::new(-1.0, 1.0);
    }
    let (a, b) = (f(iv.lo), f(iv.hi));
    let mut lo = a.min(b);
    let mut hi = a.max(b);
    let slop = iv.max_abs() * 1e-13 + 1e-13;
    let has_extremum = |phase: f64| {
        let k = ((iv.lo - phase - slop) / TAU).ceil();
        phase + k * TAU <= iv.hi + slop
    };
    if has_extremum(max_phase) {
        hi = 1.0;
    }
    if has_extremum(max_phase + PI) {
        lo = -1.0;
    }
    Interval::new((lo - 1e-15).max(-1.0), (hi + 1e-15).min(1.0))
}

/// Upper bound on `shadow_rel` over an abstract value (shadow interval `iv`,
/// divergence bound `err`), honoring the near-zero absolute fallback.
pub fn rel_bound(iv: &Interval, err: f64) -> f64 {
    if !err.is_finite() {
        return f64::INFINITY;
    }
    if iv.max_abs() < REL_FLOOR {
        err
    } else {
        err / iv.min_abs().max(REL_FLOOR)
    }
}

/// Amplification at which a subtraction counts as catastrophic: κ ≥ 2²⁰
/// turns the last 20 bits of the inputs into noise, half an f64 mantissa
/// and most of an f32's. Shared by the IR walker's cancellation guardrail
/// and the range-driven lints.
pub const CANCEL_KAPPA: f64 = 1_048_576.0;

/// The cancellation condition number of a subtraction `a − b`: how much a
/// relative error on the inputs is amplified in the result. `∞` when the
/// difference may vanish.
pub fn cancellation_kappa(a: &Interval, b: &Interval) -> f64 {
    let diff = a.sub(b);
    let denom = diff.min_abs();
    if denom == 0.0 {
        f64::INFINITY
    } else {
        (a.max_abs() + b.max_abs()) / denom
    }
}

// ---------------------------------------------------------------------------
// Analysis results: per-variable bounds keyed in the shadow name space
// ---------------------------------------------------------------------------

/// Static bound for one variable (or recorded metric key), in the shadow
/// report's `proc::var` / `@global::var` name space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarBound {
    pub name: String,
    /// Hull of every *primary* value stored to the variable.
    pub lo: f64,
    pub hi: f64,
    /// Bound on `|primary − shadow|` at any store.
    pub abs_err: f64,
    /// Bound on the shadow's relative-error measure at any store.
    pub rel_err: f64,
}

/// A subtraction site whose static cancellation condition number is large.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CancelSite {
    /// `proc:line`, the shadow key space.
    pub site: String,
    /// `(|a| + |b|) / |a − b|` amplification bound (∞ serialized as `null`).
    pub kappa: f64,
}

/// The machine-readable result of one whole-program analysis under one
/// precision assignment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BoundReport {
    /// Per-variable bounds, worst relative bound first.
    pub vars: Vec<VarBound>,
    /// Per-recorded-metric-key bounds (`prose_record*` calls).
    pub records: Vec<VarBound>,
    /// Largest finite-or-not relative bound across `vars` and `records`.
    pub worst_rel: f64,
    /// Subtraction sites with cancellation amplification ≥ 2²⁰.
    pub cancellations: Vec<CancelSite>,
    /// True when the analysis gave up (abstract step budget exhausted or
    /// call depth exceeded); all bounds are then `⊤` for untouched
    /// variables and every verdict must degrade to "undecided".
    pub incomplete: bool,
    /// Abstract operations executed.
    pub steps: u64,
}

impl BoundReport {
    pub fn var(&self, name: &str) -> Option<&VarBound> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Project the per-variable value ranges for the lint suite.
    pub fn range_map(&self) -> RangeMap {
        let mut m = RangeMap::default();
        for v in &self.vars {
            m.insert_name(&v.name, Interval::new(v.lo, v.hi));
        }
        m
    }
}

// ---------------------------------------------------------------------------
// RangeMap: variable ranges keyed for AST-side consumers (lints)
// ---------------------------------------------------------------------------

/// Per-variable value ranges keyed by the shadow name space `scope::var`,
/// where the scope is the procedure name, `@main` for the main program, or
/// `@global` for module-level variables — the same keys the shadow report
/// and the IR use.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RangeMap {
    map: BTreeMap<String, Interval>,
}

impl RangeMap {
    pub fn insert(&mut self, scope_key: &str, var: &str, iv: Interval) {
        self.insert_name(&format!("{scope_key}::{var}"), iv);
    }

    /// Insert from a shadow-space `scope::var` composite name.
    pub fn insert_name(&mut self, name: &str, iv: Interval) {
        self.map
            .entry(name.to_string())
            .and_modify(|e| *e = e.join(&iv))
            .or_insert(iv);
    }

    pub fn get(&self, scope_key: &str, var: &str) -> Option<&Interval> {
        self.map.get(&format!("{scope_key}::{var}"))
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Interval)> {
        self.map.iter()
    }

    /// Range of a *resolved* AST variable: `scope` is where the name is
    /// used; the symbol's home scope decides the key.
    pub fn lookup(&self, index: &ProgramIndex, scope: ScopeId, name: &str) -> Option<&Interval> {
        let sym = index.lookup(scope, name)?;
        self.get(&scope_key(index, sym.scope), name)
    }
}

/// The RangeMap/shadow scope key of an AST scope.
pub fn scope_key(index: &ProgramIndex, scope: ScopeId) -> String {
    let info = index.scope_info(scope);
    match info.kind {
        ScopeKind::Module => "@global".to_string(),
        ScopeKind::Main => "@main".to_string(),
        ScopeKind::Procedure => info.name.clone(),
    }
}

// ---------------------------------------------------------------------------
// AST-side interval evaluation (for the lint suite)
// ---------------------------------------------------------------------------

/// Evaluate the value interval of an AST expression under known variable
/// ranges. Returns `None` when the expression involves something the ranges
/// cannot bound (an unanalyzed call, a string, a logical). Array references
/// use the whole-array summarized range. This deliberately ignores round-off
/// (pure value ranges): the lints that consume it compare magnitudes, not
/// errors.
pub fn expr_interval(
    index: &ProgramIndex,
    scope: ScopeId,
    ranges: &RangeMap,
    e: &Expr,
) -> Option<Interval> {
    match e {
        Expr::RealLit { value, .. } => Some(Interval::point(*value)),
        Expr::IntLit(v) => Some(Interval::point(*v as f64)),
        Expr::LogicalLit(_) | Expr::StrLit(_) => None,
        Expr::Var(name) => var_interval(index, scope, ranges, name),
        Expr::NameRef { name, args } => {
            // Array element: the summarized object range. Intrinsics get
            // their transfer function; other calls are unknown.
            if index
                .lookup(scope, name)
                .is_some_and(|sym| sym.is_array() || sym.rank.is_some())
            {
                return var_interval(index, scope, ranges, name);
            }
            let lower = name.to_ascii_lowercase();
            let arg = |i: usize| {
                args.get(i)
                    .and_then(|a| expr_interval(index, scope, ranges, a))
            };
            match lower.as_str() {
                "abs" => Some(arg(0)?.abs()),
                "sqrt" => Some(arg(0)?.sqrt()),
                "exp" => Some(arg(0)?.exp()),
                "log" => Some(arg(0)?.ln()),
                "sin" => Some(arg(0)?.sin()),
                "cos" => Some(arg(0)?.cos()),
                "min" | "max" => {
                    let mut acc = arg(0)?;
                    for i in 1..args.len() {
                        let v = arg(i)?;
                        acc = if lower == "min" {
                            acc.min(&v)
                        } else {
                            acc.max(&v)
                        };
                    }
                    Some(acc)
                }
                "dble" | "real" | "sngl" => arg(0),
                _ => None,
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            if !op.is_arithmetic() {
                return None;
            }
            let a = expr_interval(index, scope, ranges, lhs)?;
            let b = expr_interval(index, scope, ranges, rhs)?;
            Some(match op {
                BinOp::Add => a.add(&b),
                BinOp::Sub => a.sub(&b),
                BinOp::Mul => a.mul(&b),
                BinOp::Div => a.div(&b),
                BinOp::Pow => match rhs.as_ref() {
                    Expr::IntLit(n) if (0..=8).contains(n) => {
                        let mut acc = Interval::point(1.0);
                        for _ in 0..*n {
                            acc = acc.mul(&a);
                        }
                        acc
                    }
                    _ => Interval::top(),
                },
                _ => unreachable!(),
            })
        }
        Expr::Un { op, operand } => {
            let v = expr_interval(index, scope, ranges, operand)?;
            match op {
                UnOp::Neg => Some(v.neg()),
                UnOp::Plus => Some(v),
                UnOp::Not => None,
            }
        }
    }
}

fn var_interval(
    index: &ProgramIndex,
    scope: ScopeId,
    ranges: &RangeMap,
    name: &str,
) -> Option<Interval> {
    ranges.lookup(index, scope, name).copied()
}

// ---------------------------------------------------------------------------
// Precision keying helpers shared by the IR walker and the tuner pre-pass
// ---------------------------------------------------------------------------

/// Build the `(scope key, var) → precision` table the IR walker consumes
/// from a sema-level `PrecisionMap`: IR slots carry names, not `FpVarId`s,
/// so the candidate assignment has to cross the boundary by name.
pub fn precision_table(
    index: &ProgramIndex,
    map: &PrecisionMap,
) -> BTreeMap<(String, String), FpPrecision> {
    let mut out = BTreeMap::new();
    for v in index.fp_variables() {
        out.insert((scope_key(index, v.scope), v.name.clone()), map.get(v.id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arithmetic_is_sound_on_samples() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-3.0, 0.5);
        for (x, y) in [(1.0, -3.0), (2.0, 0.5), (1.5, -1.0), (1.25, 0.25)] {
            assert!(a.add(&b).contains(x + y));
            assert!(a.sub(&b).contains(x - y));
            assert!(a.mul(&b).contains(x * y));
        }
        assert!(a.div(&b).is_top(), "divisor spans zero");
        assert!(Interval::new(-4.0, 3.0).abs() == Interval::new(0.0, 4.0));
        assert!(Interval::new(4.0, 9.0).sqrt().contains(2.5));
    }

    #[test]
    fn widening_jumps_moving_bounds_to_infinity() {
        let prev = Interval::new(0.0, 1.0);
        let grown = Interval::new(0.0, 1.5);
        let w = grown.widen(&prev);
        assert_eq!(w.lo, 0.0);
        assert_eq!(w.hi, f64::INFINITY);
    }

    #[test]
    fn store_rounding_tracks_precision() {
        let v = AbsVal::lit(1.0);
        let s32 = v.store(FpPrecision::Single);
        let s64 = v.store(FpPrecision::Double);
        assert!(s32.err >= U32 && s32.err < 3.0 * U32);
        assert!(s64.err >= U64 && s64.err < 3.0 * U64);
        assert_eq!(s32.prec, Some(FpPrecision::Single));
    }

    #[test]
    fn subtraction_cancellation_amplifies_relative_bound() {
        let a = AbsVal {
            iv: Interval::new(1.0, 1.0),
            err: 1e-7,
            prec: Some(FpPrecision::Single),
        };
        let b = AbsVal {
            iv: Interval::new(0.999_999, 0.999_999),
            err: 1e-7,
            prec: Some(FpPrecision::Single),
        };
        let d = a.sub(&b);
        // Absolute error stays ~2e-7 but the relative bound explodes.
        assert!(d.err < 1e-6);
        assert!(d.rel_bound() > 0.1);
        assert!(cancellation_kappa(&a.iv, &b.iv) > 1e6);
    }

    #[test]
    fn rel_bound_uses_absolute_fallback_near_zero() {
        let tiny = Interval::new(0.0, 1e-40);
        assert_eq!(rel_bound(&tiny, 1e-9), 1e-9);
        let spans_zero = Interval::new(-1.0, 1.0);
        assert_eq!(rel_bound(&spans_zero, 1e-9), 1e-9 / REL_FLOOR);
    }

    #[test]
    fn division_by_interval_bounded_away_from_zero_is_finite() {
        let a = AbsVal {
            iv: Interval::new(1.0, 2.0),
            err: 1e-8,
            prec: Some(FpPrecision::Double),
        };
        let b = AbsVal {
            iv: Interval::new(4.0, 5.0),
            err: 1e-8,
            prec: Some(FpPrecision::Double),
        };
        let q = a.div(&b);
        assert!(q.err.is_finite());
        assert!(q.iv.contains(1.5 / 4.5));
    }

    #[test]
    fn range_map_keys_resolve_through_home_scope() {
        let src = r#"
module m
  real(kind=8) :: g
contains
  subroutine s(x)
    real(kind=8) :: x
    x = g
  end subroutine s
end module m
"#;
        let p = prose_fortran::parse_program(src).unwrap();
        let ix = prose_fortran::analyze(&p).unwrap();
        let s = ix.scope_of_procedure("s").unwrap();
        let mut rm = RangeMap::default();
        rm.insert("@global", "g", Interval::new(1.0, 2.0));
        rm.insert("s", "x", Interval::new(3.0, 4.0));
        // `g` used inside `s` resolves to the module scope key.
        assert_eq!(rm.lookup(&ix, s, "g"), Some(&Interval::new(1.0, 2.0)));
        assert_eq!(rm.lookup(&ix, s, "x"), Some(&Interval::new(3.0, 4.0)));
        let e = Expr::bin(BinOp::Sub, Expr::Var("g".into()), Expr::Var("x".into()));
        let iv = expr_interval(&ix, s, &rm, &e).unwrap();
        assert!(iv.contains(1.0 - 3.0) && iv.contains(2.0 - 4.0));
    }
}
