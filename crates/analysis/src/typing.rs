//! Expression type/kind inference under a precision assignment.
//!
//! Implements the Fortran promotion rules: an arithmetic operation with any
//! double-precision operand is double; real beats integer; comparisons and
//! logical operators yield logicals. Variable precisions come from the
//! [`PrecisionMap`] rather than the declarations, so the same expression can
//! be typed under any candidate variant without re-transforming the AST.

use prose_fortran::ast::{Expr, FpPrecision, TypeSpec, UnOp};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{intrinsic, IntrinsicKind, ProgramIndex, ScopeId};

/// What a name means in a given scope — resolves the Fortran `f(x)`
/// ambiguity for consumers like the interpreter's lowering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameClass {
    /// Declared scalar variable.
    Scalar,
    /// Declared array variable.
    Array,
    /// Visible user function.
    Function,
    /// Visible user subroutine.
    Subroutine,
    /// Intrinsic function or subroutine.
    Intrinsic,
    /// Not resolvable.
    Unknown,
}

/// Classify `name` as seen from `scope`. Declared symbols shadow procedures,
/// which shadow intrinsics — the same resolution order sema checks with.
pub fn classify(index: &ProgramIndex, scope: ScopeId, name: &str) -> NameClass {
    if let Some(sym) = index.lookup(scope, name) {
        return if sym.is_array() {
            NameClass::Array
        } else {
            NameClass::Scalar
        };
    }
    if let Some(p) = index.procedure(name) {
        return if p.is_function {
            NameClass::Function
        } else {
            NameClass::Subroutine
        };
    }
    if intrinsic(name).is_some() {
        return NameClass::Intrinsic;
    }
    NameClass::Unknown
}

/// The effective precision of an FP variable under `map`: the assigned
/// precision when the variable is in the inventory, else its declared type.
pub fn var_precision(
    index: &ProgramIndex,
    scope: ScopeId,
    name: &str,
    map: &PrecisionMap,
) -> Option<FpPrecision> {
    let sym = index.lookup(scope, name)?;
    let declared = sym.ty.fp_precision()?;
    // The symbol may live in another scope (module variable or import);
    // look the id up in its home scope.
    match index.fp_var_id(sym.scope, name) {
        Some(id) => Some(map.get(id)),
        None => Some(declared),
    }
}

/// Infer the type of `e` as seen from `scope` under the precision
/// assignment `map`. Returns `None` for expressions that do not type-check
/// (sema has already rejected these for well-formed programs).
pub fn expr_type(
    index: &ProgramIndex,
    scope: ScopeId,
    map: &PrecisionMap,
    e: &Expr,
) -> Option<TypeSpec> {
    match e {
        Expr::RealLit { precision, .. } => Some(TypeSpec::Real(*precision)),
        Expr::IntLit(_) => Some(TypeSpec::Integer),
        Expr::LogicalLit(_) => Some(TypeSpec::Logical),
        Expr::StrLit(_) => Some(TypeSpec::Character),
        Expr::Var(name) => {
            let sym = index.lookup(scope, name)?;
            match var_precision(index, scope, name, map) {
                Some(p) => Some(TypeSpec::Real(p)),
                None => Some(sym.ty),
            }
        }
        Expr::NameRef { name, args } => match classify(index, scope, name) {
            NameClass::Array | NameClass::Scalar => {
                let sym = index.lookup(scope, name)?;
                match var_precision(index, scope, name, map) {
                    Some(p) => Some(TypeSpec::Real(p)),
                    None => Some(sym.ty),
                }
            }
            NameClass::Function => {
                let p = index.procedure(name)?;
                let ret = p.return_type?;
                // The result variable's assigned precision wins.
                if ret.is_fp() {
                    let result = p.result.as_deref()?;
                    if let Some(id) = index.fp_var_id(p.scope, result) {
                        return Some(TypeSpec::Real(map.get(id)));
                    }
                }
                Some(ret)
            }
            NameClass::Intrinsic => intrinsic_type(index, scope, map, name, args),
            _ => None,
        },
        Expr::Bin { op, lhs, rhs } => {
            if op.is_comparison() || op.is_logical() {
                return Some(TypeSpec::Logical);
            }
            let lt = expr_type(index, scope, map, lhs)?;
            let rt = expr_type(index, scope, map, rhs)?;
            Some(promote(lt, rt))
        }
        Expr::Un { op, operand } => match op {
            UnOp::Not => Some(TypeSpec::Logical),
            UnOp::Neg | UnOp::Plus => expr_type(index, scope, map, operand),
        },
    }
}

/// Effective FP precision of an expression under the *kind-generic
/// literal* semantics the interpreter (and promoted model builds) use:
/// literals adapt to whatever they combine with, so only variables, array
/// elements, function results, and explicit conversion intrinsics
/// contribute precision. `None` means the expression is kind-generic
/// (pure literal/integer) and matches any real kind for free.
pub fn adapted_precision(
    index: &ProgramIndex,
    scope: ScopeId,
    map: &PrecisionMap,
    e: &Expr,
) -> Option<FpPrecision> {
    use FpPrecision::*;
    let fold = |a: Option<FpPrecision>, b: Option<FpPrecision>| match (a, b) {
        (Some(Double), _) | (_, Some(Double)) => Some(Double),
        (Some(Single), _) | (_, Some(Single)) => Some(Single),
        _ => None,
    };
    match e {
        Expr::RealLit { .. } | Expr::IntLit(_) | Expr::LogicalLit(_) | Expr::StrLit(_) => None,
        Expr::Var(name) => var_precision(index, scope, name, map),
        Expr::NameRef { name, args } => match classify(index, scope, name) {
            NameClass::Array | NameClass::Scalar => var_precision(index, scope, name, map),
            NameClass::Function => {
                let p = index.procedure(name)?;
                let ret = p.return_type?;
                if ret.is_fp() {
                    let result = p.result.as_deref()?;
                    if let Some(id) = index.fp_var_id(p.scope, result) {
                        return Some(map.get(id));
                    }
                }
                ret.fp_precision()
            }
            NameClass::Intrinsic => match name.as_str() {
                "dble" => Some(Double),
                "sngl" => Some(Single),
                "real" => match args.get(1) {
                    Some(Expr::IntLit(k)) => FpPrecision::from_kind(*k),
                    _ => Some(Single),
                },
                "int" | "nint" | "floor" | "size" | "isnan" => None,
                _ => args
                    .iter()
                    .map(|a| adapted_precision(index, scope, map, a))
                    .fold(None, fold),
            },
            _ => None,
        },
        Expr::Bin { lhs, rhs, .. } => fold(
            adapted_precision(index, scope, map, lhs),
            adapted_precision(index, scope, map, rhs),
        ),
        Expr::Un { operand, .. } => adapted_precision(index, scope, map, operand),
    }
}

/// Fortran numeric promotion: double > single > integer.
pub fn promote(a: TypeSpec, b: TypeSpec) -> TypeSpec {
    use FpPrecision::*;
    match (a, b) {
        (TypeSpec::Real(Double), _) | (_, TypeSpec::Real(Double)) => TypeSpec::Real(Double),
        (TypeSpec::Real(Single), _) | (_, TypeSpec::Real(Single)) => TypeSpec::Real(Single),
        (TypeSpec::Integer, TypeSpec::Integer) => TypeSpec::Integer,
        // Non-numeric combinations do not arise in checked programs; return
        // the left type to stay total.
        _ => a,
    }
}

fn intrinsic_type(
    index: &ProgramIndex,
    scope: ScopeId,
    map: &PrecisionMap,
    name: &str,
    args: &[Expr],
) -> Option<TypeSpec> {
    let arg0 = || expr_type(index, scope, map, args.first()?);
    match name {
        "int" | "nint" | "floor" | "size" => Some(TypeSpec::Integer),
        "isnan" => Some(TypeSpec::Logical),
        "dble" => Some(TypeSpec::Real(FpPrecision::Double)),
        "sngl" => Some(TypeSpec::Real(FpPrecision::Single)),
        "real" => {
            // `real(x)` is single; `real(x, 8)` is double.
            if let Some(Expr::IntLit(k)) = args.get(1) {
                Some(TypeSpec::Real(FpPrecision::from_kind(*k)?))
            } else {
                Some(TypeSpec::Real(FpPrecision::Single))
            }
        }
        "max" | "min" | "atan2" | "mod" | "sign" => {
            let mut t = expr_type(index, scope, map, args.first()?)?;
            for a in &args[1..] {
                t = promote(t, expr_type(index, scope, map, a)?);
            }
            Some(t)
        }
        "abs" => arg0(),
        "sum" | "maxval" | "minval" | "epsilon" | "huge" | "tiny" => arg0(),
        // Transcendentals return their argument's real kind (integer
        // arguments are not legal Fortran for these; treat as single).
        "sqrt" | "exp" | "log" | "log10" | "sin" | "cos" | "tan" | "atan" | "tanh" => {
            match arg0()? {
                TypeSpec::Real(p) => Some(TypeSpec::Real(p)),
                _ => Some(TypeSpec::Real(FpPrecision::Single)),
            }
        }
        _ => {
            // Subroutine intrinsics have no type.
            match intrinsic(name)?.kind {
                IntrinsicKind::Function => Some(TypeSpec::Real(FpPrecision::Double)),
                IntrinsicKind::Subroutine => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::ast::BinOp;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module m
  real(kind=8) :: gd
  real(kind=4) :: gs
contains
  function f(x) result(r)
    real(kind=8) :: x, r
    r = x
  end function f
  subroutine host()
    real(kind=8) :: d, arr(10)
    real(kind=4) :: s
    integer :: i
    i = 1
    d = 0.0d0
    s = 0.0
    arr(i) = d + dble(s)
  end subroutine host
end module m
"#;

    fn setup() -> (prose_fortran::Program, ProgramIndex) {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    fn parse_expr_in_host(src: &str) -> Expr {
        // Wrap in a tiny program so the existing parser handles it.
        let text = format!("program t\n logical :: q\n q = {src} == 0\nend program t\n");
        let p = parse_program(&text).unwrap();
        match &p.main.unwrap().body[0] {
            prose_fortran::ast::Stmt::Assign {
                value: Expr::Bin { lhs, .. },
                ..
            } => (**lhs).clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn classifies_names() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        assert_eq!(classify(&ix, host, "d"), NameClass::Scalar);
        assert_eq!(classify(&ix, host, "arr"), NameClass::Array);
        assert_eq!(classify(&ix, host, "f"), NameClass::Function);
        assert_eq!(classify(&ix, host, "host"), NameClass::Subroutine);
        assert_eq!(classify(&ix, host, "sqrt"), NameClass::Intrinsic);
        assert_eq!(classify(&ix, host, "zzz"), NameClass::Unknown);
        // Module-level variables visible from the procedure.
        assert_eq!(classify(&ix, host, "gd"), NameClass::Scalar);
    }

    #[test]
    fn variable_precision_follows_the_map() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let mut map = PrecisionMap::declared(&ix);
        assert_eq!(
            var_precision(&ix, host, "d", &map),
            Some(FpPrecision::Double)
        );
        let d_id = ix.fp_var_id(host, "d").unwrap();
        map.set(d_id, FpPrecision::Single);
        assert_eq!(
            var_precision(&ix, host, "d", &map),
            Some(FpPrecision::Single)
        );
    }

    #[test]
    fn promotion_rules() {
        use TypeSpec::*;
        assert_eq!(
            promote(Real(FpPrecision::Single), Real(FpPrecision::Double)),
            Real(FpPrecision::Double)
        );
        assert_eq!(
            promote(Integer, Real(FpPrecision::Single)),
            Real(FpPrecision::Single)
        );
        assert_eq!(promote(Integer, Integer), Integer);
    }

    #[test]
    fn binary_expression_promotes_through_map() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let map = PrecisionMap::declared(&ix);
        let e = parse_expr_in_host("d + s");
        // Undeclared in the dummy program but typed against host's scope.
        assert_eq!(
            expr_type(&ix, host, &map, &e),
            Some(TypeSpec::Real(FpPrecision::Double))
        );
        // Lower d: now the sum is single + single.
        let mut m2 = map.clone();
        m2.set(ix.fp_var_id(host, "d").unwrap(), FpPrecision::Single);
        assert_eq!(
            expr_type(&ix, host, &m2, &e),
            Some(TypeSpec::Real(FpPrecision::Single))
        );
    }

    #[test]
    fn comparisons_are_logical() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let map = PrecisionMap::declared(&ix);
        let e = Expr::bin(BinOp::Lt, Expr::Var("d".into()), Expr::Var("s".into()));
        assert_eq!(expr_type(&ix, host, &map, &e), Some(TypeSpec::Logical));
    }

    #[test]
    fn function_result_type_follows_map() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let map = PrecisionMap::declared(&ix);
        let e = parse_expr_in_host("f(d)");
        assert_eq!(
            expr_type(&ix, host, &map, &e),
            Some(TypeSpec::Real(FpPrecision::Double))
        );
        let f_scope = ix.scope_of_procedure("f").unwrap();
        let mut m2 = map.clone();
        m2.set(ix.fp_var_id(f_scope, "r").unwrap(), FpPrecision::Single);
        assert_eq!(
            expr_type(&ix, host, &m2, &e),
            Some(TypeSpec::Real(FpPrecision::Single))
        );
    }

    #[test]
    fn intrinsic_types() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let map = PrecisionMap::declared(&ix);
        for (src, expected) in [
            ("dble(s)", TypeSpec::Real(FpPrecision::Double)),
            ("sngl(d)", TypeSpec::Real(FpPrecision::Single)),
            ("int(d)", TypeSpec::Integer),
            ("size(arr)", TypeSpec::Integer),
            ("sqrt(d)", TypeSpec::Real(FpPrecision::Double)),
            ("sqrt(s)", TypeSpec::Real(FpPrecision::Single)),
            ("max(d, s)", TypeSpec::Real(FpPrecision::Double)),
            ("real(d, 8)", TypeSpec::Real(FpPrecision::Double)),
            ("real(d)", TypeSpec::Real(FpPrecision::Single)),
            ("epsilon(s)", TypeSpec::Real(FpPrecision::Single)),
        ] {
            let e = parse_expr_in_host(src);
            assert_eq!(expr_type(&ix, host, &map, &e), Some(expected), "for {src}");
        }
    }

    #[test]
    fn promotion_edge_cases() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let map = PrecisionMap::declared(&ix);
        use FpPrecision::*;
        use TypeSpec::*;
        for (src, expected) in [
            // Mixed-kind intrinsic arguments promote pairwise.
            ("sign(d, s)", Real(Double)),
            ("sign(s, d)", Real(Double)),
            ("sign(s, i)", Real(Single)),
            ("atan2(s, d)", Real(Double)),
            ("mod(i, i)", Integer),
            ("mod(d, s)", Real(Double)),
            ("min(i, s)", Real(Single)),
            ("max(i, i)", Integer),
            ("max(d, s, i)", Real(Double)),
            // Integer exponents do not promote the base.
            ("d ** 2", Real(Double)),
            ("s ** 2", Real(Single)),
            ("i ** 2", Integer),
            ("d ** s", Real(Double)),
            ("s ** i", Real(Single)),
        ] {
            let e = parse_expr_in_host(src);
            assert_eq!(expr_type(&ix, host, &map, &e), Some(expected), "for {src}");
        }
        // Logical contexts are logical regardless of operand kinds. These
        // parse as whole assignments (the `== 0` wrapper would rebind under
        // `.and.`/`.not.` precedence).
        for src in [
            "(d > s) .and. (s < 2.0)",
            ".not. isnan(d)",
            "(i == 1) .or. (d >= s)",
        ] {
            let text = format!("program t\n logical :: q\n q = {src}\nend program t\n");
            let p = prose_fortran::parse_program(&text).unwrap();
            let prose_fortran::ast::Stmt::Assign { value, .. } = &p.main.unwrap().body[0] else {
                unreachable!()
            };
            assert_eq!(
                expr_type(&ix, host, &map, value),
                Some(Logical),
                "for {src}"
            );
        }
    }

    #[test]
    fn promotion_edge_cases_follow_the_map() {
        // Lowering `d` drags every expression it dominates down to single,
        // except where an explicit conversion re-raises it.
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let mut map = PrecisionMap::declared(&ix);
        map.set(ix.fp_var_id(host, "d").unwrap(), FpPrecision::Single);
        use FpPrecision::*;
        for (src, expected) in [
            ("d ** 2", TypeSpec::Real(Single)),
            ("sign(d, s)", TypeSpec::Real(Single)),
            ("max(d, dble(s))", TypeSpec::Real(Double)),
        ] {
            let e = parse_expr_in_host(src);
            assert_eq!(expr_type(&ix, host, &map, &e), Some(expected), "for {src}");
        }
    }

    #[test]
    fn array_element_type_follows_map() {
        let (_, ix) = setup();
        let host = ix.scope_of_procedure("host").unwrap();
        let map = PrecisionMap::declared(&ix);
        let e = parse_expr_in_host("arr(i)");
        assert_eq!(
            expr_type(&ix, host, &map, &e),
            Some(TypeSpec::Real(FpPrecision::Double))
        );
    }
}
