//! Taint-based program reduction (Section III-C).
//!
//! The paper feeds ROSE only a *minimal sub-program* containing the target
//! variables, found by tainting the targets and propagating to a fixed
//! point over five rules:
//!
//! 1. statements declaring target variables;
//! 2. statements passing target variables as arguments to procedure calls;
//! 3. statements defining symbols referenced by 1, 2, and recursively 3;
//! 4. `use` statements required to make those symbols available;
//! 5. program structures (modules, procedures) containing any of the above.
//!
//! Our front end parses everything the models use, so reduction is not
//! needed for correctness here — it is reproduced as a first-class analysis
//! with the properties the pipeline relied on: the reduced program parses,
//! re-analyzes, contains every target declaration, and reduction is
//! idempotent.

use prose_fortran::ast::*;
use prose_fortran::sema::{FpVarId, ProgramIndex, ScopeId, ScopeKind};
use std::collections::BTreeSet;

/// Reduce `program` to the minimal sub-program needed to transform the
/// given target variables.
pub fn reduce_program(program: &Program, index: &ProgramIndex, targets: &[FpVarId]) -> Program {
    let mut needed_vars: BTreeSet<(ScopeId, String)> = targets
        .iter()
        .map(|t| {
            let v = index.fp_var(*t);
            (v.scope, v.name.clone())
        })
        .collect();
    // Procedures owning a target are needed (rule 5).
    let mut needed_procs: BTreeSet<String> = targets
        .iter()
        .filter_map(|t| {
            let v = index.fp_var(*t);
            let info = index.scope_info(v.scope);
            (info.kind == ScopeKind::Procedure).then(|| info.name.clone())
        })
        .collect();

    // Fixed point: keep statements that pass needed vars to calls; pull in
    // symbols those statements reference; pull in called procedures.
    loop {
        let before = (needed_vars.len(), needed_procs.len());

        for (_, proc) in program.all_procedures() {
            let scope = index.scope_of_procedure(&proc.name).unwrap();
            let kept = filter_stmts(&proc.body, &needed_vars, index, scope);
            if !kept.is_empty() {
                needed_procs.insert(proc.name.clone());
            }
            mark_stmts(&kept, index, scope, &mut needed_vars, &mut needed_procs);
        }
        if let Some(mp) = &program.main {
            let scope = main_scope(index);
            let kept = filter_stmts(&mp.body, &needed_vars, index, scope);
            mark_stmts(&kept, index, scope, &mut needed_vars, &mut needed_procs);
        }

        // Needed procedures: their dummies and result variables must be
        // declared (rule 3), and declaration expressions (dims, inits) of
        // needed vars reference further symbols (rule 3, recursively).
        for name in needed_procs.clone() {
            let Some(pinfo) = index.procedure(&name) else {
                continue;
            };
            for param in &pinfo.params {
                needed_vars.insert((pinfo.scope, param.clone()));
            }
            if let Some(r) = &pinfo.result {
                needed_vars.insert((pinfo.scope, r.clone()));
            }
        }
        for (_, proc) in program.all_procedures() {
            let scope = index.scope_of_procedure(&proc.name).unwrap();
            mark_decl_deps(&proc.decls, scope, index, &mut needed_vars);
        }
        for m in &program.modules {
            if let Some(scope) = index.module_scope(&m.name) {
                mark_decl_deps(&m.decls, scope, index, &mut needed_vars);
            }
        }
        if let Some(mp) = &program.main {
            mark_decl_deps(&mp.decls, main_scope(index), index, &mut needed_vars);
        }

        if (needed_vars.len(), needed_procs.len()) == before {
            break;
        }
    }

    build_reduced(program, index, &needed_vars, &needed_procs)
}

fn main_scope(index: &ProgramIndex) -> ScopeId {
    (0..index.scope_count())
        .map(ScopeId)
        .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
        .expect("program has a main scope")
}

/// Resolve `name` in `scope` to its owning (scope, name) key.
fn resolve_key(index: &ProgramIndex, scope: ScopeId, name: &str) -> Option<(ScopeId, String)> {
    index
        .lookup(scope, name)
        .map(|sym| (sym.scope, sym.name.clone()))
}

/// Keep statements that pass a needed variable to a procedure call (rule 2),
/// preserving enclosing control structure shells.
fn filter_stmts(
    body: &[Stmt],
    needed: &BTreeSet<(ScopeId, String)>,
    index: &ProgramIndex,
    scope: ScopeId,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::Call { args, name, .. }
                if index.procedure(name).is_some()
                    && args
                        .iter()
                        .any(|a| expr_passes_needed(a, needed, index, scope)) =>
            {
                out.push(s.clone());
            }
            Stmt::Assign { target, value, .. } => {
                // Statements defining a needed variable are rule-3
                // statements; the target name covers scalar writes and
                // array-section writes alike (a section write defines the
                // whole object, conservatively).
                let defines_needed = resolve_key(index, scope, target.name())
                    .is_some_and(|key| needed.contains(&key));
                // Function references passing needed vars (rule 2 applies to
                // any procedure call, including function calls).
                let mut hit = defines_needed;
                value.walk(&mut |node| {
                    if let Expr::NameRef { name, args } = node {
                        if index.procedure(name).is_some()
                            && args
                                .iter()
                                .any(|a| expr_passes_needed(a, needed, index, scope))
                        {
                            hit = true;
                        }
                    }
                });
                if hit {
                    out.push(s.clone());
                }
            }
            Stmt::Allocate { items, .. }
                if items.iter().any(|(name, _)| {
                    resolve_key(index, scope, name).is_some_and(|key| needed.contains(&key))
                }) =>
            {
                out.push(s.clone());
            }
            Stmt::Deallocate { names, .. }
                if names.iter().any(|name| {
                    resolve_key(index, scope, name).is_some_and(|key| needed.contains(&key))
                }) =>
            {
                out.push(s.clone());
            }
            Stmt::If {
                arms,
                else_body,
                span,
            } => {
                let mut new_arms = Vec::new();
                for (cond, b) in arms {
                    let kept = filter_stmts(b, needed, index, scope);
                    if !kept.is_empty() {
                        new_arms.push((cond.clone(), kept));
                    }
                }
                let new_else = else_body
                    .as_ref()
                    .map(|b| filter_stmts(b, needed, index, scope))
                    .filter(|b| !b.is_empty());
                if !new_arms.is_empty() || new_else.is_some() {
                    // Shell must keep a valid first arm; if the `if` arm
                    // itself emptied, synthesize from the first surviving arm.
                    let arms = if new_arms.is_empty() {
                        vec![(arms[0].0.clone(), Vec::new())]
                    } else {
                        new_arms
                    };
                    out.push(Stmt::If {
                        arms,
                        else_body: new_else,
                        span: *span,
                    });
                }
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body: b,
                span,
            } => {
                let kept = filter_stmts(b, needed, index, scope);
                if !kept.is_empty() {
                    out.push(Stmt::Do {
                        var: var.clone(),
                        start: start.clone(),
                        end: end.clone(),
                        step: step.clone(),
                        body: kept,
                        span: *span,
                    });
                }
            }
            Stmt::DoWhile {
                cond,
                body: b,
                span,
            } => {
                let kept = filter_stmts(b, needed, index, scope);
                if !kept.is_empty() {
                    out.push(Stmt::DoWhile {
                        cond: cond.clone(),
                        body: kept,
                        span: *span,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

fn expr_passes_needed(
    e: &Expr,
    needed: &BTreeSet<(ScopeId, String)>,
    index: &ProgramIndex,
    scope: ScopeId,
) -> bool {
    let mut hit = false;
    e.walk(&mut |node| {
        if let Some(base) = node.base_name() {
            if let Some(key) = resolve_key(index, scope, base) {
                if needed.contains(&key) {
                    hit = true;
                }
            }
        }
    });
    hit
}

/// Mark every symbol referenced by kept statements as needed (rule 3) and
/// every called procedure as needed (rule 5).
fn mark_stmts(
    kept: &[Stmt],
    index: &ProgramIndex,
    scope: ScopeId,
    needed_vars: &mut BTreeSet<(ScopeId, String)>,
    needed_procs: &mut BTreeSet<String>,
) {
    for s in kept {
        s.walk(&mut |stmt| {
            if let Stmt::Call { name, .. } = stmt {
                if index.procedure(name).is_some() {
                    needed_procs.insert(name.clone());
                }
            }
            if let Stmt::Do { var, .. } = stmt {
                if let Some(key) = resolve_key(index, scope, var) {
                    needed_vars.insert(key);
                }
            }
            // A kept assignment's target must be declared even when only the
            // RHS made the statement interesting (e.g. `t2 = fun(i*h)` kept
            // because it passes a needed var into `fun`).
            if let Stmt::Assign { target, .. } = stmt {
                if let Some(key) = resolve_key(index, scope, target.name()) {
                    needed_vars.insert(key);
                }
            }
            // Allocate/deallocate name their objects outside any expression.
            if let Stmt::Allocate { items, .. } = stmt {
                for (name, _) in items {
                    if let Some(key) = resolve_key(index, scope, name) {
                        needed_vars.insert(key);
                    }
                }
            }
            if let Stmt::Deallocate { names, .. } = stmt {
                for name in names {
                    if let Some(key) = resolve_key(index, scope, name) {
                        needed_vars.insert(key);
                    }
                }
            }
            stmt.for_each_expr(&mut |e| {
                e.walk(&mut |node| match node {
                    Expr::Var(n) => {
                        if let Some(key) = resolve_key(index, scope, n) {
                            needed_vars.insert(key);
                        }
                    }
                    Expr::NameRef { name, .. } => {
                        if let Some(key) = resolve_key(index, scope, name) {
                            needed_vars.insert(key);
                        } else if index.procedure(name).is_some() {
                            needed_procs.insert(name.clone());
                        }
                    }
                    _ => {}
                });
            });
        });
    }
}

/// Declarations of needed vars may reference other symbols in dims/inits.
fn mark_decl_deps(
    decls: &[Declaration],
    scope: ScopeId,
    index: &ProgramIndex,
    needed_vars: &mut BTreeSet<(ScopeId, String)>,
) {
    let mut new_names: Vec<(ScopeId, String)> = Vec::new();
    for d in decls {
        for e in &d.entities {
            if !needed_vars.contains(&(scope, e.name.clone())) {
                continue;
            }
            let mut mark_expr = |ex: &Expr| {
                ex.walk(&mut |node| {
                    if let Some(base) = node.base_name() {
                        if let Some(key) = resolve_key(index, scope, base) {
                            new_names.push(key);
                        }
                    }
                });
            };
            if let Some(dims) = d.dims_for(e) {
                for dim in dims {
                    match dim {
                        DimSpec::Upper(ex) => mark_expr(ex),
                        DimSpec::Range(lo, hi) => {
                            mark_expr(lo);
                            mark_expr(hi);
                        }
                        DimSpec::Deferred => {}
                    }
                }
            }
            if let Some(init) = &e.init {
                mark_expr(init);
            }
        }
    }
    needed_vars.extend(new_names);
}

/// Assemble the reduced program: containers (rule 5), declarations (rule 1,
/// 3), kept statements (rule 2), and trimmed `use` statements (rule 4).
fn build_reduced(
    program: &Program,
    index: &ProgramIndex,
    needed_vars: &BTreeSet<(ScopeId, String)>,
    needed_procs: &BTreeSet<String>,
) -> Program {
    let mut reduced = Program::default();
    for m in &program.modules {
        let mscope = index.module_scope(&m.name).unwrap();
        let decls = reduce_decls(&m.decls, mscope, needed_vars);
        let procedures: Vec<Procedure> = m
            .procedures
            .iter()
            .filter(|p| needed_procs.contains(&p.name))
            .map(|p| reduce_procedure(p, index, needed_vars))
            .collect();
        if decls.is_empty() && procedures.is_empty() {
            continue;
        }
        let uses = reduce_uses(&m.uses, index, needed_vars, needed_procs);
        reduced.modules.push(Module {
            name: m.name.clone(),
            uses,
            decls,
            procedures,
            span: m.span,
        });
    }
    if let Some(mp) = &program.main {
        let scope = main_scope(index);
        let decls = reduce_decls(&mp.decls, scope, needed_vars);
        let body = filter_stmts(&mp.body, needed_vars, index, scope);
        if !decls.is_empty() || !body.is_empty() {
            reduced.main = Some(MainProgram {
                name: mp.name.clone(),
                uses: reduce_uses(&mp.uses, index, needed_vars, needed_procs),
                decls,
                body,
                procedures: mp
                    .procedures
                    .iter()
                    .filter(|p| needed_procs.contains(&p.name))
                    .map(|p| reduce_procedure(p, index, needed_vars))
                    .collect(),
                span: mp.span,
            });
        }
    }
    reduced
}

fn reduce_procedure(
    p: &Procedure,
    index: &ProgramIndex,
    needed_vars: &BTreeSet<(ScopeId, String)>,
) -> Procedure {
    let scope = index.scope_of_procedure(&p.name).unwrap();
    Procedure {
        kind: p.kind.clone(),
        name: p.name.clone(),
        params: p.params.clone(),
        uses: p.uses.clone(),
        decls: reduce_decls(&p.decls, scope, needed_vars),
        body: filter_stmts(&p.body, needed_vars, index, scope),
        span: p.span,
    }
}

/// Keep declarations of needed entities, dropping unneeded entities from
/// grouped declarations.
fn reduce_decls(
    decls: &[Declaration],
    scope: ScopeId,
    needed_vars: &BTreeSet<(ScopeId, String)>,
) -> Vec<Declaration> {
    let mut out = Vec::new();
    for d in decls {
        let entities: Vec<EntityDecl> = d
            .entities
            .iter()
            .filter(|e| needed_vars.contains(&(scope, e.name.clone())))
            .cloned()
            .collect();
        if !entities.is_empty() {
            out.push(Declaration {
                type_spec: d.type_spec,
                attrs: d.attrs.clone(),
                entities,
                span: d.span,
            });
        }
    }
    out
}

/// Trim `use` statements to imports that are still needed.
fn reduce_uses(
    uses: &[UseStmt],
    index: &ProgramIndex,
    needed_vars: &BTreeSet<(ScopeId, String)>,
    needed_procs: &BTreeSet<String>,
) -> Vec<UseStmt> {
    let mut out = Vec::new();
    for u in uses {
        let Some(mscope) = index.module_scope(&u.module) else {
            continue;
        };
        match &u.only {
            Some(names) => {
                let kept: Vec<String> = names
                    .iter()
                    .filter(|n| {
                        needed_vars.contains(&(mscope, (*n).clone())) || needed_procs.contains(*n)
                    })
                    .cloned()
                    .collect();
                if !kept.is_empty() {
                    out.push(UseStmt {
                        module: u.module.clone(),
                        only: Some(kept),
                    });
                }
            }
            None => out.push(u.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program, unparse};

    const SRC: &str = r#"
module helpers
  real(kind=8), parameter :: factor = 2.0d0
contains
  subroutine scale(v, n)
    real(kind=8), intent(inout) :: v(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      v(i) = v(i) * factor
    end do
  end subroutine scale
  subroutine unrelated(w)
    real(kind=8) :: w
    w = w + 1.0d0
  end subroutine unrelated
end module helpers

module hot
  use helpers, only: scale, unrelated
  integer :: nsteps = 3
contains
  subroutine drive(field, n)
    real(kind=8), intent(inout) :: field(n)
    integer, intent(in) :: n
    real(kind=8) :: junk
    integer :: s
    junk = 0.0d0
    do s = 1, nsteps
      call scale(field, n)
    end do
    call unrelated(junk)
  end subroutine drive
end module hot
"#;

    fn setup() -> (Program, ProgramIndex) {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    fn target(ix: &ProgramIndex, proc: &str, var: &str) -> FpVarId {
        let scope = ix.scope_of_procedure(proc).unwrap();
        ix.fp_var_id(scope, var).unwrap()
    }

    #[test]
    fn reduced_program_contains_target_declaration_and_call_chain() {
        let (p, ix) = setup();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "drive", "field")]);
        // drive declares the target; the call passing it (scale) is kept.
        let hot = reduced.module("hot").expect("hot module kept");
        let drive = &hot.procedures[0];
        assert_eq!(drive.name, "drive");
        assert!(drive
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "field")));
        // The do-loop shell around `call scale` survives.
        let has_scale_call = drive.body.iter().any(|s| {
            let mut found = false;
            s.walk(&mut |st| {
                if let Stmt::Call { name, .. } = st {
                    if name == "scale" {
                        found = true;
                    }
                }
            });
            found
        });
        assert!(has_scale_call);
        // `scale` itself is included; `unrelated` is not.
        let helpers = reduced.module("helpers").expect("helpers kept");
        assert!(helpers.procedures.iter().any(|p| p.name == "scale"));
        assert!(!helpers.procedures.iter().any(|p| p.name == "unrelated"));
    }

    #[test]
    fn unrelated_statements_are_dropped() {
        let (p, ix) = setup();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "drive", "field")]);
        let drive = &reduced.module("hot").unwrap().procedures[0];
        // The `junk = 0` assignment and `call unrelated(junk)` are gone.
        let mut calls = vec![];
        for s in &drive.body {
            s.walk(&mut |st| {
                if let Stmt::Call { name, .. } = st {
                    calls.push(name.clone());
                }
            });
        }
        assert_eq!(calls, vec!["scale"]);
        assert!(!drive
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "junk")));
    }

    #[test]
    fn reduced_program_reparses_and_reanalyzes() {
        let (p, ix) = setup();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "drive", "field")]);
        let text = unparse(&reduced);
        let reparsed = parse_program(&text).expect("reduced program parses");
        analyze(&reparsed).expect("reduced program analyzes");
    }

    #[test]
    fn reduction_is_idempotent() {
        let (p, ix) = setup();
        let t = target(&ix, "drive", "field");
        let once = reduce_program(&p, &ix, &[t]);
        let ix2 = analyze(&once).unwrap();
        // Find the same variable in the reduced index.
        let scope = ix2.scope_of_procedure("drive").unwrap();
        let t2 = ix2.fp_var_id(scope, "field").unwrap();
        let twice = reduce_program(&once, &ix2, &[t2]);
        assert_eq!(once, twice);
    }

    #[test]
    fn use_only_lists_are_trimmed() {
        let (p, ix) = setup();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "drive", "field")]);
        let hot = reduced.module("hot").unwrap();
        let only = hot.uses[0].only.as_ref().unwrap();
        assert_eq!(only, &["scale"]);
    }

    #[test]
    fn loop_bound_symbols_are_pulled_in() {
        let (p, ix) = setup();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "drive", "field")]);
        // The do-loop `do s = 1, nsteps` survives, so `s` and the
        // module-level `nsteps` must be declared.
        let hot = reduced.module("hot").unwrap();
        assert!(hot
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "nsteps")));
        let drive = &hot.procedures[0];
        assert!(drive
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "s")));
    }

    #[test]
    fn defining_assignments_of_needed_vars_survive() {
        let (p, ix) = setup();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "scale", "v")]);
        // `v(i) = v(i) * factor` defines the target through an indexed
        // write (conservatively the whole object); it and its do-loop
        // shell survive, pulling `factor` and `i` in as rule-3 symbols.
        let helpers = reduced.module("helpers").unwrap();
        let scale = helpers
            .procedures
            .iter()
            .find(|p| p.name == "scale")
            .unwrap();
        let mut writes_v = false;
        let mut in_loop = false;
        for s in &scale.body {
            if let Stmt::Do { .. } = s {
                in_loop = true;
            }
            s.walk(&mut |st| {
                if let Stmt::Assign { target, .. } = st {
                    if target.name() == "v" {
                        writes_v = true;
                    }
                }
            });
        }
        assert!(writes_v, "defining write of the target must be kept");
        assert!(in_loop, "the enclosing do-loop shell must be kept");
        assert!(helpers
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "factor")));
    }

    #[test]
    fn while_loop_writes_of_needed_vars_survive() {
        let src = r#"
program p
  implicit none
  real(kind=8) :: a(10)
  real(kind=8) :: junk
  integer :: k
  k = 0
  do while (k < 3)
    a(k + 1) = 1.0d0
    k = k + 1
  end do
  junk = 5.0d0
  call prose_record('a', a(1))
end program p
"#;
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let scope = main_scope(&ix);
        let t = ix.fp_var_id(scope, "a").unwrap();
        let reduced = reduce_program(&p, &ix, &[t]);
        let main = reduced.main.as_ref().unwrap();
        // The do-while shell and the indexed write of `a` survive; the
        // loop counter writes ride along once `k` becomes needed through
        // the kept statements; `junk` stays out.
        let mut has_while = false;
        let mut writes_a = false;
        for s in &main.body {
            s.walk(&mut |st| match st {
                Stmt::DoWhile { .. } => has_while = true,
                Stmt::Assign { target, .. } if target.name() == "a" => writes_a = true,
                _ => {}
            });
        }
        assert!(has_while && writes_a);
        assert!(!main
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "junk")));
        let text = unparse(&reduced);
        analyze(&parse_program(&text).unwrap()).unwrap();
    }

    #[test]
    fn guardrail_dormant_branch_survives_reduction() {
        // The guardrail's `gate > 1` branch never executes on the tuning
        // input, but reduction is static: targeting `q` must keep the
        // branch, its 2^24 seed, and the accumulation loop — dropping a
        // dormant branch would erase the very trap ensemble validation
        // exists to catch.
        let src = include_str!("../../models/fortran/guardrail.f90")
            .replace("__STEPS__", "3")
            .replace("__N__", "50");
        let p = parse_program(&src).unwrap();
        let ix = analyze(&p).unwrap();
        let reduced = reduce_program(&p, &ix, &[target(&ix, "kernel", "q")]);
        let kernel = &reduced.module("guard_mod").unwrap().procedures[0];
        let mut q_writes = 0;
        let mut has_branch = false;
        for s in &kernel.body {
            s.walk(&mut |st| match st {
                Stmt::If { .. } => has_branch = true,
                Stmt::Assign { target, .. } if target.name() == "q" => q_writes += 1,
                _ => {}
            });
        }
        assert!(has_branch, "the dormant gate branch must survive");
        assert!(q_writes >= 2, "seed and accumulation writes of q survive");
        let text = unparse(&reduced);
        analyze(&parse_program(&text).unwrap()).expect("reduced guardrail re-analyzes");
    }

    #[test]
    fn callee_side_target_pulls_call_sites() {
        let (p, ix) = setup();
        // Target the *dummy* inside scale; call sites passing anything into
        // it are rule-2 statements only when the caller-side actual is
        // needed, but scale's own decls must appear.
        let reduced = reduce_program(&p, &ix, &[target(&ix, "scale", "v")]);
        let helpers = reduced.module("helpers").unwrap();
        let scale = helpers
            .procedures
            .iter()
            .find(|p| p.name == "scale")
            .unwrap();
        assert!(scale
            .decls
            .iter()
            .any(|d| d.entities.iter().any(|e| e.name == "v")));
    }
}
