//! Static mixed-precision cost estimation.
//!
//! Section V of the paper proposes filtering variants *before* dynamic
//! evaluation with "a cost model which assigns a penalty for cases of
//! mixed-precision interprocedural data flow as a function of both the
//! number of calls and the number of array elements". This module is that
//! model: for each mismatched parameter-passing edge it estimates
//!
//! `penalty = est_calls(site) × est_elements(dummy) × cast_cost`
//!
//! where call counts come from loop-nest depth (constant trip counts when
//! derivable, a default otherwise) and element counts from the dummy's
//! declared dimensions. The ablation bench uses this as a pre-filter and
//! compares search cost/quality with and without it.

use crate::flow::FpFlowGraph;
use prose_fortran::ast::{DimSpec, Expr};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId};

/// Trip-count guess for loops whose bounds are not compile-time constants.
pub const DEFAULT_TRIP: f64 = 64.0;

/// Element-count guess for arrays with non-constant extents.
pub const DEFAULT_EXTENT: f64 = 256.0;

/// Cost units charged per scalar conversion (matches the dynamic cost
/// model's `cast` charge).
pub const CAST_COST: f64 = 3.0;

/// Estimate the total casting penalty of a variant: the sum over mismatched
/// flow edges of calls × elements × cast cost. Returns 0 for variants whose
/// parameter passing is precision-consistent.
pub fn static_penalty(graph: &FpFlowGraph, index: &ProgramIndex, map: &PrecisionMap) -> f64 {
    static_penalty_scoped(graph, index, map, None)
}

/// Like [`static_penalty`], but when `caller_scopes` is given, only edges
/// whose call site lies inside one of those scopes are priced. A
/// hotspot-scoped search must use this form: casting at the hotspot's
/// *outer* boundary is invisible to hotspot timers (Figures 5 vs 7), so
/// pricing it would veto exactly the variants the search is after.
pub fn static_penalty_scoped(
    graph: &FpFlowGraph,
    index: &ProgramIndex,
    map: &PrecisionMap,
    caller_scopes: Option<&[ScopeId]>,
) -> f64 {
    let mut total = 0.0;
    for m in graph.mismatches(index, map) {
        let site = &graph.sites()[m.site];
        if let Some(scopes) = caller_scopes {
            if !scopes.contains(&site.caller) {
                continue;
            }
        }
        let calls = DEFAULT_TRIP.powi(site.loop_depth as i32).max(1.0);
        let elements = if m.is_array {
            let pinfo = index.procedure(&site.callee).expect("callee exists");
            index
                .lookup(pinfo.scope, &m.param)
                .and_then(|sym| sym.rank)
                .map(|rank| estimate_elements(index, &site.callee, &m.param, rank))
                .unwrap_or(DEFAULT_EXTENT)
        } else {
            1.0
        };
        // Copy-in plus copy-out for arrays (wrappers convert both ways).
        let directions = if m.is_array { 2.0 } else { 1.0 };
        total += calls * elements * directions * CAST_COST;
    }
    total
}

/// Estimate the element count of a dummy array from its declared dims.
fn estimate_elements(_index: &ProgramIndex, _callee: &str, _param: &str, rank: usize) -> f64 {
    // Declared extents are rarely constants in real model code (they are
    // `n`-style dummies); the paper's proposal only needs a volume-scaled
    // penalty, so a per-rank default matches its spirit.
    DEFAULT_EXTENT
        .powi(rank as i32)
        .min(DEFAULT_EXTENT * DEFAULT_EXTENT)
}

/// Evaluate a constant integer expression (used by the ablation bench to
/// refine trip estimates where bounds are literal).
pub fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::IntLit(v) => Some(*v),
        Expr::Bin { op, lhs, rhs } => {
            let a = const_int(lhs)?;
            let b = const_int(rhs)?;
            use prose_fortran::ast::BinOp::*;
            match op {
                Add => Some(a + b),
                Sub => Some(a - b),
                Mul => Some(a * b),
                Div => (b != 0).then(|| a / b),
                _ => None,
            }
        }
        Expr::Un {
            op: prose_fortran::ast::UnOp::Neg,
            operand,
        } => Some(-const_int(operand)?),
        _ => None,
    }
}

/// Constant extent of a dim spec, if derivable.
pub fn const_extent(d: &DimSpec) -> Option<i64> {
    match d {
        DimSpec::Upper(e) => const_int(e),
        DimSpec::Range(lo, hi) => Some(const_int(hi)? - const_int(lo)? + 1),
        DimSpec::Deferred => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::ast::FpPrecision;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module m
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0
  end function flux
  subroutine kernel(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = flux(u(i))
    end do
  end subroutine kernel
  subroutine driver(a, b, n)
    real(kind=8) :: a(n), b(n)
    integer :: n
    call kernel(a, b, n)
  end subroutine driver
end module m
"#;

    fn setup() -> (prose_fortran::Program, ProgramIndex) {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    #[test]
    fn consistent_variant_has_zero_penalty() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let map = PrecisionMap::declared(&ix);
        assert_eq!(static_penalty(&g, &ix, &map), 0.0);
    }

    #[test]
    fn scalar_mismatch_in_loop_scales_with_trip_estimate() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let mut map = PrecisionMap::declared(&ix);
        let flux = ix.scope_of_procedure("flux").unwrap();
        map.set(ix.fp_var_id(flux, "q").unwrap(), FpPrecision::Single);
        let pen = static_penalty(&g, &ix, &map);
        assert_eq!(pen, DEFAULT_TRIP * CAST_COST);
    }

    #[test]
    fn array_mismatch_scales_with_elements_both_directions() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let mut map = PrecisionMap::declared(&ix);
        let kernel = ix.scope_of_procedure("kernel").unwrap();
        // Lower both kernel dummies: driver's f64 arrays now mismatch both.
        map.set(ix.fp_var_id(kernel, "u").unwrap(), FpPrecision::Single);
        map.set(ix.fp_var_id(kernel, "t").unwrap(), FpPrecision::Single);
        // That also creates a scalar mismatch at flux (u(i) single → q double).
        let pen = static_penalty(&g, &ix, &map);
        let array_part = 2.0 * (DEFAULT_EXTENT * 2.0 * CAST_COST); // two dummies
        let scalar_part = DEFAULT_TRIP * CAST_COST; // flux edge inside loop
        assert_eq!(pen, array_part + scalar_part);
    }

    #[test]
    fn const_int_folds_arithmetic() {
        let p = parse_program("program t\n integer :: i\n i = 2 * 3 + 10 / 2 - 1\nend program t\n")
            .unwrap();
        if let prose_fortran::ast::Stmt::Assign { value, .. } = &p.main.unwrap().body[0] {
            assert_eq!(const_int(value), Some(10));
        } else {
            panic!()
        }
    }

    #[test]
    fn const_extent_of_ranges() {
        use prose_fortran::ast::Expr;
        assert_eq!(const_extent(&DimSpec::Upper(Expr::IntLit(5))), Some(5));
        assert_eq!(
            const_extent(&DimSpec::Range(Expr::IntLit(0), Expr::IntLit(4))),
            Some(5)
        );
        assert_eq!(const_extent(&DimSpec::Deferred), None);
        assert_eq!(const_extent(&DimSpec::Upper(Expr::Var("n".into()))), None);
    }
}
