//! Call-site extraction and the interprocedural FP data-flow graph.
//!
//! The graph's nodes are FP variables annotated with precision (through a
//! [`PrecisionMap`]) and its edges are parameter-passing instances: call
//! site × argument position. A *mismatch* is an edge whose endpoints carry
//! different precisions — exactly the situation Fortran's argument
//! association forbids and that the transformer repairs with wrappers
//! (Figure 4 of the paper). After wrapper synthesis, rebuilding the graph on
//! the transformed program must yield zero mismatches.

use crate::typing::{adapted_precision, classify, NameClass};
use prose_fortran::ast::{Expr, FpPrecision, Program, Stmt};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId};
use serde::{Deserialize, Serialize};

/// One static call site (subroutine call or function reference).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Scope the call appears in.
    pub caller: ScopeId,
    /// Callee procedure name.
    pub callee: String,
    /// Actual argument expressions (cloned from the AST).
    pub args: Vec<Expr>,
    /// True for function references inside expressions.
    pub is_function: bool,
    /// Loop nesting depth at the call site (0 = not inside a loop). The
    /// static cost model scales penalties by this.
    pub loop_depth: usize,
    /// Source line.
    pub line: u32,
}

/// A precision conflict on one argument of one call site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Index into [`FpFlowGraph::sites`].
    pub site: usize,
    /// Argument position (0-based).
    pub arg_index: usize,
    /// Dummy argument name in the callee.
    pub param: String,
    /// Precision of the actual argument on the caller side.
    pub caller_precision: FpPrecision,
    /// Precision of the callee's dummy.
    pub callee_precision: FpPrecision,
    /// True when the argument is an array (penalty scales with elements).
    pub is_array: bool,
}

/// The FP parameter-passing flow graph of a program.
#[derive(Debug)]
pub struct FpFlowGraph {
    sites: Vec<CallSite>,
}

impl FpFlowGraph {
    /// Collect every call site to a user procedure. Intrinsics are excluded:
    /// they are generic over precision and never need wrappers.
    pub fn build(program: &Program, index: &ProgramIndex) -> Self {
        let mut sites = Vec::new();
        for (_, proc) in program.all_procedures() {
            let scope = index
                .scope_of_procedure(&proc.name)
                .expect("analyzed program has all procedures indexed");
            collect_body(&proc.body, scope, index, 0, &mut sites);
        }
        if let Some(mp) = &program.main {
            let scope = main_scope(index);
            collect_body(&mp.body, scope, index, 0, &mut sites);
        }
        FpFlowGraph { sites }
    }

    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Edges whose endpoint precisions differ under `map`.
    pub fn mismatches(&self, index: &ProgramIndex, map: &PrecisionMap) -> Vec<Mismatch> {
        let mut out = Vec::new();
        for (si, site) in self.sites.iter().enumerate() {
            let Some(pinfo) = index.procedure(&site.callee) else {
                continue;
            };
            for (ai, actual) in site.args.iter().enumerate() {
                let Some(param) = pinfo.params.get(ai) else {
                    continue;
                };
                let Some(dummy) = index.lookup(pinfo.scope, param) else {
                    continue;
                };
                // Only FP dummies can mismatch in precision.
                if !dummy.ty.is_fp() {
                    continue;
                }
                let callee_precision = match index.fp_var_id(pinfo.scope, param) {
                    Some(id) => map.get(id),
                    None => dummy.ty.fp_precision().unwrap(),
                };
                // Kind-generic (pure literal) actuals match any dummy for
                // free, exactly as the interpreter converts them.
                let Some(caller_precision) = adapted_precision(index, site.caller, map, actual)
                else {
                    continue;
                };
                if caller_precision != callee_precision {
                    out.push(Mismatch {
                        site: si,
                        arg_index: ai,
                        param: param.clone(),
                        caller_precision,
                        callee_precision,
                        is_array: dummy.is_array(),
                    });
                }
            }
        }
        out
    }

    /// The Figure-4 invariant: adjacent nodes of every parameter-passing
    /// edge have matching precision annotations.
    pub fn invariant_holds(&self, index: &ProgramIndex, map: &PrecisionMap) -> bool {
        self.mismatches(index, map).is_empty()
    }
}

fn main_scope(index: &ProgramIndex) -> ScopeId {
    (0..index.scope_count())
        .map(ScopeId)
        .find(|s| index.scope_info(*s).kind == prose_fortran::sema::ScopeKind::Main)
        .expect("program has a main scope")
}

fn collect_body(
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    depth: usize,
    sites: &mut Vec<CallSite>,
) {
    for s in body {
        match s {
            Stmt::Call { name, args, span } => {
                if index.procedure(name).is_some() {
                    sites.push(CallSite {
                        caller: scope,
                        callee: name.clone(),
                        args: args.clone(),
                        is_function: false,
                        loop_depth: depth,
                        line: span.line,
                    });
                }
                for a in args {
                    collect_expr(a, scope, index, depth, s.span().line, sites);
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, arm_body) in arms {
                    collect_expr(cond, scope, index, depth, s.span().line, sites);
                    collect_body(arm_body, scope, index, depth, sites);
                }
                if let Some(eb) = else_body {
                    collect_body(eb, scope, index, depth, sites);
                }
            }
            Stmt::Do {
                start,
                end,
                step,
                body: lb,
                ..
            } => {
                let line = s.span().line;
                collect_expr(start, scope, index, depth, line, sites);
                collect_expr(end, scope, index, depth, line, sites);
                if let Some(st) = step {
                    collect_expr(st, scope, index, depth, line, sites);
                }
                collect_body(lb, scope, index, depth + 1, sites);
            }
            Stmt::DoWhile { cond, body: lb, .. } => {
                collect_expr(cond, scope, index, depth + 1, s.span().line, sites);
                collect_body(lb, scope, index, depth + 1, sites);
            }
            other => {
                other.for_each_expr(&mut |e| {
                    collect_expr(e, scope, index, depth, other.span().line, sites)
                });
            }
        }
    }
}

fn collect_expr(
    e: &Expr,
    scope: ScopeId,
    index: &ProgramIndex,
    depth: usize,
    line: u32,
    sites: &mut Vec<CallSite>,
) {
    e.walk(&mut |node| {
        if let Expr::NameRef { name, args } = node {
            if classify(index, scope, name) == NameClass::Function {
                sites.push(CallSite {
                    caller: scope,
                    callee: name.clone(),
                    args: args.clone(),
                    is_function: true,
                    loop_depth: depth,
                    line,
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module m
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0
  end function flux
  subroutine kernel(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = flux(u(i))
    end do
  end subroutine kernel
end module m
program main
  use m, only: kernel
  real(kind=8) :: a(8), b(8)
  integer :: k
  do k = 1, 8
    a(k) = 1.0d0
  end do
  call kernel(a, b, 8)
end program main
"#;

    fn setup() -> (prose_fortran::Program, ProgramIndex) {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    #[test]
    fn collects_subroutine_and_function_sites_with_loop_depth() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        assert_eq!(g.sites().len(), 2);
        let flux_site = g.sites().iter().find(|s| s.callee == "flux").unwrap();
        assert!(flux_site.is_function);
        assert_eq!(flux_site.loop_depth, 1);
        let kernel_site = g.sites().iter().find(|s| s.callee == "kernel").unwrap();
        assert!(!kernel_site.is_function);
        assert_eq!(kernel_site.loop_depth, 0);
    }

    #[test]
    fn declared_assignment_has_no_mismatches() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let map = PrecisionMap::declared(&ix);
        assert!(g.invariant_holds(&ix, &map));
    }

    #[test]
    fn lowering_a_dummy_produces_a_mismatch() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let mut map = PrecisionMap::declared(&ix);
        let flux_scope = ix.scope_of_procedure("flux").unwrap();
        map.set(ix.fp_var_id(flux_scope, "q").unwrap(), FpPrecision::Single);
        let mm = g.mismatches(&ix, &map);
        assert_eq!(mm.len(), 1);
        assert_eq!(mm[0].param, "q");
        assert_eq!(mm[0].caller_precision, FpPrecision::Double);
        assert_eq!(mm[0].callee_precision, FpPrecision::Single);
        assert!(!mm[0].is_array);
    }

    #[test]
    fn lowering_caller_array_mismatches_array_dummy() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let mut map = PrecisionMap::declared(&ix);
        let main = main_scope(&ix);
        map.set(ix.fp_var_id(main, "a").unwrap(), FpPrecision::Single);
        let mm = g.mismatches(&ix, &map);
        assert_eq!(mm.len(), 1);
        assert!(mm[0].is_array);
        assert_eq!(mm[0].param, "u");
        assert_eq!(mm[0].caller_precision, FpPrecision::Single);
    }

    #[test]
    fn lowering_both_sides_keeps_invariant() {
        let (p, ix) = setup();
        let g = FpFlowGraph::build(&p, &ix);
        let mut map = PrecisionMap::declared(&ix);
        let flux_scope = ix.scope_of_procedure("flux").unwrap();
        let kernel_scope = ix.scope_of_procedure("kernel").unwrap();
        map.set(ix.fp_var_id(flux_scope, "q").unwrap(), FpPrecision::Single);
        map.set(
            ix.fp_var_id(kernel_scope, "u").unwrap(),
            FpPrecision::Single,
        );
        // kernel's u(i) is now single, flux's q is single: edge matches.
        // But main's a → kernel's u still mismatches.
        let mm = g.mismatches(&ix, &map);
        assert_eq!(mm.len(), 1);
        assert_eq!(mm[0].param, "u");
    }

    #[test]
    fn expression_actual_uses_promoted_type() {
        let src = r#"
module m
contains
  subroutine s(x)
    real(kind=4) :: x
    x = x + 1.0
  end subroutine s
  subroutine driver()
    real(kind=8) :: d
    real(kind=4) :: f
    d = 1.0d0
    f = 2.0
    call s(f)
  end subroutine driver
end module m
"#;
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let g = FpFlowGraph::build(&p, &ix);
        let map = PrecisionMap::declared(&ix);
        assert!(g.invariant_holds(&ix, &map));
        // Lower nothing, but raise the dummy: mismatch appears.
        let mut m2 = map.clone();
        let s_scope = ix.scope_of_procedure("s").unwrap();
        m2.set(ix.fp_var_id(s_scope, "x").unwrap(), FpPrecision::Double);
        assert_eq!(g.mismatches(&ix, &m2).len(), 1);
    }
}
