//! Static vectorization report — the paper's second Section-V
//! recommendation: "filter out variants that have less vectorization than
//! the baseline prior to execution by inspecting compiler vectorization
//! reports or generated assembly".
//!
//! For a candidate precision assignment, this predicts which
//! statically-vectorizable loops would *lose* vectorization: loops that
//! acquire a converting store (mixed-width store stream) or a call that
//! needs a conversion wrapper (wrappers are not inline candidates). The
//! ablation bench uses `lost > 0` as a pre-filter, mirroring a
//! `-fopt-info-vec-missed` diff against the baseline build.

use crate::typing::{adapted_precision, var_precision};
use crate::vect::analyze_counted_loop;
use prose_fortran::ast::{Expr, LValue, Program, Stmt};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{ProgramIndex, ScopeId, ScopeKind};

/// Vectorization summary for one precision assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectReport {
    /// Counted loops that are statically legal to vectorize at baseline.
    pub vectorizable: usize,
    /// Of those, loops predicted to lose vectorization under the candidate
    /// assignment.
    pub lost: usize,
}

/// Predict the variant's vectorization report over the whole program.
pub fn vect_report(program: &Program, index: &ProgramIndex, map: &PrecisionMap) -> VectReport {
    vect_report_scoped(program, index, map, None)
}

/// Like [`vect_report`], restricted to loops inside the given procedure
/// scopes (hotspot-scoped searches only care about vectorization inside
/// the timed region).
pub fn vect_report_scoped(
    program: &Program,
    index: &ProgramIndex,
    map: &PrecisionMap,
    scopes: Option<&[ScopeId]>,
) -> VectReport {
    let mut report = VectReport {
        vectorizable: 0,
        lost: 0,
    };
    for (_, proc) in program.all_procedures() {
        if let Some(scope) = index.scope_of_procedure(&proc.name) {
            if scopes.map(|ss| ss.contains(&scope)).unwrap_or(true) {
                scan_body(&proc.body, scope, index, map, &mut report);
            }
        }
    }
    if scopes.is_none() {
        if let Some(mp) = &program.main {
            let scope = (0..index.scope_count())
                .map(ScopeId)
                .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
                .expect("main scope");
            scan_body(&mp.body, scope, index, map, &mut report);
        }
    }
    report
}

fn scan_body(
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    report: &mut VectReport,
) {
    for s in body {
        match s {
            Stmt::Do { var, body: lb, .. } => {
                let la = analyze_counted_loop(
                    var,
                    lb,
                    &|n| {
                        index
                            .lookup(scope, n)
                            .map(|s| s.is_array())
                            .unwrap_or(false)
                    },
                    &|n| index.lookup(scope, n).is_none() && index.procedure(n).is_some(),
                );
                if la.vectorizable {
                    report.vectorizable += 1;
                    if loop_loses_vectorization(lb, scope, index, map) {
                        report.lost += 1;
                    }
                } else {
                    // Inner loops of a non-vectorizable loop may still be
                    // innermost-vectorizable: recurse.
                    scan_body(lb, scope, index, map, report);
                }
            }
            Stmt::DoWhile { body: lb, .. } => scan_body(lb, scope, index, map, report),
            Stmt::If {
                arms, else_body, ..
            } => {
                for (_, b) in arms {
                    scan_body(b, scope, index, map, report);
                }
                if let Some(b) = else_body {
                    scan_body(b, scope, index, map, report);
                }
            }
            _ => {}
        }
    }
}

/// A statically-legal loop loses vectorization under `map` when its body
/// acquires a converting store or a wrapped (conversion-needing) call.
fn loop_loses_vectorization(
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
) -> bool {
    let mut lost = false;
    for s in body {
        s.walk(&mut |stmt| {
            if lost {
                return;
            }
            match stmt {
                Stmt::Assign {
                    target: LValue::Index { name, .. },
                    value,
                    ..
                } => {
                    // Kind-generic right-hand sides (pure literals) store
                    // without conversion; variable-derived values convert
                    // when their adapted precision differs from the target.
                    if let (Some(tprec), Some(vprec)) = (
                        var_precision(index, scope, name, map),
                        adapted_precision(index, scope, map, value),
                    ) {
                        if tprec != vprec {
                            lost = true;
                        }
                    }
                }
                Stmt::Call { name, args, .. }
                    if call_needs_wrapper(name, args, scope, index, map) =>
                {
                    lost = true;
                }
                _ => {}
            }
            stmt.for_each_expr(&mut |e| {
                e.walk(&mut |node| {
                    if lost {
                        return;
                    }
                    if let Expr::NameRef { name, args } = node {
                        let is_function = index.lookup(scope, name).is_none()
                            && index.procedure(name).is_some_and(|p| p.is_function);
                        if is_function && call_needs_wrapper(name, args, scope, index, map) {
                            lost = true;
                        }
                    }
                });
            });
        });
        if lost {
            return true;
        }
    }
    false
}

fn call_needs_wrapper(
    callee: &str,
    args: &[Expr],
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
) -> bool {
    let Some(pinfo) = index.procedure(callee) else {
        return false;
    };
    for (i, param) in pinfo.params.iter().enumerate() {
        let Some(dummy) = index.lookup(pinfo.scope, param) else {
            continue;
        };
        let Some(_declared) = dummy.ty.fp_precision() else {
            continue;
        };
        let callee_prec = match index.fp_var_id(pinfo.scope, param) {
            Some(id) => map.get(id),
            None => dummy.ty.fp_precision().unwrap(),
        };
        if let Some(caller_prec) = args
            .get(i)
            .and_then(|a| adapted_precision(index, scope, map, a))
        {
            if caller_prec != callee_prec {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::ast::FpPrecision;
    use prose_fortran::{analyze, parse_program};

    const SRC: &str = r#"
module m
contains
  function flux(q) result(f)
    real(kind=8) :: q, f
    f = q * 0.5d0
  end function flux
  subroutine kern(u, t, n)
    real(kind=8), intent(in) :: u(n)
    real(kind=8), intent(out) :: t(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      t(i) = flux(u(i))
    end do
    do i = 2, n
      t(i) = t(i) + t(i-1)
    end do
  end subroutine kern
end module m
program main
  use m, only: kern
  real(kind=8) :: a(8), b(8)
  integer :: k
  do k = 1, 8
    a(k) = 1.0d0
  end do
  call kern(a, b, 8)
end program main
"#;

    #[test]
    fn baseline_assignment_loses_nothing() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let r = vect_report(&p, &ix, &PrecisionMap::declared(&ix));
        // Vectorizable: kern loop 1 and main's init loop (the recurrence
        // loop is not statically vectorizable).
        assert_eq!(r.vectorizable, 2);
        assert_eq!(r.lost, 0);
    }

    #[test]
    fn wrapped_call_in_loop_is_predicted_lost() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let mut map = PrecisionMap::declared(&ix);
        let flux = ix.scope_of_procedure("flux").unwrap();
        map.set(ix.fp_var_id(flux, "q").unwrap(), FpPrecision::Single);
        let r = vect_report(&p, &ix, &map);
        assert_eq!(r.lost, 1);
    }

    #[test]
    fn converting_store_is_predicted_lost() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let mut map = PrecisionMap::declared(&ix);
        let kern = ix.scope_of_procedure("kern").unwrap();
        // Lower only the output array: stores convert f64 values into f32.
        map.set(ix.fp_var_id(kern, "t").unwrap(), FpPrecision::Single);
        // flux's result stays f64 while t is f32: converting store.
        let r = vect_report(&p, &ix, &map);
        assert!(r.lost >= 1, "{r:?}");
    }

    #[test]
    fn uniform_lowering_loses_nothing() {
        let p = parse_program(SRC).unwrap();
        let ix = analyze(&p).unwrap();
        let atoms = ix.atoms();
        let map = PrecisionMap::uniform(&ix, &atoms, FpPrecision::Single);
        let r = vect_report(&p, &ix, &map);
        assert_eq!(r.lost, 0, "{r:?}");
    }
}
