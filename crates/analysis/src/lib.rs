//! # prose-analysis
//!
//! Static analyses over the `prose-fortran` AST that the tuning pipeline
//! needs:
//!
//! * [`typing`] — Fortran type/kind inference for expressions under a
//!   [`prose_fortran::PrecisionMap`], implementing the standard promotion
//!   rules (any double operand promotes the operation to double).
//! * [`flow`] — call-site extraction and the interprocedural FP data-flow
//!   graph whose nodes are precision-annotated FP variables and whose edges
//!   are parameter-passing instances (Section III-C of the paper). Wrapper
//!   planning asks this graph for precision-mismatched edges; the invariant
//!   after wrapper synthesis is that no mismatched edge remains.
//! * [`vect`] — the loop vectorization-legality model: a counted innermost
//!   loop vectorizes only without loop-carried dependences, irregular
//!   stores, or non-inlinable calls (the `pjac` recurrence and the models'
//!   stencil loops are the motivating cases).
//! * [`taint`] — taint-based program reduction: the fixed-point propagation
//!   of Section III-C that extracts the minimal sub-program needed to
//!   transform a set of target variables.
//! * [`static_cost`] — the static mixed-precision cost estimator the paper's
//!   lessons-learned section proposes (penalty proportional to call volume
//!   times array elements), used as a pre-filter ablation.
//! * [`depgraph`] — interprocedural precision dependence analysis:
//!   congruence classes of variables statically constrained to share a
//!   precision (copy chains, `intent(inout)` bindings) plus a weighted
//!   affinity graph. The delta-debugging search uses the classes as grouped
//!   atoms, probed in descending static-penalty order.
//! * [`lint`] — static numerical-hazard lints (float equality, absorption,
//!   implicit narrowing, cancellation candidates, uninitialized FP use)
//!   with `proc:line` sites matching the dynamic shadow guardrails.
//! * [`absint`] — abstract-interpretation domains for static range and
//!   round-off analysis: an interval domain over the fp64 shadow value and a
//!   first-order error domain bounding `|primary − shadow|` under a
//!   candidate precision assignment. The IR walker that drives these
//!   domains lives in `prose-interp::absint` (that crate depends on this
//!   one); the tuner consumes the verdicts as a search pre-pruning pass.

pub mod absint;
pub mod depgraph;
pub mod flow;
pub mod lint;
pub mod static_cost;
pub mod taint;
pub mod typing;
pub mod vect;
pub mod vect_report;

pub use absint::{AbsVal, BoundReport, Interval, RangeMap, VarBound};
pub use depgraph::{AffinityEdge, DepGraph};
pub use flow::{CallSite, FpFlowGraph, Mismatch};
pub use lint::{run_lints, run_lints_with_ranges, Lint, LintKind};
pub use static_cost::static_penalty;
pub use taint::reduce_program;
pub use typing::{expr_type, NameClass};
pub use vect::{analyze_counted_loop, LoopAnalysis, VectBlocker};
pub use vect_report::{vect_report, VectReport};
