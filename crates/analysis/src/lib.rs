//! # prose-analysis
//!
//! Static analyses over the `prose-fortran` AST that the tuning pipeline
//! needs:
//!
//! * [`typing`] — Fortran type/kind inference for expressions under a
//!   [`prose_fortran::PrecisionMap`], implementing the standard promotion
//!   rules (any double operand promotes the operation to double).
//! * [`flow`] — call-site extraction and the interprocedural FP data-flow
//!   graph whose nodes are precision-annotated FP variables and whose edges
//!   are parameter-passing instances (Section III-C of the paper). Wrapper
//!   planning asks this graph for precision-mismatched edges; the invariant
//!   after wrapper synthesis is that no mismatched edge remains.
//! * [`vect`] — the loop vectorization-legality model: a counted innermost
//!   loop vectorizes only without loop-carried dependences, irregular
//!   stores, or non-inlinable calls (the `pjac` recurrence and the models'
//!   stencil loops are the motivating cases).
//! * [`taint`] — taint-based program reduction: the fixed-point propagation
//!   of Section III-C that extracts the minimal sub-program needed to
//!   transform a set of target variables.
//! * [`static_cost`] — the static mixed-precision cost estimator the paper's
//!   lessons-learned section proposes (penalty proportional to call volume
//!   times array elements), used as a pre-filter ablation.

pub mod flow;
pub mod static_cost;
pub mod taint;
pub mod typing;
pub mod vect;
pub mod vect_report;

pub use flow::{CallSite, FpFlowGraph, Mismatch};
pub use static_cost::static_penalty;
pub use taint::reduce_program;
pub use typing::{expr_type, NameClass};
pub use vect::{analyze_counted_loop, LoopAnalysis, VectBlocker};
pub use vect_report::{vect_report, VectReport};
