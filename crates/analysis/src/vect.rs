//! Loop vectorization legality — the static half of the compiler model.
//!
//! Section II-A of the paper lists the requirements for reduced precision to
//! pay off: compiler auto-vectorization needs regular access patterns, no
//! loop-carried dependences, and like-precision operands. This module
//! decides the *precision-independent* part: whether a counted `do` loop
//! could vectorize at all. The precision-uniformity condition is dynamic
//! (it depends on the variant) and is tracked by the interpreter's cost
//! model while the loop runs.
//!
//! The model deliberately mirrors what `gfortran -O3 -fopt-info-vec` accepts
//! on the mini-models:
//!
//! * counted innermost loops only (`do while` never vectorizes — the
//!   trip count is not known in advance);
//! * no `exit` / `cycle` / `return` / `stop` / I/O / allocation in the body;
//! * calls only to inlinable candidates (final say is dynamic: a wrapper on
//!   the call makes it non-inlinable);
//! * stores must be affine in the loop variable (`a(i+c)`), and no two
//!   accesses to a stored array may differ in their affine offset
//!   (`x(i) = x(i-1) + …` — the ADCIRC `pjac` recurrence — is rejected);
//! * scalars assigned in the body must be reductions (`s = s + …`,
//!   `s = max(s, …)`) or privatizable (written before read).

use prose_fortran::ast::{BinOp, Expr, LValue, Stmt};
use serde::{Deserialize, Serialize};

/// Why a loop cannot vectorize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VectBlocker {
    /// Contains a nested loop (only innermost loops vectorize).
    InnerLoop,
    /// `exit`/`cycle`/`return`/`stop`/`print`/allocation in the body.
    ControlFlow,
    /// A store whose subscript is not affine in the loop variable.
    IrregularStore,
    /// Two accesses to a stored array differ in affine offset.
    LoopCarriedDependence,
    /// A scalar assigned in the body is neither a reduction nor
    /// privatizable.
    ScalarDependence,
}

impl VectBlocker {
    pub fn describe(self) -> &'static str {
        match self {
            VectBlocker::InnerLoop => "contains an inner loop",
            VectBlocker::ControlFlow => "irregular control flow in body",
            VectBlocker::IrregularStore => "non-affine store subscript",
            VectBlocker::LoopCarriedDependence => "loop-carried dependence",
            VectBlocker::ScalarDependence => "non-reduction scalar assignment",
        }
    }
}

/// Result of analyzing one counted loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopAnalysis {
    /// Statically legal to vectorize (calls and precision mixing are decided
    /// dynamically on top of this).
    pub vectorizable: bool,
    /// First blocker found when not vectorizable.
    pub blocker: Option<VectBlocker>,
    /// Names of user procedures called in the body. The loop only actually
    /// vectorizes if every one of these is inlined (dynamic decision).
    pub calls: Vec<String>,
    /// True when the body contains nested loops (outer loops run scalar but
    /// are not penalized further).
    pub has_inner_loop: bool,
}

impl LoopAnalysis {
    fn blocked(blocker: VectBlocker, calls: Vec<String>, has_inner_loop: bool) -> Self {
        LoopAnalysis {
            vectorizable: false,
            blocker: Some(blocker),
            calls,
            has_inner_loop,
        }
    }
}

/// Subscript shape relative to the loop variable.
#[derive(Debug, Clone, PartialEq)]
enum Offset {
    /// `i + c`.
    Affine(i64),
    /// Does not reference the loop variable (kept for equality comparison).
    NoI(Expr),
    /// References the loop variable in a non-affine way.
    Unknown,
}

/// Classifier the caller provides: is this (lowercase) name an array
/// variable in the loop's scope?
pub type IsArray<'a> = &'a dyn Fn(&str) -> bool;

/// Classifier: is this name a user procedure (function or subroutine)?
pub type IsProc<'a> = &'a dyn Fn(&str) -> bool;

/// Analyze a counted-`do` body for vectorization legality.
///
/// `var` is the loop variable; `is_array` and `is_proc` resolve names in the
/// enclosing scope (the interpreter passes closures over its symbol table).
pub fn analyze_counted_loop(
    var: &str,
    body: &[Stmt],
    is_array: IsArray,
    is_proc: IsProc,
) -> LoopAnalysis {
    let mut calls = Vec::new();
    let mut has_inner_loop = false;
    let mut blocker: Option<VectBlocker> = None;

    // Pass 1: structural scan.
    for s in body {
        s.walk(&mut |stmt| match stmt {
            Stmt::Do { .. } | Stmt::DoWhile { .. } => has_inner_loop = true,
            Stmt::Exit { .. }
            | Stmt::Cycle { .. }
            | Stmt::Return { .. }
            | Stmt::Stop { .. }
            | Stmt::Print { .. }
            | Stmt::Allocate { .. }
            | Stmt::Deallocate { .. } => {
                blocker.get_or_insert(VectBlocker::ControlFlow);
            }
            Stmt::Call { name, .. } if is_proc(name) => {
                calls.push(name.clone());
            }
            _ => {}
        });
        // Function references also count as calls.
        s.walk(&mut |stmt| {
            stmt.for_each_expr(&mut |e| {
                e.walk(&mut |node| {
                    if let Expr::NameRef { name, .. } = node {
                        if !is_array(name) && is_proc(name) {
                            calls.push(name.clone());
                        }
                    }
                });
            });
        });
    }
    if has_inner_loop {
        return LoopAnalysis::blocked(VectBlocker::InnerLoop, calls, true);
    }
    if let Some(b) = blocker {
        return LoopAnalysis::blocked(b, calls, false);
    }

    // Pass 2: dependence analysis over array stores and scalar assignments.
    let mut stored_arrays: Vec<(String, Vec<Vec<Offset>>)> = Vec::new(); // name → list of store subscript shapes
    let mut scalar_writes: Vec<String> = Vec::new();

    let mut flat = Vec::new();
    for s in body {
        flatten(s, &mut flat);
    }

    for stmt in &flat {
        if let Stmt::Assign { target, .. } = stmt {
            match target {
                LValue::Index { name, indices } => {
                    let shape: Vec<Offset> = indices.iter().map(|ix| offset_of(ix, var)).collect();
                    if shape.iter().any(|o| matches!(o, Offset::Unknown)) {
                        return LoopAnalysis::blocked(VectBlocker::IrregularStore, calls, false);
                    }
                    if !shape.iter().any(|o| matches!(o, Offset::Affine(_))) {
                        // Store not indexed by the loop variable at all:
                        // every iteration hits the same / an unrelated
                        // element — a scatter the model does not vectorize.
                        return LoopAnalysis::blocked(VectBlocker::IrregularStore, calls, false);
                    }
                    match stored_arrays.iter_mut().find(|(n, _)| n == name) {
                        Some((_, shapes)) => shapes.push(shape),
                        None => stored_arrays.push((name.clone(), vec![shape])),
                    }
                }
                LValue::Var(name) => {
                    if is_array(name) {
                        // Whole-array broadcast: affine offset 0 by definition.
                        match stored_arrays.iter_mut().find(|(n, _)| n == name) {
                            Some((_, shapes)) => shapes.push(vec![Offset::Affine(0)]),
                            None => {
                                stored_arrays.push((name.clone(), vec![vec![Offset::Affine(0)]]))
                            }
                        }
                    } else {
                        scalar_writes.push(name.clone());
                    }
                }
            }
        }
    }

    // Collect every read access of stored arrays.
    for (name, shapes) in &stored_arrays {
        let mut conflict = false;
        for stmt in &flat {
            // Reads in the statement's expressions.
            let mut visit_read = |e: &Expr| {
                e.walk(&mut |node| {
                    if let Expr::NameRef { name: n, args } = node {
                        if n == name && is_array(n) {
                            let read_shape: Vec<Offset> =
                                args.iter().map(|ix| offset_of(ix, var)).collect();
                            for w in shapes {
                                if shapes_conflict(w, &read_shape) {
                                    conflict = true;
                                }
                            }
                        }
                    }
                });
            };
            stmt.for_each_expr(&mut visit_read);
            // Subscripts of *other* stores also read nothing of this array
            // directly; store subscripts were covered by for_each_expr on
            // Assign targets already (index expressions).
        }
        // Store-store conflicts (two different offsets written).
        for (a, b) in pairs(shapes) {
            if shapes_conflict(a, b) {
                conflict = true;
            }
        }
        if conflict {
            return LoopAnalysis::blocked(VectBlocker::LoopCarriedDependence, calls, false);
        }
    }

    // Scalar writes: must be reductions or privatizable.
    for name in &scalar_writes {
        if name == var {
            return LoopAnalysis::blocked(VectBlocker::ScalarDependence, calls, false);
        }
        if !scalar_ok(name, &flat) {
            return LoopAnalysis::blocked(VectBlocker::ScalarDependence, calls, false);
        }
    }

    LoopAnalysis {
        vectorizable: true,
        blocker: None,
        calls,
        has_inner_loop: false,
    }
}

/// Flatten the body including `if` arms (if-conversion: branches are treated
/// as straight-line masked code).
fn flatten<'a>(s: &'a Stmt, out: &mut Vec<&'a Stmt>) {
    out.push(s);
    if let Stmt::If {
        arms, else_body, ..
    } = s
    {
        for (_, b) in arms {
            for inner in b {
                flatten(inner, out);
            }
        }
        if let Some(b) = else_body {
            for inner in b {
                flatten(inner, out);
            }
        }
    }
}

fn pairs<T>(v: &[T]) -> impl Iterator<Item = (&T, &T)> {
    v.iter()
        .enumerate()
        .flat_map(move |(i, a)| v[i + 1..].iter().map(move |b| (a, b)))
}

/// Compute the shape of one subscript expression relative to loop var `i`.
fn offset_of(e: &Expr, var: &str) -> Offset {
    if !mentions(e, var) {
        return Offset::NoI(e.clone());
    }
    match e {
        Expr::Var(n) if n == var => Offset::Affine(0),
        Expr::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
        } => match (&**lhs, &**rhs) {
            (Expr::Var(n), Expr::IntLit(c)) if n == var => Offset::Affine(*c),
            (Expr::IntLit(c), Expr::Var(n)) if n == var => Offset::Affine(*c),
            _ => Offset::Unknown,
        },
        Expr::Bin {
            op: BinOp::Sub,
            lhs,
            rhs,
        } => match (&**lhs, &**rhs) {
            (Expr::Var(n), Expr::IntLit(c)) if n == var => Offset::Affine(-c),
            _ => Offset::Unknown,
        },
        _ => Offset::Unknown,
    }
}

fn mentions(e: &Expr, var: &str) -> bool {
    let mut found = false;
    e.walk(&mut |node| {
        if let Expr::Var(n) = node {
            if n == var {
                found = true;
            }
        }
    });
    found
}

/// Two access shapes conflict when they can hit the same array but at
/// different iterations: some dimension has distinct affine offsets, or a
/// dimension's shape cannot be proven equal.
fn shapes_conflict(a: &[Offset], b: &[Offset]) -> bool {
    if a.len() != b.len() {
        return true; // rank confusion: be conservative
    }
    let mut all_equal = true;
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (Offset::Affine(c1), Offset::Affine(c2)) => {
                if c1 != c2 {
                    return true; // e.g. write a(i), read a(i-1)
                }
            }
            (Offset::NoI(e1), Offset::NoI(e2)) => {
                if e1 != e2 {
                    return true; // cannot prove distinct → dependence
                }
            }
            (Offset::Unknown, _) | (_, Offset::Unknown) => return true,
            _ => {
                all_equal = false;
            }
        }
    }
    // Mixed Affine/NoI dims with everything else equal: e.g. write a(i,k),
    // read a(k,i) — conservative.
    !all_equal
}

/// A scalar assigned inside the body is acceptable if every assignment is a
/// reduction over itself, or if it is written before any read (privatizable).
fn scalar_ok(name: &str, flat: &[&Stmt]) -> bool {
    // Reduction check: every assignment to `name` has the form
    // `name = name ⊕ expr` / `name = max(name, expr)` with exactly one
    // self-reference, and `name` is read nowhere outside its own updates.
    let mut all_reductions = true;
    for stmt in flat {
        if let Stmt::Assign { target, value, .. } = stmt {
            if target.name() == name && matches!(target, LValue::Var(_)) {
                if !is_reduction_rhs(name, value) {
                    all_reductions = false;
                }
            } else {
                // A read of `name` in any other statement breaks the pure
                // reduction pattern.
                let mut read_elsewhere = false;
                stmt.for_each_expr(&mut |e| {
                    e.walk(&mut |node| {
                        if let Expr::Var(n) = node {
                            if n == name {
                                read_elsewhere = true;
                            }
                        }
                    });
                });
                if read_elsewhere {
                    all_reductions = false;
                }
            }
        } else {
            let mut read_elsewhere = false;
            stmt.for_each_expr(&mut |e| {
                e.walk(&mut |node| {
                    if let Expr::Var(n) = node {
                        if n == name {
                            read_elsewhere = true;
                        }
                    }
                });
            });
            if read_elsewhere {
                all_reductions = false;
            }
        }
    }
    if all_reductions {
        return true;
    }

    // Privatizable check: the first statement referencing the scalar writes
    // it (so each iteration sees its own fresh value).
    for stmt in flat {
        let mut referenced = false;
        let mut written_first = false;
        if let Stmt::Assign { target, value, .. } = stmt {
            if target.name() == name && matches!(target, LValue::Var(_)) {
                // Written — but a self-read on the RHS would be stale.
                let mut self_read = false;
                value.walk(&mut |node| {
                    if let Expr::Var(n) = node {
                        if n == name {
                            self_read = true;
                        }
                    }
                });
                referenced = true;
                written_first = !self_read;
            }
        }
        if !referenced {
            stmt.for_each_expr(&mut |e| {
                e.walk(&mut |node| {
                    if let Expr::Var(n) = node {
                        if n == name {
                            referenced = true;
                        }
                    }
                });
            });
        }
        if referenced {
            return written_first;
        }
    }
    true
}

/// `rhs` has the reduction shape for `name`: `name ⊕ expr`, `expr ⊕ name`,
/// or `max/min(name, expr)`, with exactly one self-reference overall.
fn is_reduction_rhs(name: &str, rhs: &Expr) -> bool {
    let mut self_refs = 0usize;
    rhs.walk(&mut |node| {
        if let Expr::Var(n) = node {
            if n == name {
                self_refs += 1;
            }
        }
    });
    if self_refs != 1 {
        return false;
    }
    match rhs {
        Expr::Bin { op, lhs, rhs: r } => {
            matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
                && (matches!(&**lhs, Expr::Var(n) if n == name)
                    || matches!(&**r, Expr::Var(n) if n == name))
        }
        Expr::NameRef { name: f, args } => {
            (f == "max" || f == "min")
                && args.iter().any(|a| matches!(a, Expr::Var(n) if n == name))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::parse_program;

    /// Extract the first (outermost) do-loop of the named procedure.
    fn first_loop(src: &str) -> (String, Vec<Stmt>, Vec<String>) {
        let p = parse_program(src).unwrap();
        let proc = &p.modules[0].procedures[0];
        let arrays: Vec<String> = proc
            .decls
            .iter()
            .flat_map(|d| {
                d.entities
                    .iter()
                    .filter(|e| d.dims_for(e).is_some())
                    .map(|e| e.name.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        for s in &proc.body {
            if let Stmt::Do { var, body, .. } = s {
                return (var.clone(), body.clone(), arrays);
            }
        }
        panic!("no loop found");
    }

    fn analyze(src: &str) -> LoopAnalysis {
        let (var, body, arrays) = first_loop(src);
        analyze_counted_loop(&var, &body, &|n| arrays.iter().any(|a| a == n), &|n| {
            n == "userfn" || n == "usersub"
        })
    }

    fn module(body: &str, decls: &str) -> String {
        format!(
            "module m\ncontains\nsubroutine k(n)\ninteger :: n, i, j\n{decls}\ndo i = 1, n\n{body}\nend do\nend subroutine k\nend module m\n"
        )
    }

    #[test]
    fn simple_stencil_vectorizes() {
        let src = module(
            "t(i) = 0.5d0 * (u(i+1) - u(i-1)) + c",
            "real(kind=8) :: u(n), t(n), c",
        );
        let a = analyze(&src);
        assert!(a.vectorizable, "{:?}", a.blocker);
        assert!(a.calls.is_empty());
    }

    #[test]
    fn recurrence_is_rejected() {
        // The ADCIRC pjac pattern: x(i) depends on x(i-1).
        let src = module("x(i) = x(i-1) * 0.9d0 + b(i)", "real(kind=8) :: x(n), b(n)");
        let a = analyze(&src);
        assert!(!a.vectorizable);
        assert_eq!(a.blocker, Some(VectBlocker::LoopCarriedDependence));
    }

    #[test]
    fn forward_dependence_is_rejected() {
        let src = module("x(i) = x(i+1) * 0.9d0", "real(kind=8) :: x(n)");
        assert_eq!(
            analyze(&src).blocker,
            Some(VectBlocker::LoopCarriedDependence)
        );
    }

    #[test]
    fn same_offset_read_write_is_fine() {
        let src = module("x(i) = x(i) * 0.9d0 + 1.0d0", "real(kind=8) :: x(n)");
        assert!(analyze(&src).vectorizable);
    }

    #[test]
    fn reduction_is_accepted() {
        let src = module("s = s + u(i) * u(i)", "real(kind=8) :: u(n), s");
        let a = analyze(&src);
        assert!(a.vectorizable, "{:?}", a.blocker);
    }

    #[test]
    fn max_reduction_is_accepted() {
        let src = module("s = max(s, abs(u(i)))", "real(kind=8) :: u(n), s");
        assert!(analyze(&src).vectorizable);
    }

    #[test]
    fn privatizable_scalar_is_accepted() {
        let src = module(
            "tmp = u(i) * 2.0d0\nt(i) = tmp + tmp * tmp",
            "real(kind=8) :: u(n), t(n), tmp",
        );
        let a = analyze(&src);
        assert!(a.vectorizable, "{:?}", a.blocker);
    }

    #[test]
    fn non_reduction_scalar_carried_across_iterations_is_rejected() {
        // `prev` is read before being written: classic linear recurrence.
        let src = module(
            "t(i) = prev + u(i)\nprev = u(i)",
            "real(kind=8) :: u(n), t(n), prev",
        );
        let a = analyze(&src);
        assert!(!a.vectorizable);
        assert_eq!(a.blocker, Some(VectBlocker::ScalarDependence));
    }

    #[test]
    fn inner_loop_blocks_vectorization() {
        let src = module(
            "do j = 1, n\nt(j) = u(j)\nend do",
            "real(kind=8) :: u(n), t(n)",
        );
        let a = analyze(&src);
        assert!(!a.vectorizable);
        assert!(a.has_inner_loop);
        assert_eq!(a.blocker, Some(VectBlocker::InnerLoop));
    }

    #[test]
    fn exit_blocks_vectorization() {
        let src = module(
            "if (u(i) > 1.0d0) then\nexit\nend if\nt(i) = u(i)",
            "real(kind=8) :: u(n), t(n)",
        );
        assert_eq!(analyze(&src).blocker, Some(VectBlocker::ControlFlow));
    }

    #[test]
    fn if_conversion_allows_simple_branches() {
        let src = module(
            "if (u(i) > 0.0d0) then\nt(i) = u(i)\nelse\nt(i) = -u(i)\nend if",
            "real(kind=8) :: u(n), t(n)",
        );
        let a = analyze(&src);
        assert!(a.vectorizable, "{:?}", a.blocker);
    }

    #[test]
    fn scatter_store_is_rejected() {
        let src = module("t(j) = u(i)", "real(kind=8) :: u(n), t(n)");
        assert_eq!(analyze(&src).blocker, Some(VectBlocker::IrregularStore));
    }

    #[test]
    fn indirect_subscript_is_rejected() {
        let src = module(
            "t(idx(i)) = u(i)",
            "real(kind=8) :: u(n), t(n)\ninteger :: idx(n)",
        );
        assert_eq!(analyze(&src).blocker, Some(VectBlocker::IrregularStore));
    }

    #[test]
    fn calls_are_collected_but_do_not_block_statically() {
        let src = module("t(i) = userfn(u(i))", "real(kind=8) :: u(n), t(n)");
        let a = analyze(&src);
        assert!(a.vectorizable);
        assert_eq!(a.calls, vec!["userfn"]);
    }

    #[test]
    fn multidim_same_row_is_fine_but_shifted_row_is_not() {
        let ok = module(
            "t(i, j) = u(i, j) * 2.0d0",
            "real(kind=8) :: u(n,n), t(n,n)",
        );
        assert!(analyze(&ok).vectorizable);
        let bad = module("t(i, j) = t(i-1, j) * 2.0d0", "real(kind=8) :: t(n,n)");
        assert_eq!(
            analyze(&bad).blocker,
            Some(VectBlocker::LoopCarriedDependence)
        );
    }

    #[test]
    fn writing_loop_variable_is_rejected() {
        let src = module("i = i + 1", "real(kind=8) :: u(n)");
        assert_eq!(analyze(&src).blocker, Some(VectBlocker::ScalarDependence));
    }
}
