//! Interprocedural precision dependence analysis.
//!
//! The delta-debugging search treats every FP declaration as an independent
//! atom, but static structure already ties many of them together: a chain of
//! narrowing-free assignments, or an `intent(inout)` binding, means two
//! variables can only ever pass the flow invariant at the *same* precision
//! (or pay a wrapper on every interaction). This module computes
//! interprocedural def-use chains over the AST — assignments, call argument
//! bindings, function results; array sections handled conservatively as
//! whole objects — and derives:
//!
//! - **precision congruence classes**: variables statically constrained to
//!   share a precision level, found by union-find over (a) assignments whose
//!   right-hand side has exactly one distinct direct FP source (a pure copy
//!   chain, possibly through precision-preserving intrinsics like `sqrt`)
//!   and (b) explicit `intent(inout)` argument bindings;
//! - a **weighted affinity graph** between classes: edge weight is the
//!   static interaction count (loop-nest trip estimates from
//!   [`crate::static_cost`]) times the call-volume cast penalty for
//!   interactions that cross a call boundary.
//!
//! The search consumes the classes through [`DepGraph::atom_groups`] /
//! [`DepGraph::ordered_atom_groups`]: one search decision per class first,
//! then per-variable refinement of only the classes left on the frontier.

use crate::flow::FpFlowGraph;
use crate::static_cost::{static_penalty_scoped, CAST_COST, DEFAULT_TRIP};
use crate::typing::{classify, NameClass};
use prose_fortran::ast::{Expr, FpPrecision, Intent, Program, Stmt};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{FpVarId, ProgramIndex, ScopeId, ScopeKind};

/// Intrinsics that change the kind (or type) of their argument: a value
/// flowing through one of these is *re-represented*, so it does not
/// constrain the source and target to share a precision.
const CONVERSION_BARRIERS: &[&str] = &[
    "dble", "sngl", "real", "int", "nint", "floor", "size", "isnan", "epsilon", "huge", "tiny",
];

/// A weighted interaction between two precision congruence classes, keyed
/// by class representatives (the smallest [`FpVarId`] in each class).
#[derive(Debug, Clone, PartialEq)]
pub struct AffinityEdge {
    pub a: FpVarId,
    pub b: FpVarId,
    pub weight: f64,
}

/// The whole-program precision dependence graph: congruence classes plus
/// the class-level affinity edges.
pub struct DepGraph {
    /// Union-find root per FP variable (indexed by `FpVarId.0`).
    root: Vec<usize>,
    /// Raw pairwise interactions recorded during the walk (pre-projection).
    interactions: Vec<(FpVarId, FpVarId, f64)>,
    /// The flow graph built alongside (reused for static-penalty ordering).
    flow: FpFlowGraph,
}

impl DepGraph {
    pub fn build(program: &Program, index: &ProgramIndex) -> Self {
        let mut uf = UnionFind::new(index.fp_var_count());
        let mut interactions = Vec::new();
        for (_, proc) in program.all_procedures() {
            let scope = index
                .scope_of_procedure(&proc.name)
                .expect("analyzed program has all procedures indexed");
            walk_body(&proc.body, scope, index, 0, &mut uf, &mut interactions);
        }
        if let Some(mp) = &program.main {
            let scope = main_scope(index);
            walk_body(&mp.body, scope, index, 0, &mut uf, &mut interactions);
        }

        let flow = FpFlowGraph::build(program, index);
        // Call argument bindings: `intent(inout)` forces the actual and the
        // dummy to agree in both directions — a congruence merge. Every FP
        // actual→dummy pair is an affinity interaction, charged the cast
        // cost because a precision split here buys a wrapper per call.
        for site in flow.sites() {
            let Some(pinfo) = index.procedure(&site.callee) else {
                continue;
            };
            let w = DEFAULT_TRIP.powi(site.loop_depth as i32).max(1.0) * CAST_COST;
            for (ai, actual) in site.args.iter().enumerate() {
                let Some(param) = pinfo.params.get(ai) else {
                    continue;
                };
                let Some(dummy_id) = fp_id(index, pinfo.scope, param) else {
                    continue;
                };
                let mut srcs = Vec::new();
                direct_sources(index, site.caller, actual, &mut srcs);
                srcs.sort_by_key(|v| v.0);
                srcs.dedup();
                for &sid in &srcs {
                    if sid != dummy_id {
                        interactions.push((sid, dummy_id, w));
                    }
                }
                // A plain variable (or whole array) bound to an explicit
                // intent(inout) dummy flows both ways unconverted.
                let inout = index
                    .lookup(pinfo.scope, param)
                    .is_some_and(|sym| sym.intent == Some(Intent::InOut));
                if inout {
                    if let Expr::Var(name) = actual {
                        if let Some(actual_id) = fp_id(index, site.caller, name) {
                            uf.union(actual_id.0, dummy_id.0);
                        }
                    }
                }
            }
        }

        let mut g = DepGraph {
            root: Vec::new(),
            interactions,
            flow,
        };
        g.root = (0..index.fp_var_count()).map(|i| uf.find(i)).collect();
        g
    }

    /// The congruence-class representative of `id` (smallest member id).
    pub fn class_rep(&self, id: FpVarId) -> FpVarId {
        FpVarId(self.root[id.0])
    }

    /// All congruence classes over the program's FP variables, each sorted
    /// by variable id, ordered by representative.
    pub fn classes(&self) -> Vec<Vec<FpVarId>> {
        let mut by_root: Vec<Vec<FpVarId>> = vec![Vec::new(); self.root.len()];
        for (i, &r) in self.root.iter().enumerate() {
            by_root[r].push(FpVarId(i));
        }
        by_root.into_iter().filter(|c| !c.is_empty()).collect()
    }

    /// Class-level affinity edges: raw interactions projected onto class
    /// representatives, intra-class pairs dropped, weights summed.
    pub fn affinity_edges(&self) -> Vec<AffinityEdge> {
        let mut edges: Vec<AffinityEdge> = Vec::new();
        for &(a, b, w) in &self.interactions {
            let (ra, rb) = (self.class_rep(a), self.class_rep(b));
            if ra == rb {
                continue;
            }
            let (lo, hi) = if ra.0 <= rb.0 { (ra, rb) } else { (rb, ra) };
            match edges.iter_mut().find(|e| e.a == lo && e.b == hi) {
                Some(e) => e.weight += w,
                None => edges.push(AffinityEdge {
                    a: lo,
                    b: hi,
                    weight: w,
                }),
            }
        }
        edges.sort_by_key(|x| (x.a.0, x.b.0));
        edges
    }

    /// Partition the search atoms into congruence groups: each group is a
    /// set of indices into `atoms` whose variables share a class. Groups
    /// appear in order of their first atom.
    pub fn atom_groups(&self, atoms: &[FpVarId]) -> Vec<Vec<usize>> {
        let mut groups: Vec<(FpVarId, Vec<usize>)> = Vec::new();
        for (i, &a) in atoms.iter().enumerate() {
            let rep = self.class_rep(a);
            match groups.iter_mut().find(|(r, _)| *r == rep) {
                Some((_, g)) => g.push(i),
                None => groups.push((rep, vec![i])),
            }
        }
        groups.into_iter().map(|(_, g)| g).collect()
    }

    /// [`Self::atom_groups`] ordered by descending static penalty: the
    /// groups whose demotion creates the most expensive precision boundary
    /// are probed first, so high-value decisions are made early in the dd
    /// schedule. Ties break toward the group with the smallest atom index
    /// (declaration order). `caller_scopes` restricts penalty pricing to
    /// call sites inside those scopes, matching a hotspot-scoped search.
    pub fn ordered_atom_groups(
        &self,
        index: &ProgramIndex,
        atoms: &[FpVarId],
        caller_scopes: Option<&[ScopeId]>,
    ) -> Vec<Vec<usize>> {
        let mut groups = self.atom_groups(atoms);
        let mut keyed: Vec<(f64, usize, Vec<usize>)> = groups
            .drain(..)
            .map(|g| {
                let mut map = PrecisionMap::declared(index);
                for &i in &g {
                    map.set(atoms[i], FpPrecision::Single);
                }
                let pen = static_penalty_scoped(&self.flow, index, &map, caller_scopes);
                let first = g[0];
                (pen, first, g)
            })
            .collect();
        // `total_cmp`, not `partial_cmp`: a NaN penalty (conceivable from a
        // degenerate cost model) must still sort into one deterministic
        // position, and the `Equal`-on-incomparable fallback made the final
        // order depend on the incoming group order, which `sort_by` (stable
        // but input-sensitive) then froze into the dd schedule. Descending
        // penalty, then ascending first-atom index — a total order, so the
        // schedule is a pure function of the program.
        keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        keyed.into_iter().map(|(_, _, g)| g).collect()
    }
}

fn main_scope(index: &ProgramIndex) -> ScopeId {
    (0..index.scope_count())
        .map(ScopeId)
        .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
        .expect("program has a main scope")
}

/// Resolve `name` in `scope` to its home-scope FP variable id, if it is an
/// FP variable at all.
fn fp_id(index: &ProgramIndex, scope: ScopeId, name: &str) -> Option<FpVarId> {
    let sym = index.lookup(scope, name)?;
    sym.ty.fp_precision()?;
    index.fp_var_id(sym.scope, name)
}

/// Collect the *direct* FP sources of `e`: variables whose stored
/// representation reaches the expression value without re-representation.
/// Array references contribute the whole object (no index descent);
/// function references contribute the callee's result variable only (the
/// arguments feed the callee through its own assignments, which the walk of
/// the callee body already sees); conversion intrinsics are flow barriers;
/// all other intrinsics (`sqrt`, `sin`, …) pass their arguments through.
fn direct_sources(index: &ProgramIndex, scope: ScopeId, e: &Expr, out: &mut Vec<FpVarId>) {
    match e {
        Expr::Var(name) => {
            if let Some(id) = fp_id(index, scope, name) {
                out.push(id);
            }
        }
        Expr::NameRef { name, args } => match classify(index, scope, name) {
            NameClass::Scalar | NameClass::Array => {
                if let Some(id) = fp_id(index, scope, name) {
                    out.push(id);
                }
            }
            NameClass::Function => {
                if let Some(p) = index.procedure(name) {
                    if let Some(result) = p.result.as_deref() {
                        if let Some(id) = index.fp_var_id(p.scope, result) {
                            out.push(id);
                        }
                    }
                }
            }
            NameClass::Intrinsic if !CONVERSION_BARRIERS.contains(&name.as_str()) => {
                for a in args {
                    direct_sources(index, scope, a, out);
                }
            }
            _ => {}
        },
        Expr::Bin { lhs, rhs, .. } => {
            direct_sources(index, scope, lhs, out);
            direct_sources(index, scope, rhs, out);
        }
        Expr::Un { operand, .. } => direct_sources(index, scope, operand, out),
        _ => {}
    }
}

fn walk_body(
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    depth: usize,
    uf: &mut UnionFind,
    interactions: &mut Vec<(FpVarId, FpVarId, f64)>,
) {
    for s in body {
        match s {
            Stmt::Assign { target, value, .. } => {
                let Some(t) = fp_id(index, scope, target.name()) else {
                    continue;
                };
                let mut srcs = Vec::new();
                direct_sources(index, scope, value, &mut srcs);
                srcs.sort_by_key(|v| v.0);
                srcs.dedup();
                let w = DEFAULT_TRIP.powi(depth as i32).max(1.0);
                for &sid in &srcs {
                    if sid != t {
                        interactions.push((t, sid, w));
                    }
                }
                // The congruence rule: a copy chain. Exactly one distinct
                // direct source (and not a self-update) means the target is
                // a re-expression of that source — demoting one without the
                // other narrows the chain. Multi-source mixes (sums of
                // several variables) do NOT merge: the mix point is exactly
                // where precision may legitimately change.
                if srcs.len() == 1 && srcs[0] != t {
                    uf.union(t.0, srcs[0].0);
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (_, arm_body) in arms {
                    walk_body(arm_body, scope, index, depth, uf, interactions);
                }
                if let Some(eb) = else_body {
                    walk_body(eb, scope, index, depth, uf, interactions);
                }
            }
            Stmt::Do { body: lb, .. } => {
                walk_body(lb, scope, index, depth + 1, uf, interactions);
            }
            Stmt::DoWhile { body: lb, .. } => {
                walk_body(lb, scope, index, depth + 1, uf, interactions);
            }
            _ => {}
        }
    }
}

/// Minimal union-find with path compression; classes are canonicalised to
/// their smallest member so representatives are deterministic.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut r = i;
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut c = i;
        while self.parent[c] != r {
            let next = self.parent[c];
            self.parent[c] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Smaller id wins the root: stable, declaration-ordered reps.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    fn setup(src: &str) -> (Program, ProgramIndex) {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        (p, ix)
    }

    fn id(ix: &ProgramIndex, proc: &str, name: &str) -> FpVarId {
        let scope = ix.scope_of_procedure(proc).unwrap();
        ix.fp_var_id(scope, name)
            .unwrap_or_else(|| panic!("no fp var {proc}::{name}"))
    }

    /// Class membership by (proc, name) pairs, order-insensitive.
    fn same_class(g: &DepGraph, ix: &ProgramIndex, a: (&str, &str), b: (&str, &str)) -> bool {
        g.class_rep(id(ix, a.0, a.1)) == g.class_rep(id(ix, b.0, b.1))
    }

    const COPY_CHAIN: &str = r#"
module m
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0d0
    t1 = x
    do k = 1, 5
      d1 = 2.0d0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun
  subroutine driver(result, n)
    real(kind=8) :: result
    integer :: n
    real(kind=8) :: s1, h, t1, t2, dppi
    integer :: i
    s1 = 0.0d0
    t1 = 0.0d0
    dppi = 3.141592653589793d0
    h = dppi / n
    do i = 1, n
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    result = s1
  end subroutine driver
end module m
"#;

    #[test]
    fn copy_chains_merge_across_calls_and_assignments() {
        let (p, ix) = setup(COPY_CHAIN);
        let g = DepGraph::build(&p, &ix);
        // t2 = fun(...) chains to fun's result t1, which chains to fun's x.
        assert!(same_class(&g, &ix, ("driver", "t2"), ("fun", "t1")));
        assert!(same_class(&g, &ix, ("fun", "t1"), ("fun", "x")));
        // t1 = t2 joins driver's t1 to the same class.
        assert!(same_class(&g, &ix, ("driver", "t1"), ("driver", "t2")));
        // h = dppi / n is a copy chain (n is an integer, not an FP source).
        assert!(same_class(&g, &ix, ("driver", "h"), ("driver", "dppi")));
        // result = s1 is a copy chain.
        assert!(same_class(&g, &ix, ("driver", "result"), ("driver", "s1")));
        // Multi-source mixes do NOT merge: s1 accumulates h, t1, t2 but
        // stays in its own class; d1's only defs are literal/self-updates.
        assert!(!same_class(&g, &ix, ("driver", "s1"), ("driver", "h")));
        assert!(!same_class(&g, &ix, ("driver", "s1"), ("driver", "t1")));
        assert!(!same_class(&g, &ix, ("fun", "d1"), ("fun", "t1")));
        assert!(!same_class(&g, &ix, ("fun", "d1"), ("driver", "h")));
    }

    const GUARD_SHAPE: &str = r#"
module m
contains
  subroutine kernel(out, gate, n)
    real(kind=8) :: out, gate
    integer :: n
    real(kind=8) :: eps, canc, q, s, acc, x
    integer :: i
    s = 0.0d0
    x = 1.0d0
    do i = 1, n
      x = x + 1.0d0
      s = s + 1.0d0 / sqrt(x * x + 1.0d0)
    end do
    eps = 1.0d-8
    canc = (1.0d0 + eps) - 1.0d0
    acc = 0.0d0
    if (gate > 1.0d0) then
      q = 16777216.0d0
      do i = 1, 100
        q = q + 1.0d0
      end do
      acc = (q - 16777216.0d0) * 1.0d-2
    end if
    out = s + acc + canc * 1.0d-10
  end subroutine kernel
end module m
"#;

    #[test]
    fn guardrail_shape_produces_the_expected_classes() {
        let (p, ix) = setup(GUARD_SHAPE);
        let g = DepGraph::build(&p, &ix);
        assert!(same_class(&g, &ix, ("kernel", "eps"), ("kernel", "canc")));
        assert!(same_class(&g, &ix, ("kernel", "q"), ("kernel", "acc")));
        // s, x, out are mix points and stay separate.
        for (a, b) in [("s", "x"), ("s", "eps"), ("x", "q"), ("out", "s")] {
            assert!(
                !same_class(&g, &ix, ("kernel", a), ("kernel", b)),
                "{a} and {b} must not merge"
            );
        }
    }

    #[test]
    fn atom_groups_partition_atoms_by_class() {
        let (p, ix) = setup(GUARD_SHAPE);
        let g = DepGraph::build(&p, &ix);
        let scope = ix.scope_of_procedure("kernel").unwrap();
        let atoms: Vec<FpVarId> = ["eps", "canc", "q", "s", "acc", "x"]
            .iter()
            .map(|n| ix.fp_var_id(scope, n).unwrap())
            .collect();
        let groups = g.atom_groups(&atoms);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 4], vec![3], vec![5]]);
        // Every atom appears in exactly one group.
        let mut seen: Vec<usize> = groups.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..atoms.len()).collect::<Vec<_>>());
    }

    const INOUT: &str = r#"
module m
contains
  subroutine update(u, w, n)
    real(kind=8), intent(inout) :: u(n)
    real(kind=8), intent(in) :: w(n)
    integer, intent(in) :: n
    integer :: i
    do i = 1, n
      u(i) = u(i) + w(i) * 0.5d0
    end do
  end subroutine update
  subroutine driver(a, b, n)
    real(kind=8) :: a(n), b(n)
    integer :: n
    call update(a, b, n)
  end subroutine driver
end module m
"#;

    #[test]
    fn intent_inout_bindings_merge_but_intent_in_does_not() {
        let (p, ix) = setup(INOUT);
        let g = DepGraph::build(&p, &ix);
        assert!(same_class(&g, &ix, ("driver", "a"), ("update", "u")));
        assert!(!same_class(&g, &ix, ("driver", "b"), ("update", "w")));
    }

    #[test]
    fn affinity_edges_connect_classes_with_call_weighted_interactions() {
        let (p, ix) = setup(COPY_CHAIN);
        let g = DepGraph::build(&p, &ix);
        let edges = g.affinity_edges();
        assert!(!edges.is_empty());
        // h interacts with fun's x through the call argument i*h, inside
        // the driver loop: the edge carries the trip × cast weight.
        let h = g.class_rep(id(&ix, "driver", "h"));
        let x = g.class_rep(id(&ix, "fun", "x"));
        let (lo, hi) = if h.0 <= x.0 { (h, x) } else { (x, h) };
        let e = edges
            .iter()
            .find(|e| e.a == lo && e.b == hi)
            .expect("h ~ fun::x affinity edge");
        assert!(
            e.weight >= DEFAULT_TRIP * CAST_COST,
            "call-boundary edge weight {} must carry trip × cast",
            e.weight
        );
        // No edge connects a class to itself.
        for e in &edges {
            assert_ne!(e.a, e.b);
        }
    }

    const ORDERING: &str = r#"
module m
contains
  subroutine leaf(v)
    real(kind=8) :: v
    v = v * 0.5d0
  end subroutine leaf
  subroutine driver(n)
    integer :: n
    real(kind=8) :: hot, cold
    integer :: i
    hot = 1.0d0
    cold = 2.0d0
    do i = 1, n
      call leaf(hot)
    end do
    cold = cold * 1.5d0
  end subroutine driver
end module m
"#;

    #[test]
    fn ordered_atom_groups_probe_high_penalty_classes_first() {
        let (p, ix) = setup(ORDERING);
        let g = DepGraph::build(&p, &ix);
        let scope = ix.scope_of_procedure("driver").unwrap();
        // Atom order deliberately puts `cold` first: penalty ordering must
        // override declaration order.
        let atoms = vec![
            ix.fp_var_id(scope, "cold").unwrap(),
            ix.fp_var_id(scope, "hot").unwrap(),
        ];
        let plain = g.atom_groups(&atoms);
        assert_eq!(plain[0], vec![0], "declaration order starts with cold");
        let ordered = g.ordered_atom_groups(&ix, &atoms, None);
        // Lowering `hot` splits the in-loop call boundary to `leaf` (its
        // dummy has no intent, so no congruence merge) — a 64×3 penalty.
        // Lowering `cold` costs nothing statically. hot's group goes first.
        assert_eq!(ordered[0], vec![1], "hot (penalty) before cold (free)");
        assert_eq!(ordered[1], vec![0]);
        // Zero-penalty ties fall back to first-atom order.
        let tie = g.ordered_atom_groups(&ix, &atoms[..1], None);
        assert_eq!(tie, vec![vec![0]]);
    }

    const TIES: &str = r#"
module m
contains
  subroutine driver()
    real(kind=8) :: a, b, c
    a = 1.0d0
    b = 2.0d0
    c = 3.0d0
  end subroutine driver
end module m
"#;

    /// Regression lock for the ordering's tie-break contract: the sort key
    /// is (descending penalty by `f64::total_cmp`, ascending first-atom
    /// index) — a *total* order. The previous comparator used
    /// `partial_cmp(..).unwrap_or(Equal)`, which is not total when a
    /// penalty is NaN; `sort_by` on a non-total comparator has an
    /// unspecified result (and may panic), so the dd probe schedule was
    /// not a pure function of the program.
    #[test]
    fn ordered_atom_groups_break_penalty_ties_by_first_atom_index() {
        let (p, ix) = setup(TIES);
        let g = DepGraph::build(&p, &ix);
        let scope = ix.scope_of_procedure("driver").unwrap();
        // Three independent zero-penalty classes, supplied out of
        // declaration order: c, a, b.
        let atoms = vec![
            ix.fp_var_id(scope, "c").unwrap(),
            ix.fp_var_id(scope, "a").unwrap(),
            ix.fp_var_id(scope, "b").unwrap(),
        ];
        let ordered = g.ordered_atom_groups(&ix, &atoms, None);
        // All penalties tie, so groups keep ascending first-atom order —
        // i.e. exactly the order the atoms were supplied in.
        assert_eq!(ordered, vec![vec![0], vec![1], vec![2]]);
    }
}
