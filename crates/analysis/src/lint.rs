//! Static numerical-hazard lints.
//!
//! Verificarlo CI's lesson (PAPERS.md) is that numerical checks belong in
//! the CI gate, not only inside a tuning run. This pass inspects the AST —
//! no variant is executed — and reports, with `proc:line` spans:
//!
//! - [`LintKind::FloatEquality`]: `==` / `/=` between floating operands;
//! - [`LintKind::AbsorptionRisk`]: an f32 accumulator updated in a counted
//!   loop whose total trip count can exceed 2²⁴ (the point where `x + 1.0`
//!   returns `x`), or that is seeded at a magnitude ≥ 2²⁴;
//! - [`LintKind::ImplicitNarrowing`]: a double-precision value stored into
//!   a single-precision target (assignment or call-argument binding) under
//!   the candidate [`PrecisionMap`];
//! - [`LintKind::CancellationCandidate`]: subtraction whose operands share
//!   a direct source (variable or literal), the static shape of
//!   catastrophic cancellation like `(1 + eps) - 1`;
//! - [`LintKind::UninitializedUse`]: an FP local read before any textual
//!   definition reaches it (optimistic: every branch counts);
//! - [`LintKind::OverflowToInf`]: a store whose statically bounded
//!   magnitude exceeds `f32::MAX` into an f32 target — a guaranteed
//!   overflow to ±Inf the moment the variable is lowered (range-driven
//!   entry point only).
//!
//! [`run_lints`] judges by program shape alone. [`run_lints_with_ranges`]
//! additionally consumes abstract-interpretation value ranges
//! ([`RangeMap`], from [`crate::absint`]'s interval domain): where both an
//! accumulator's range and its increment are statically bounded, the range
//! *replaces* the 2²⁴ trip/seed heuristic (certifying or refuting the
//! hazard either way), subtraction operands with known ranges get an
//! actual condition-number verdict instead of the shared-source shape
//! test, and the overflow lint becomes possible at all.
//!
//! Sites use the same `proc:line` keys as the shadow-execution guardrails
//! (`cancellation_site`, `nonfinite_origin` in the trial journal), so
//! `prose-report` can line static predictions up against dynamically
//! observed hazards.

use std::collections::HashSet;

use crate::absint::{cancellation_kappa, expr_interval, RangeMap, CANCEL_KAPPA};
use crate::flow::FpFlowGraph;
use crate::static_cost::const_int;
use crate::typing::{adapted_precision, classify, expr_type, NameClass};
use prose_fortran::ast::{
    BinOp, Declaration, Expr, FpPrecision, Intent, LValue, Program, Stmt, TypeSpec,
};
use prose_fortran::precision::PrecisionMap;
use prose_fortran::sema::{FpVarId, ProgramIndex, ScopeId, ScopeKind};
use serde::{Deserialize, Serialize};

/// One ulp step at 2²⁴ exceeds 1.0 in f32: unit increments are absorbed.
const ABSORPTION_MAGNITUDE: f64 = 16_777_216.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum LintKind {
    FloatEquality,
    AbsorptionRisk,
    ImplicitNarrowing,
    CancellationCandidate,
    UninitializedUse,
    OverflowToInf,
}

/// A single static finding. `site` is `proc:line`, matching the site keys
/// the dynamic shadow guardrails journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lint {
    pub kind: LintKind,
    pub site: String,
    pub proc: String,
    pub line: u32,
    #[serde(default)]
    pub variable: Option<String>,
    pub message: String,
}

impl Lint {
    fn new(kind: LintKind, proc: &str, line: u32, variable: Option<String>, msg: String) -> Self {
        Lint {
            kind,
            site: format!("{proc}:{line}"),
            proc: proc.to_string(),
            line,
            variable,
            message: msg,
        }
    }
}

/// Run every lint over the program under the candidate precision map.
/// Narrowing lints are map-relative (a uniform map produces none); the
/// structural lints (equality, cancellation, uninitialized use) are not.
pub fn run_lints(program: &Program, index: &ProgramIndex, map: &PrecisionMap) -> Vec<Lint> {
    run_lints_with_ranges(program, index, map, &RangeMap::default())
}

/// [`run_lints`] with abstract-interpretation value ranges: variables the
/// `ranges` map bounds get range-certified (or range-refuted) absorption
/// and cancellation verdicts in place of the structural heuristics, plus
/// the [`LintKind::OverflowToInf`] lint. An empty map degrades to exactly
/// [`run_lints`].
pub fn run_lints_with_ranges(
    program: &Program,
    index: &ProgramIndex,
    map: &PrecisionMap,
    ranges: &RangeMap,
) -> Vec<Lint> {
    let mut out = Vec::new();
    for (_, proc) in program.all_procedures() {
        let scope = index
            .scope_of_procedure(&proc.name)
            .expect("analyzed program has all procedures indexed");
        lint_unit(&proc.name, &proc.body, scope, index, map, ranges, &mut out);
        uninit_unit(&proc.name, &proc.decls, &proc.body, scope, index, &mut out);
    }
    if let Some(mp) = &program.main {
        let scope = main_scope(index);
        let name = index.scope_info(scope).name.clone();
        lint_unit(&name, &mp.body, scope, index, map, ranges, &mut out);
        uninit_unit(&name, &mp.decls, &mp.body, scope, index, &mut out);
    }
    // Call-boundary narrowing rides the flow graph's mismatch machinery.
    let flow = FpFlowGraph::build(program, index);
    for m in flow.mismatches(index, map) {
        use prose_fortran::ast::FpPrecision::*;
        if !(m.caller_precision == Double && m.callee_precision == Single) {
            continue;
        }
        let site = &flow.sites()[m.site];
        let caller = index.scope_info(site.caller).name.clone();
        out.push(Lint::new(
            LintKind::ImplicitNarrowing,
            &caller,
            site.line,
            Some(m.param.clone()),
            format!(
                "argument {} of {} narrows f64 to f32 at the call boundary",
                m.param, site.callee
            ),
        ));
    }
    // Identical expressions repeated on one line ((t2-t1)*(t2-t1)) would
    // otherwise report twice.
    let mut seen = HashSet::new();
    out.retain(|l| {
        seen.insert(format!(
            "{:?}|{}|{:?}|{}",
            l.kind, l.site, l.variable, l.message
        ))
    });
    out
}

fn main_scope(index: &ProgramIndex) -> ScopeId {
    (0..index.scope_count())
        .map(ScopeId)
        .find(|s| index.scope_info(*s).kind == ScopeKind::Main)
        .expect("program has a main scope")
}

fn fp_id(index: &ProgramIndex, scope: ScopeId, name: &str) -> Option<FpVarId> {
    let sym = index.lookup(scope, name)?;
    sym.ty.fp_precision()?;
    index.fp_var_id(sym.scope, name)
}

/// The expression-shape lints plus absorption, one procedure at a time.
#[allow(clippy::too_many_arguments)]
fn lint_unit(
    unit: &str,
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    ranges: &RangeMap,
    out: &mut Vec<Lint>,
) {
    // Accumulators seeded at ≥ 2²⁴ anywhere in the unit: a short loop on
    // top of such a seed absorbs just the same as a 2²⁴-trip loop.
    let mut big_seeded: HashSet<&str> = HashSet::new();
    for s in body {
        s.walk(&mut |st| {
            if let Stmt::Assign { target, value, .. } = st {
                let mut big = false;
                value.walk(&mut |e| {
                    if let Expr::RealLit { value: v, .. } = e {
                        big |= v.abs() >= ABSORPTION_MAGNITUDE;
                    }
                });
                if big {
                    big_seeded.insert(target.name());
                }
            }
        });
    }
    walk_stmts(
        unit,
        body,
        scope,
        index,
        map,
        ranges,
        &big_seeded,
        &mut Vec::new(),
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn walk_stmts(
    unit: &str,
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    ranges: &RangeMap,
    big_seeded: &HashSet<&str>,
    trips: &mut Vec<Option<f64>>,
    out: &mut Vec<Lint>,
) {
    for s in body {
        let line = s.span().line;
        s.for_each_expr(&mut |e| {
            e.walk(&mut |sub| expr_lints(unit, line, sub, scope, index, map, ranges, out));
        });
        match s {
            Stmt::Assign { target, value, .. } => {
                assign_lints(
                    unit, line, target, value, scope, index, map, ranges, big_seeded, trips, out,
                );
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (_, b) in arms {
                    walk_stmts(unit, b, scope, index, map, ranges, big_seeded, trips, out);
                }
                if let Some(b) = else_body {
                    walk_stmts(unit, b, scope, index, map, ranges, big_seeded, trips, out);
                }
            }
            Stmt::Do {
                start,
                end,
                step,
                body: b,
                ..
            } => {
                trips.push(trip_count(start, end, step.as_ref()));
                walk_stmts(unit, b, scope, index, map, ranges, big_seeded, trips, out);
                trips.pop();
            }
            Stmt::DoWhile { body: b, .. } => {
                // No static trip bound at all.
                trips.push(None);
                walk_stmts(unit, b, scope, index, map, ranges, big_seeded, trips, out);
                trips.pop();
            }
            _ => {}
        }
    }
}

/// Constant trip count of a counted loop, if derivable.
fn trip_count(start: &Expr, end: &Expr, step: Option<&Expr>) -> Option<f64> {
    let lo = const_int(start)?;
    let hi = const_int(end)?;
    let st = match step {
        Some(e) => const_int(e)?,
        None => 1,
    };
    if st == 0 {
        return None;
    }
    Some((((hi - lo) / st + 1).max(0)) as f64)
}

/// Float equality and cancellation candidates, per expression node.
#[allow(clippy::too_many_arguments)]
fn expr_lints(
    unit: &str,
    line: u32,
    e: &Expr,
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    ranges: &RangeMap,
    out: &mut Vec<Lint>,
) {
    let Expr::Bin { op, lhs, rhs } = e else {
        return;
    };
    let fp = |x: &Expr| matches!(expr_type(index, scope, map, x), Some(TypeSpec::Real(_)));
    match op {
        BinOp::Eq | BinOp::Ne if (fp(lhs) || fp(rhs)) => {
            let var = named_operand(lhs).or_else(|| named_operand(rhs));
            out.push(Lint::new(
                LintKind::FloatEquality,
                unit,
                line,
                var,
                "floating-point equality comparison; use a tolerance".into(),
            ));
        }
        BinOp::Sub => {
            if !fp(lhs) && !fp(rhs) {
                return;
            }
            let var = || named_operand(lhs).or_else(|| named_operand(rhs));
            // With both operand ranges known the condition number itself
            // decides — certifying candidates the shape test cannot see
            // and refuting shapes whose operands provably stay apart.
            let bounded = expr_interval(index, scope, ranges, lhs)
                .zip(expr_interval(index, scope, ranges, rhs))
                .filter(|(a, b)| a.max_abs() > 0.0 || b.max_abs() > 0.0);
            if let Some((a, b)) = bounded {
                let kappa = cancellation_kappa(&a, &b);
                if kappa >= CANCEL_KAPPA {
                    let how = if kappa.is_finite() {
                        format!("amplification up to {kappa:.1e}")
                    } else {
                        "the difference may vanish".to_string()
                    };
                    out.push(Lint::new(
                        LintKind::CancellationCandidate,
                        unit,
                        line,
                        var(),
                        format!("subtraction of operands with overlapping ranges: {how}"),
                    ));
                }
                return;
            }
            let (a, b) = (leaf_set(index, scope, lhs), leaf_set(index, scope, rhs));
            if let Some(shared) = a.intersection(&b).next() {
                let (var, what) = match shared {
                    Leaf::Var(_, n) => (Some(n.clone()), n.clone()),
                    Leaf::Lit(bits) => (None, format!("literal {}", f64::from_bits(*bits))),
                };
                out.push(Lint::new(
                    LintKind::CancellationCandidate,
                    unit,
                    line,
                    var,
                    format!("subtraction of correlated expressions sharing {what}"),
                ));
            }
        }
        _ => {}
    }
}

fn named_operand(e: &Expr) -> Option<String> {
    match e {
        Expr::Var(n) => Some(n.clone()),
        Expr::NameRef { name, .. } => Some(name.clone()),
        _ => None,
    }
}

/// Direct sources of an expression for correlation purposes: resolved
/// variables (whole-object) and FP literals. Function and intrinsic
/// references contribute their *arguments* — `sin(x) - x` is correlated
/// through `x` — never the callee itself.
#[derive(PartialEq, Eq, Hash)]
enum Leaf {
    Var(usize, String),
    Lit(u64),
}

fn leaf_set(index: &ProgramIndex, scope: ScopeId, e: &Expr) -> HashSet<Leaf> {
    let mut out = HashSet::new();
    collect_leaves(index, scope, e, &mut out);
    out
}

fn collect_leaves(index: &ProgramIndex, scope: ScopeId, e: &Expr, out: &mut HashSet<Leaf>) {
    match e {
        Expr::RealLit { value, .. } => {
            out.insert(Leaf::Lit(value.to_bits()));
        }
        Expr::IntLit(v) => {
            out.insert(Leaf::Lit((*v as f64).to_bits()));
        }
        Expr::Var(name) => {
            if let Some(sym) = index.lookup(scope, name) {
                out.insert(Leaf::Var(sym.scope.0, name.clone()));
            }
        }
        Expr::NameRef { name, args } => {
            match classify(index, scope, name) {
                NameClass::Scalar | NameClass::Array => {
                    if let Some(sym) = index.lookup(scope, name) {
                        out.insert(Leaf::Var(sym.scope.0, name.clone()));
                    }
                }
                _ => {}
            }
            for a in args {
                collect_leaves(index, scope, a, out);
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            collect_leaves(index, scope, lhs, out);
            collect_leaves(index, scope, rhs, out);
        }
        Expr::Un { operand, .. } => collect_leaves(index, scope, operand, out),
        _ => {}
    }
}

/// Assignment-level lints: absorption-prone accumulators, implicit
/// narrowing, and (range-driven) guaranteed f32 overflow under the
/// candidate map.
#[allow(clippy::too_many_arguments)]
fn assign_lints(
    unit: &str,
    line: u32,
    target: &LValue,
    value: &Expr,
    scope: ScopeId,
    index: &ProgramIndex,
    map: &PrecisionMap,
    ranges: &RangeMap,
    big_seeded: &HashSet<&str>,
    trips: &[Option<f64>],
    out: &mut Vec<Lint>,
) {
    let Some(tid) = fp_id(index, scope, target.name()) else {
        return;
    };
    let lowered = map.get(tid) == FpPrecision::Single;

    if lowered && !trips.is_empty() && is_self_accumulation(target.name(), value) {
        // When the accumulator's range and its increment are both
        // statically bounded, the ranges decide outright: an f32 absorbs
        // an increment once the accumulator is ~2²⁴ increments large, so
        // magnitude beyond `inc · 2²⁴` certifies the hazard and magnitude
        // below it refutes the trip/seed heuristics (a huge loop whose
        // accumulator provably stays small is fine).
        let certified = ranges
            .lookup(index, scope, target.name())
            .filter(|acc| acc.max_abs().is_finite())
            .zip(increment_interval(
                index,
                scope,
                ranges,
                target.name(),
                value,
            ))
            .map(|(acc, inc)| {
                (acc.max_abs() >= inc * ABSORPTION_MAGNITUDE).then(|| {
                    format!(
                        "accumulator range reaches |x| = {:.3e}, where f32 absorbs \
                         increments as small as {:.3e}",
                        acc.max_abs(),
                        inc
                    )
                })
            });
        let total: Option<f64> = trips
            .iter()
            .copied()
            .try_fold(1.0, |acc, t| t.map(|n| acc * n.max(1.0)));
        let hazard = match certified {
            Some(verdict) => verdict,
            None => match total {
                None => Some("loop trip count is not statically bounded".to_string()),
                Some(n) if n >= ABSORPTION_MAGNITUDE => {
                    Some(format!("loop trip count {n:.0} exceeds 2^24"))
                }
                Some(_) if big_seeded.contains(target.name()) => {
                    Some("accumulator is seeded at a magnitude >= 2^24".to_string())
                }
                Some(_) => None,
            },
        };
        if let Some(why) = hazard {
            out.push(Lint::new(
                LintKind::AbsorptionRisk,
                unit,
                line,
                Some(target.name().to_string()),
                format!("f32 accumulation may absorb increments: {why}"),
            ));
        }
    }

    if lowered && adapted_precision(index, scope, map, value) == Some(FpPrecision::Double) {
        out.push(Lint::new(
            LintKind::ImplicitNarrowing,
            unit,
            line,
            Some(target.name().to_string()),
            "f64 value implicitly narrowed to an f32 target".into(),
        ));
    }

    // Guaranteed overflow: the stored value's magnitude is statically
    // bounded *above* f32::MAX, so lowering this target turns the store
    // into ±Inf on every execution the bound covers.
    if lowered {
        if let Some(vi) = expr_interval(index, scope, ranges, value) {
            let mag = vi.max_abs();
            if mag.is_finite() && mag > f32::MAX as f64 {
                out.push(Lint::new(
                    LintKind::OverflowToInf,
                    unit,
                    line,
                    Some(target.name().to_string()),
                    format!(
                        "store of magnitude up to {mag:.3e} overflows the f32 range \
                         (3.4e38) to ±Inf"
                    ),
                ));
            }
        }
    }
}

/// The increment interval of a self-accumulation `x = x ± e` / `x = e + x`:
/// the magnitude floor of `e`, for the absorption comparison. `None` when
/// the update is not that exact shape or `e` has no static range.
fn increment_interval(
    index: &ProgramIndex,
    scope: ScopeId,
    ranges: &RangeMap,
    name: &str,
    value: &Expr,
) -> Option<f64> {
    let Expr::Bin { op, lhs, rhs } = value else {
        return None;
    };
    let is_self = |e: &Expr| matches!(e, Expr::Var(n) | Expr::NameRef { name: n, .. } if n == name);
    let inc = match op {
        BinOp::Add | BinOp::Sub if is_self(lhs) => rhs,
        BinOp::Add if is_self(rhs) => lhs,
        _ => return None,
    };
    let iv = expr_interval(index, scope, ranges, inc)?;
    let floor = iv.min_abs();
    (floor > 0.0 && floor.is_finite()).then_some(floor)
}

/// `x = x + e` / `x = e + x` / `x = x - e` shapes (whole-object for array
/// elements): the target feeds back into an additive update.
fn is_self_accumulation(name: &str, value: &Expr) -> bool {
    let top_additive = matches!(
        value,
        Expr::Bin {
            op: BinOp::Add | BinOp::Sub,
            ..
        }
    );
    if !top_additive {
        return false;
    }
    let mut found = false;
    value.walk(&mut |e| match e {
        Expr::Var(n) | Expr::NameRef { name: n, .. } if n == name => found = true,
        _ => {}
    });
    found
}

/// Optimistic textual-order uninitialized-use scan: an FP local (neither a
/// dummy nor a parameter, no declared initializer) read before any
/// definition in statement order. Every branch body counts as executed, so
/// conditional initialisation never triggers a report.
fn uninit_unit(
    unit: &str,
    decls: &[Declaration],
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    out: &mut Vec<Lint>,
) {
    let initialized: HashSet<&str> = decls
        .iter()
        .flat_map(|d| d.entities.iter())
        .filter(|e| e.init.is_some())
        .map(|e| e.name.as_str())
        .collect();
    let tracked: HashSet<String> = index
        .fp_variables()
        .filter(|v| {
            v.scope == scope
                && !v.is_dummy
                && !v.is_parameter
                && !initialized.contains(v.name.as_str())
        })
        .map(|v| v.name.clone())
        .collect();
    if tracked.is_empty() {
        return;
    }
    let mut defined: HashSet<String> = HashSet::new();
    let mut reported: HashSet<String> = HashSet::new();
    uninit_walk(
        unit,
        body,
        scope,
        index,
        &tracked,
        &mut defined,
        &mut reported,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn uninit_walk(
    unit: &str,
    body: &[Stmt],
    scope: ScopeId,
    index: &ProgramIndex,
    tracked: &HashSet<String>,
    defined: &mut HashSet<String>,
    reported: &mut HashSet<String>,
    out: &mut Vec<Lint>,
) {
    let use_of = |e: &Expr,
                  line: u32,
                  defined: &HashSet<String>,
                  reported: &mut HashSet<String>,
                  out: &mut Vec<Lint>| {
        e.walk(&mut |sub| {
            let name = match sub {
                Expr::Var(n) => n,
                Expr::NameRef { name, .. }
                    if matches!(
                        classify(index, scope, name),
                        NameClass::Scalar | NameClass::Array
                    ) =>
                {
                    name
                }
                _ => return,
            };
            if tracked.contains(name) && !defined.contains(name) && reported.insert(name.clone()) {
                out.push(Lint::new(
                    LintKind::UninitializedUse,
                    unit,
                    line,
                    Some(name.clone()),
                    format!("{name} is read before any definition reaches it"),
                ));
            }
        });
    };
    for s in body {
        let line = s.span().line;
        match s {
            Stmt::Assign { target, value, .. } => {
                if let LValue::Index { indices, .. } = target {
                    for ix in indices {
                        use_of(ix, line, defined, reported, out);
                    }
                }
                use_of(value, line, defined, reported, out);
                defined.insert(target.name().to_string());
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, b) in arms {
                    use_of(cond, line, defined, reported, out);
                    uninit_walk(unit, b, scope, index, tracked, defined, reported, out);
                }
                if let Some(b) = else_body {
                    uninit_walk(unit, b, scope, index, tracked, defined, reported, out);
                }
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body: b,
                ..
            } => {
                use_of(start, line, defined, reported, out);
                use_of(end, line, defined, reported, out);
                if let Some(st) = step {
                    use_of(st, line, defined, reported, out);
                }
                defined.insert(var.clone());
                uninit_walk(unit, b, scope, index, tracked, defined, reported, out);
            }
            Stmt::DoWhile { cond, body: b, .. } => {
                use_of(cond, line, defined, reported, out);
                uninit_walk(unit, b, scope, index, tracked, defined, reported, out);
            }
            Stmt::Call { name, args, .. } => match index.procedure(name) {
                Some(pinfo) => {
                    let pscope = pinfo.scope;
                    let params = pinfo.params.clone();
                    for (ai, a) in args.iter().enumerate() {
                        let intent = params
                            .get(ai)
                            .and_then(|p| index.lookup(pscope, p))
                            .and_then(|sym| sym.intent);
                        match a {
                            Expr::Var(n) => match intent {
                                Some(Intent::In) | Some(Intent::InOut) => {
                                    use_of(a, line, defined, reported, out);
                                    if intent == Some(Intent::InOut) {
                                        defined.insert(n.clone());
                                    }
                                }
                                // intent(out) and unannotated dummies may
                                // be pure outputs: optimistically a def.
                                _ => {
                                    defined.insert(n.clone());
                                }
                            },
                            _ => use_of(a, line, defined, reported, out),
                        }
                    }
                }
                None => {
                    for a in args {
                        use_of(a, line, defined, reported, out);
                    }
                }
            },
            _ => {
                s.for_each_expr(&mut |e| use_of(e, line, defined, reported, out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prose_fortran::{analyze, parse_program};

    fn lints_for(src: &str) -> Vec<Lint> {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        // Lower every non-main FP variable: the candidate map a whole-
        // procedure tuning run would probe first.
        let mut map = PrecisionMap::declared(&ix);
        for v in ix.fp_variables() {
            if !v.is_parameter && ix.scope_info(v.scope).kind != ScopeKind::Main {
                map.set(v.id, FpPrecision::Single);
            }
        }
        run_lints(&p, &ix, &map)
    }

    fn kinds_at<'a>(lints: &'a [Lint], site: &str) -> Vec<&'a LintKind> {
        lints
            .iter()
            .filter(|l| l.site == site)
            .map(|l| &l.kind)
            .collect()
    }

    #[test]
    fn float_equality_is_flagged_with_site() {
        let lints = lints_for(
            "module m\ncontains\n  subroutine f(a, b, ok)\n    real(kind=8) :: a, b\n    logical :: ok\n    ok = a == b\n  end subroutine f\nend module m\n",
        );
        let eq: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::FloatEquality)
            .collect();
        assert_eq!(eq.len(), 1);
        assert_eq!(eq[0].site, "f:6");
        assert_eq!(eq[0].variable.as_deref(), Some("a"));
    }

    #[test]
    fn integer_equality_is_not_flagged() {
        let lints = lints_for(
            "module m\ncontains\n  subroutine f(i, j, ok)\n    integer :: i, j\n    logical :: ok\n    ok = i == j\n  end subroutine f\nend module m\n",
        );
        assert!(lints.iter().all(|l| l.kind != LintKind::FloatEquality));
    }

    #[test]
    fn absorption_fires_on_big_trip_unknown_trip_and_big_seed() {
        let src = r#"
module m
contains
  subroutine f(n)
    integer :: n, i
    real(kind=8) :: a, b, c, d
    a = 0.0d0
    do i = 1, 20000000
      a = a + 1.0d0
    end do
    b = 0.0d0
    do i = 1, n
      b = b + 1.0d0
    end do
    c = 16777216.0d0
    do i = 1, 100
      c = c + 1.0d0
    end do
    d = 0.0d0
    do i = 1, 100
      d = d + 1.0d0
    end do
  end subroutine f
end module m
"#;
        let lints = lints_for(src);
        let absorb: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::AbsorptionRisk)
            .map(|l| l.variable.as_deref().unwrap())
            .collect();
        assert!(absorb.contains(&"a"), "2e7-trip accumulator: {lints:?}");
        assert!(absorb.contains(&"b"), "unknown-trip accumulator");
        assert!(absorb.contains(&"c"), "2^24-seeded accumulator");
        assert!(!absorb.contains(&"d"), "short benign accumulator");
    }

    #[test]
    fn absorption_is_silent_when_the_accumulator_stays_double() {
        let src = "module m\ncontains\n  subroutine f(n)\n    integer :: n, i\n    real(kind=8) :: a\n    a = 0.0d0\n    do i = 1, n\n      a = a + 1.0d0\n    end do\n  end subroutine f\nend module m\n";
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let map = PrecisionMap::declared(&ix);
        let lints = run_lints(&p, &ix, &map);
        assert!(lints.iter().all(|l| l.kind != LintKind::AbsorptionRisk));
    }

    #[test]
    fn narrowing_is_reported_at_assignments_and_call_boundaries() {
        let src = r#"
module m
contains
  subroutine leaf(v)
    real(kind=8) :: v
    v = v * 0.5d0
  end subroutine leaf
end module m
program main
  use m, only: leaf
  implicit none
  real(kind=8) :: big, small
  big = 1.0d0
  small = big
  call leaf(small)
end program main
"#;
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let mut map = PrecisionMap::declared(&ix);
        // Lower only main's `small`: big stays f64, so `small = big`
        // narrows, and so does passing small's f32 bits... no — passing
        // `small` (f32) to leaf's f64 dummy widens. Lower the dummy too
        // and keep `small` f64 to get the call-boundary direction.
        let main = (0..ix.scope_count())
            .map(ScopeId)
            .find(|s| ix.scope_info(*s).kind == ScopeKind::Main)
            .unwrap();
        let leaf = ix.scope_of_procedure("leaf").unwrap();
        map.set(ix.fp_var_id(main, "small").unwrap(), FpPrecision::Single);
        let lints = run_lints(&p, &ix, &map);
        let assign: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::ImplicitNarrowing)
            .collect();
        assert_eq!(assign.len(), 1, "{lints:?}");
        assert_eq!(assign[0].variable.as_deref(), Some("small"));
        assert_eq!(assign[0].site, "main:14");

        let mut map2 = PrecisionMap::declared(&ix);
        map2.set(ix.fp_var_id(leaf, "v").unwrap(), FpPrecision::Single);
        let lints2 = run_lints(&p, &ix, &map2);
        let boundary: Vec<_> = lints2
            .iter()
            .filter(|l| l.kind == LintKind::ImplicitNarrowing)
            .collect();
        assert_eq!(boundary.len(), 1, "{lints2:?}");
        assert_eq!(boundary[0].variable.as_deref(), Some("v"));
        assert_eq!(boundary[0].site, "main:15");
    }

    #[test]
    fn cancellation_candidate_matches_the_planted_trap_shape() {
        let src = r#"
module m
contains
  subroutine f(out)
    real(kind=8) :: out
    real(kind=8) :: eps, canc, q, t1, t2
    eps = 1.0d-8
    canc = (1.0d0 + eps) - 1.0d0
    q = 16777300.0d0
    out = (q - 16777216.0d0) * 1.0d-2
    t1 = 0.5d0
    t2 = 0.6d0
    out = out + (t2 - t1) * (t2 - t1) + canc
  end subroutine f
end module m
"#;
        let lints = lints_for(src);
        let canc: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::CancellationCandidate)
            .collect();
        assert_eq!(canc.len(), 1, "{canc:?}");
        assert_eq!(canc[0].site, "f:8", "only the shared-literal subtraction");
    }

    #[test]
    fn correlated_function_arguments_are_cancellation_candidates() {
        // sin(x) - x for small x: correlation flows through the argument.
        let lints = lints_for(
            "module m\ncontains\n  subroutine f(x, y)\n    real(kind=8) :: x, y\n    y = sin(x) - x\n  end subroutine f\nend module m\n",
        );
        assert_eq!(
            kinds_at(&lints, "f:5"),
            vec![&LintKind::CancellationCandidate]
        );
    }

    #[test]
    fn uninitialized_use_is_flagged_once_with_site() {
        let src = r#"
module m
contains
  subroutine f(out, n)
    real(kind=8) :: out
    integer :: n, i
    real(kind=8) :: s, t
    do i = 1, n
      s = s + 1.0d0
    end do
    t = 1.0d0
    out = s + t
  end subroutine f
end module m
"#;
        let lints = lints_for(src);
        let uninit: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::UninitializedUse)
            .collect();
        assert_eq!(uninit.len(), 1, "{lints:?}");
        assert_eq!(uninit[0].variable.as_deref(), Some("s"));
        assert_eq!(uninit[0].site, "f:9");
    }

    fn ranged_lints(src: &str, ranges: &RangeMap) -> Vec<Lint> {
        let p = parse_program(src).unwrap();
        let ix = analyze(&p).unwrap();
        let mut map = PrecisionMap::declared(&ix);
        for v in ix.fp_variables() {
            if !v.is_parameter && ix.scope_info(v.scope).kind != ScopeKind::Main {
                map.set(v.id, FpPrecision::Single);
            }
        }
        run_lints_with_ranges(&p, &ix, &map, ranges)
    }

    #[test]
    fn overflow_to_inf_fires_on_statically_certain_f32_overflow() {
        let src = r#"
module m
contains
  subroutine f(x, y, z)
    real(kind=8) :: x, y, z
    y = x * 4.0d0
    z = x * 1.0d-3
  end subroutine f
end module m
"#;
        use crate::absint::Interval;
        let mut ranges = RangeMap::default();
        ranges.insert("f", "x", Interval::new(1.0e38, 2.0e38));
        let lints = ranged_lints(src, &ranges);
        let over: Vec<_> = lints
            .iter()
            .filter(|l| l.kind == LintKind::OverflowToInf)
            .collect();
        assert_eq!(over.len(), 1, "{lints:?}");
        assert_eq!(over[0].site, "f:6");
        assert_eq!(over[0].variable.as_deref(), Some("y"));
        // Without ranges the lint cannot exist at all.
        assert!(ranged_lints(src, &RangeMap::default())
            .iter()
            .all(|l| l.kind != LintKind::OverflowToInf));
    }

    #[test]
    fn ranges_certify_and_refute_absorption_over_the_trip_heuristic() {
        // Small loop the trip/seed heuristics call benign, but the range
        // proves the accumulator lives at 2^25: certified hazard.
        let certify = r#"
module m
contains
  subroutine f(a)
    real(kind=8) :: a
    integer :: i
    do i = 1, 100
      a = a + 1.0d0
    end do
  end subroutine f
end module m
"#;
        // Huge trip count the heuristics flag, but the range proves the
        // accumulator never leaves [0, 100]: refuted.
        let refute = r#"
module m
contains
  subroutine f(a)
    real(kind=8) :: a
    integer :: i
    do i = 1, 20000000
      a = a + 1.0d0
    end do
  end subroutine f
end module m
"#;
        use crate::absint::Interval;
        let mut big = RangeMap::default();
        big.insert("f", "a", Interval::new(0.0, 33_554_432.0));
        let lints = ranged_lints(certify, &big);
        assert!(
            lints.iter().any(|l| l.kind == LintKind::AbsorptionRisk),
            "range-certified hazard missing: {lints:?}"
        );
        assert!(
            ranged_lints(certify, &RangeMap::default())
                .iter()
                .all(|l| l.kind != LintKind::AbsorptionRisk),
            "the 100-trip heuristic alone must stay silent"
        );
        let mut small = RangeMap::default();
        small.insert("f", "a", Interval::new(0.0, 100.0));
        assert!(
            ranged_lints(refute, &small)
                .iter()
                .all(|l| l.kind != LintKind::AbsorptionRisk),
            "range-refuted hazard must suppress the trip heuristic"
        );
        assert!(
            ranged_lints(refute, &RangeMap::default())
                .iter()
                .any(|l| l.kind == LintKind::AbsorptionRisk),
            "without ranges the 2e7-trip heuristic fires"
        );
    }

    #[test]
    fn ranges_certify_and_refute_cancellation_over_the_shape_heuristic() {
        // No shared source — the shape test is blind — but the ranges
        // overlap: the difference may vanish.
        let unshaped = r#"
module m
contains
  subroutine f(a, b, y)
    real(kind=8) :: a, b, y
    y = a - b
  end subroutine f
end module m
"#;
        // Shared source c — the shape test fires — but the ranges prove
        // the operands stay far apart: statically benign.
        let shaped = r#"
module m
contains
  subroutine f(a, b, c, y)
    real(kind=8) :: a, b, c, y
    y = a * c - b * c
  end subroutine f
end module m
"#;
        use crate::absint::Interval;
        let mut overlap = RangeMap::default();
        overlap.insert("f", "a", Interval::new(1.0, 2.0));
        overlap.insert("f", "b", Interval::new(1.0, 2.0));
        let lints = ranged_lints(unshaped, &overlap);
        assert!(
            lints
                .iter()
                .any(|l| l.kind == LintKind::CancellationCandidate),
            "overlapping ranges must certify: {lints:?}"
        );
        assert!(
            ranged_lints(unshaped, &RangeMap::default())
                .iter()
                .all(|l| l.kind != LintKind::CancellationCandidate),
            "no shared source, no ranges: silent"
        );
        let mut apart = RangeMap::default();
        apart.insert("f", "a", Interval::new(10.0, 11.0));
        apart.insert("f", "b", Interval::new(1.0, 2.0));
        apart.insert("f", "c", Interval::new(1.0, 1.0));
        assert!(
            ranged_lints(shaped, &apart)
                .iter()
                .all(|l| l.kind != LintKind::CancellationCandidate),
            "disjoint ranges must refute the shared-source shape"
        );
        assert!(
            ranged_lints(shaped, &RangeMap::default())
                .iter()
                .any(|l| l.kind == LintKind::CancellationCandidate),
            "without ranges the shared-source shape fires"
        );
    }

    #[test]
    fn branch_initialisation_and_call_outputs_count_as_definitions() {
        let src = r#"
module m
contains
  subroutine fill(v)
    real(kind=8) :: v
    v = 2.0d0
  end subroutine fill
  subroutine f(out, gate)
    real(kind=8) :: out, gate
    real(kind=8) :: a, b
    if (gate > 0.0d0) then
      a = 1.0d0
    end if
    call fill(b)
    out = a + b
  end subroutine f
end module m
"#;
        let lints = lints_for(src);
        assert!(
            lints.iter().all(|l| l.kind != LintKind::UninitializedUse),
            "{lints:?}"
        );
    }
}
