//! Criterion micro-benchmarks for the pipeline's components: front end,
//! analyses, transformation, interpretation, and search. These track the
//! tool's own performance (the paper's scalability concerns live or die on
//! the cost of one variant evaluation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prose_fortran::{analyze, parse_program, unparse, PrecisionMap};
use prose_models::{ModelSize, ModelSize::Small};
use prose_search::dd::{DdParams, DeltaDebug};
use prose_search::{Config, Evaluator, Outcome, Status};
use std::hint::black_box;

fn model_source(_: ModelSize) -> String {
    prose_models::mpas::mpas_a(Small).source
}

fn bench_frontend(c: &mut Criterion) {
    let src = model_source(Small);
    c.bench_function("parse mini-MPAS source", |b| {
        b.iter(|| parse_program(black_box(&src)).unwrap())
    });
    let program = parse_program(&src).unwrap();
    c.bench_function("analyze mini-MPAS AST", |b| {
        b.iter(|| analyze(black_box(&program)).unwrap())
    });
    c.bench_function("unparse + reparse round trip", |b| {
        b.iter(|| {
            let text = unparse(black_box(&program));
            parse_program(&text).unwrap()
        })
    });
}

fn bench_analyses(c: &mut Criterion) {
    let src = model_source(Small);
    let program = parse_program(&src).unwrap();
    let index = analyze(&program).unwrap();
    c.bench_function("FP flow graph build", |b| {
        b.iter(|| prose_analysis::flow::FpFlowGraph::build(black_box(&program), &index))
    });
    let graph = prose_analysis::flow::FpFlowGraph::build(&program, &index);
    let atoms = index.atoms();
    let map = PrecisionMap::uniform(
        &index,
        &atoms[..atoms.len() / 2],
        prose_fortran::ast::FpPrecision::Single,
    );
    c.bench_function("flow mismatches under a map", |b| {
        b.iter(|| graph.mismatches(black_box(&index), &map))
    });
    c.bench_function("static casting penalty", |b| {
        b.iter(|| prose_analysis::static_cost::static_penalty(black_box(&graph), &index, &map))
    });
    c.bench_function("taint-based program reduction", |b| {
        b.iter(|| prose_analysis::taint::reduce_program(black_box(&program), &index, &atoms[..4]))
    });
}

fn bench_transform(c: &mut Criterion) {
    let src = model_source(Small);
    let program = parse_program(&src).unwrap();
    let index = analyze(&program).unwrap();
    let atoms = index.atoms();
    let map = PrecisionMap::uniform(&index, &atoms, prose_fortran::ast::FpPrecision::Single);
    c.bench_function("make_variant (uniform-32 mini-MPAS)", |b| {
        b.iter(|| prose_transform::make_variant(black_box(&program), &index, &map).unwrap())
    });
}

/// The tentpole comparison: per-variant cost of the faithful pipeline
/// (clone + rewrite + unparse + reparse + reanalyze + full lower) vs. the
/// template fast path (plan replay + IR specialization), on the same
/// uniform-32 mini-MPAS variant. Execution is excluded from both sides —
/// it is identical by construction (see the `variant_path_diff` test).
fn bench_variant_path(c: &mut Criterion) {
    let src = model_source(Small);
    let program = parse_program(&src).unwrap();
    let index = analyze(&program).unwrap();
    let atoms = index.atoms();
    let map = PrecisionMap::uniform(&index, &atoms, prose_fortran::ast::FpPrecision::Single);
    let inline = prose_interp::CostParams::default().inline_max_stmts;

    let mut g = c.benchmark_group("variant_path");
    g.bench_function("faithful transform+lower (uniform-32 mini-MPAS)", |b| {
        b.iter(|| {
            let v = prose_transform::make_variant(black_box(&program), &index, &map).unwrap();
            let wrappers: std::collections::HashSet<String> = v.wrappers.iter().cloned().collect();
            prose_interp::lower::lower_program(&v.program, &v.index, &wrappers, inline).unwrap()
        })
    });

    let vt = prose_transform::VariantTemplate::new(&program, &index);
    let it = prose_interp::IrTemplate::new(&program, &index, inline).unwrap();
    g.bench_function("fast instantiate+lower (uniform-32 mini-MPAS)", |b| {
        b.iter(|| {
            let plan = vt.instantiate(black_box(&map));
            let prose_transform::VariantPlan {
                wrappers,
                decisions,
            } = plan;
            let pairs: Vec<_> = wrappers.into_iter().map(|w| (w.callee, w.ast)).collect();
            it.instantiate(&map, &pairs, &decisions).unwrap()
        })
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let spec = prose_models::funarc::funarc(Small);
    let m = spec.load().unwrap();
    c.bench_function("interpret funarc (300 intervals)", |b| {
        b.iter(|| {
            prose_interp::run_program(
                black_box(&m.program),
                &m.index,
                &prose_interp::RunConfig::default(),
            )
            .unwrap()
        })
    });
}

/// A cheap synthetic evaluator so the search's own overhead is measurable.
struct Synth {
    n: usize,
}

impl Evaluator for Synth {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        let k = lowered.iter().filter(|b| **b).count();
        let bad = lowered.get(self.n / 3).copied().unwrap_or(false);
        Outcome {
            status: if bad {
                Status::FailAccuracy
            } else {
                Status::Pass
            },
            speedup: 1.0 + k as f64 / self.n as f64,
            error: if bad { 1.0 } else { 1e-9 },
        }
    }

    fn atom_count(&self) -> usize {
        self.n
    }
}

fn bench_search(c: &mut Criterion) {
    c.bench_function("delta-debug search (128 synthetic atoms)", |b| {
        b.iter_batched(
            || Synth { n: 128 },
            |mut ev| DeltaDebug::new(DdParams::default()).run(&mut ev),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_analyses,
    bench_transform,
    bench_variant_path,
    bench_interp,
    bench_search
);
criterion_main!(benches);
