//! # prose-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I — hotspot summary (module, % CPU time, # FP vars) |
//! | `table2` | Table II — variants explored per model, outcome percentages, best speedup |
//! | `fig2_funarc` | Figure 2 — funarc brute-force speedup/error scatter (+ the Figure 3 diff) |
//! | `fig5_hotspots` | Figure 5 — per-model scatter of DD-explored variants |
//! | `fig6_procedures` | Figure 6 — per-procedure per-call speedups of unique procedure variants |
//! | `fig7_whole_model` | Figure 7 — the whole-model-guided MPAS-A search |
//! | `ablation_static_filter` | Lessons-learned ablation: static cost model as a variant pre-filter |
//!
//! The three delta-debugging searches feeding Table II and Figures 5/6 are
//! expensive, so they run once and are cached as JSON under `results/`
//! (`searches.json`); every binary reuses the cache when present. Each
//! binary also emits CSV series next to its ASCII output and finishes with
//! the artifact-appendix validation checklist for its experiment.
//!
//! Run with `--release`; debug builds are an order of magnitude slower.

pub mod cache;
pub mod report;
pub mod validate;

use prose_core::tuner::{ModelSpec, PerfScope, VariantPath};
use prose_models::ModelSize;

/// Directory where all regenerated artifacts land.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::env::var("PROSE_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let p = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Workload scale for the harness: `PROSE_SIZE=small` flips everything to
/// the fast configuration (useful for smoke-testing the harness itself).
pub fn bench_size() -> ModelSize {
    match std::env::var("PROSE_SIZE").as_deref() {
        Ok("small") => ModelSize::Small,
        _ => ModelSize::Paper,
    }
}

/// The three weather/climate models of the case study (Table I/II order).
pub fn case_study_models(size: ModelSize) -> Vec<ModelSpec> {
    vec![
        prose_models::mpas::mpas_a(size),
        prose_models::adcirc::adcirc(size),
        prose_models::mom6::mom6(size),
    ]
}

/// Variant budget per model: MOM6 did not finish within the paper's
/// 12-hour wall; the budget is our analog of that cutoff.
pub fn variant_budget(model: &str) -> Option<usize> {
    match model {
        "mom6" => Some(300),
        _ => None,
    }
}

/// The performance scope each search uses (Section IV-B hotspot searches;
/// Section IV-C whole-model).
pub fn search_scope() -> PerfScope {
    PerfScope::Hotspot
}

/// Variant-generation path for every harness search: `--variant-path
/// fast|faithful` on any binary's command line (default fast), or the
/// `PROSE_VARIANT_PATH` environment variable.
pub fn variant_path() -> VariantPath {
    cli_or_env("--variant-path", "PROSE_VARIANT_PATH")
        .and_then(|s| s.parse().ok())
        .unwrap_or_default()
}

/// Fast-path cross-check budget: the first K uncached evaluations per
/// search are re-run through the faithful pipeline and asserted
/// bit-identical (`--crosscheck K` / `PROSE_CROSSCHECK`, default 1).
pub fn crosscheck() -> usize {
    cli_or_env("--crosscheck", "PROSE_CROSSCHECK")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Worker-pool width for every harness search: `--workers N` on any
/// binary's command line, or the `PROSE_WORKERS` environment variable
/// (default 1 = serial). Results are identical at any width; only wall
/// clock changes.
pub fn workers() -> usize {
    cli_or_env("--workers", "PROSE_WORKERS")
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Per-variant wall-clock deadline for every harness search:
/// `--deadline-ms MS` on any binary's command line, or the
/// `PROSE_DEADLINE_MS` environment variable (default: disabled). Results
/// are identical whenever the deadline never fires.
pub fn deadline_ms() -> Option<u64> {
    cli_or_env("--deadline-ms", "PROSE_DEADLINE_MS")
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
}

/// Transient-failure retry budget for every harness search:
/// `--retry-attempts K` / `PROSE_RETRY_ATTEMPTS` (default 0 = disabled).
pub fn retry_attempts() -> u32 {
    cli_or_env("--retry-attempts", "PROSE_RETRY_ATTEMPTS")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn cli_or_env(flag: &str, var: &str) -> Option<String> {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
        .or_else(|| std::env::var(var).ok())
}
