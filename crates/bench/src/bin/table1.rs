//! Table I — summary statistics for targeted hotspots: module, % CPU time,
//! and FP-variable counts, from a profiled baseline run of each model.

use prose_bench::report::{ascii_table, f, write_csv};
use prose_bench::{bench_size, case_study_models, results_dir};
use prose_core::profile::{profile, select_hotspot};
use prose_interp::RunConfig;

fn main() {
    let size = bench_size();
    let mut rows = Vec::new();
    for spec in case_study_models(size) {
        let m = spec.load().expect("model loads");
        let profs = profile(&m.program, &m.index, &RunConfig::default()).expect("baseline runs");
        let hs = select_hotspot(&profs).expect("has a hotspot module");
        assert_eq!(
            hs.module, spec.hotspot_module,
            "CPU-time hotspot selection should pick the paper's module"
        );
        rows.push(vec![
            spec.name.clone(),
            hs.module.clone(),
            format!("{:.0}%", 100.0 * hs.cpu_share),
            hs.fp_vars.to_string(),
            m.atoms.len().to_string(),
        ]);
    }
    println!("Table I: Summary statistics for targeted hotspots.");
    println!(
        "{}",
        ascii_table(
            &[
                "Model",
                "Targeted Module",
                "% CPU Time",
                "# FP Vars (module)",
                "# atoms (work routines)"
            ],
            &rows
        )
    );
    println!("Paper reference: MPAS-A atm_time_integration 15% 445 | ADCIRC itpackv 12% 468 | MOM6 MOM_continuity_PPM 9% 351");
    println!("(Miniature models have proportionally smaller variable counts; shares should be minority-scale like the paper's.)");
    write_csv(
        &results_dir().join("table1.csv"),
        &["model", "module", "cpu_share", "fp_vars", "atoms"],
        &rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r[2] = f(r[2].trim_end_matches('%').parse::<f64>().unwrap_or(0.0) / 100.0);
                r
            })
            .collect::<Vec<_>>(),
    );
}
