//! Figure 7 — the MPAS-A search guided by whole-model wall time instead of
//! hotspot CPU time: boundary casting buries the hotspot gains.

use prose_bench::cache::whole_model_search;
use prose_bench::report::write_csv;
use prose_bench::validate;
use prose_bench::{bench_size, results_dir};

fn main() {
    let ms = whole_model_search(bench_size());
    let rows: Vec<Vec<String>> = ms
        .variants
        .iter()
        .map(|v| {
            vec![
                format!("{:?}", v.outcome.status),
                format!("{:.6}", v.outcome.speedup),
                format!("{:.6e}", v.outcome.error),
                format!("{:.4}", v.fraction_single),
            ]
        })
        .collect();
    write_csv(
        &results_dir().join("fig7_whole_model.csv"),
        &["status", "speedup", "rel_error", "frac_32bit"],
        &rows,
    );
    let s = ms.summary();
    println!(
        "Figure 7 — MPAS-A whole-model-guided search: {} variants, best speedup {:.2}x",
        s.total, s.best_speedup
    );
    println!(
        "(hotspot-guided search on the same model reaches ~2x; the whole-model metric\n exposes the casting at the hotspot boundary — the paper's accelerator-offload analogy)"
    );
    let checks = validate::mpas_whole_model(&ms);
    let ok = validate::report("mpas_a whole-model", &checks);
    println!(
        "\noverall: {}",
        if ok {
            "all checks PASS"
        } else {
            "some checks MISS"
        }
    );
}
