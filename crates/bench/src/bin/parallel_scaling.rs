//! Parallel-evaluation scaling curve: the mpas_a hotspot search end to
//! end at worker-pool widths 1/2/4/8, written to
//! `results/BENCH_parallel_scaling.json`.
//!
//! Each width runs the *same* deterministic search from a cold start (no
//! journal, no shared cache), so wall-clock differences are purely the
//! worker pool's doing. The run asserts the parallel invariant along the
//! way: every width must produce the identical final configuration and
//! trial count. Speedups are measured against the 1-worker run on this
//! host; `host_cpus` is recorded so a single-core container's flat curve
//! is legible as such rather than as a regression.
//!
//! ```text
//! parallel-scaling [--workers-list 1,2,4,8] [--out results/BENCH_parallel_scaling.json]
//! ```

use prose_bench::{bench_size, results_dir, search_scope};
use prose_core::tuner::{tune, TuningTask};
use serde::Serialize;

#[derive(Serialize)]
struct WidthSample {
    workers: usize,
    wall_seconds: f64,
    /// Wall-clock speedup vs the 1-worker run of this invocation.
    speedup_vs_serial: f64,
    trials: usize,
    final_config: Vec<bool>,
}

#[derive(Serialize)]
struct ScalingDoc {
    bench: &'static str,
    description: &'static str,
    model: &'static str,
    /// Logical CPUs visible to this process — scaling beyond this count
    /// cannot appear in wall clock no matter how wide the pool is.
    host_cpus: usize,
    samples: Vec<WidthSample>,
    /// Highest wall-clock speedup across the sampled widths.
    best_speedup: f64,
    /// All widths produced byte-identical final configurations.
    deterministic: bool,
}

fn run_width(workers: usize) -> (f64, prose_core::tuner::TuningOutcome) {
    let spec = prose_models::mpas::mpas_a(bench_size());
    let model = spec.load().expect("model loads");
    let mut task: TuningTask = model.task(search_scope(), 20_240_417).expect("task builds");
    // Cold start: no journal — each width pays the full evaluation cost.
    task.journal = None;
    task.workers = workers;
    task.deadline_ms = prose_bench::deadline_ms();
    task.retry_attempts = prose_bench::retry_attempts();
    let t0 = std::time::Instant::now();
    let outcome = tune(&task).expect("baseline runs");
    (t0.elapsed().as_secs_f64(), outcome)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let arg = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let widths: Vec<usize> = arg("--workers-list")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|w| w.trim().parse().expect("--workers-list takes integers"))
        .collect();
    let out = arg("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BENCH_parallel_scaling.json"));

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("[prose-bench] parallel scaling on {host_cpus} host cpu(s), widths {widths:?}");

    let mut samples: Vec<WidthSample> = Vec::new();
    let mut serial_wall = None;
    let mut reference_config: Option<Vec<bool>> = None;
    let mut deterministic = true;
    for &w in &widths {
        eprintln!("[prose-bench]   mpas_a hotspot search, {w} worker(s)...");
        let (wall, outcome) = run_width(w);
        let serial = *serial_wall.get_or_insert(wall);
        match &reference_config {
            None => reference_config = Some(outcome.search.final_config.clone()),
            Some(r) if *r != outcome.search.final_config => {
                deterministic = false;
                eprintln!(
                    "[prose-bench]   DETERMINISM VIOLATION: {w}-worker final config diverges"
                );
            }
            Some(_) => {}
        }
        eprintln!(
            "[prose-bench]   {w} worker(s): {wall:.2}s wall, {} trials, {:.2}x vs serial",
            outcome.search.trace.len(),
            serial / wall
        );
        samples.push(WidthSample {
            workers: w,
            wall_seconds: wall,
            speedup_vs_serial: serial / wall,
            trials: outcome.search.trace.len(),
            final_config: outcome.search.final_config,
        });
    }

    let best_speedup = samples
        .iter()
        .map(|s| s.speedup_vs_serial)
        .fold(0.0, f64::max);
    let doc = ScalingDoc {
        bench: "parallel_scaling",
        description: "End-to-end mpas_a hotspot delta-debugging search at increasing \
                      worker-pool widths, cold start per width. Speedups are wall-clock \
                      vs the 1-worker run on this host; widths beyond host_cpus cannot \
                      improve wall clock.",
        model: "mpas_a",
        host_cpus,
        samples,
        best_speedup,
        deterministic,
    };
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&out, text + "\n").expect("write scaling doc");
    println!(
        "wrote {}: best {best_speedup:.2}x across widths {widths:?} on {host_cpus} cpu(s){}",
        out.display(),
        if deterministic {
            ""
        } else {
            " [DETERMINISM VIOLATION]"
        }
    );
    assert!(deterministic, "worker count changed the search result");
}
