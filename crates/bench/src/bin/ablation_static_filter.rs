//! Lessons-learned ablation (Section V): use the static mixed-precision
//! cost model (penalty ∝ calls × array elements for mismatched
//! interprocedural flow) as a *pre-filter* on delta-debugging candidates,
//! and compare dynamic-evaluation cost and search quality against the
//! unfiltered search.
//!
//! Also runs the random-search baseline at the same variant budget, to show
//! the delta-debugging strategy earns its keep.

use prose_analysis::flow::FpFlowGraph;
use prose_analysis::static_cost::static_penalty_scoped;
use prose_analysis::vect_report::vect_report_scoped;
use prose_bench::report::ascii_table;
use prose_bench::{bench_size, results_dir};
use prose_core::tuner::{config_to_map, PerfScope};
use prose_core::DynamicEvaluator;
use prose_fortran::sema::ScopeId;
use prose_search::dd::{DdParams, DeltaDebug};
use prose_search::random::RandomSearch;
use prose_search::{Config, Evaluator, Outcome, Status};

/// Which static pre-filter to apply. Both are scoped to the hotspot
/// procedures: boundary casting is invisible to hotspot timers, so pricing
/// it would veto the variants the search is after.
enum Filter {
    /// Penalty ∝ calls × elements on mismatched flow edges (§V cost model).
    CastPenalty {
        graph: FpFlowGraph,
        threshold: f64,
        scopes: Vec<ScopeId>,
    },
    /// Predicted loss of loop vectorization vs. baseline (§V compiler-
    /// feedback filter).
    VectLoss { scopes: Vec<ScopeId> },
}

/// Evaluator wrapper that statically rejects variants — without running
/// them.
struct Filtered<'a, 'b> {
    inner: &'b mut DynamicEvaluator<'a>,
    filter: Filter,
    skipped: usize,
    evaluated: usize,
}

impl<'a, 'b> Evaluator for Filtered<'a, 'b> {
    fn evaluate(&mut self, lowered: &Config) -> Outcome {
        let task = self.inner.task;
        let map = config_to_map(&task.index, &task.atoms, lowered);
        let reject = match &self.filter {
            Filter::CastPenalty {
                graph,
                threshold,
                scopes,
            } => static_penalty_scoped(graph, &task.index, &map, Some(scopes)) > *threshold,
            Filter::VectLoss { scopes } => {
                vect_report_scoped(&task.program, &task.index, &map, Some(scopes)).lost > 0
            }
        };
        if reject {
            self.skipped += 1;
            // Reported as a (free) static-stage rejection.
            return Outcome {
                status: Status::TransformError,
                speedup: 0.0,
                error: f64::INFINITY,
            };
        }
        self.evaluated += 1;
        self.inner.evaluate(lowered)
    }

    fn atom_count(&self) -> usize {
        self.inner.atom_count()
    }
}

fn main() {
    let spec = prose_models::mpas::mpas_a(bench_size());
    let model = spec.load().expect("model loads");
    let task = model.task(PerfScope::Hotspot, 99).unwrap();

    // Unfiltered delta debugging.
    let mut eval = DynamicEvaluator::new(&task).expect("baseline");
    let r_plain = DeltaDebug::new(DdParams::default()).run(&mut eval);
    let s_plain = r_plain.status_summary();

    // Statically filtered delta debugging. The estimator prices casting in
    // its own units (DEFAULT_TRIP-based call estimates); the budget below
    // rejects anything in the loop-volume regime while letting one-off
    // scalar mismatches through.
    let mut eval2 = DynamicEvaluator::new(&task).expect("baseline");
    let threshold = 500.0;
    let graph = FpFlowGraph::build(&task.program, &task.index);
    let hotspot_scopes: Vec<ScopeId> = task
        .hotspot_procs
        .iter()
        .filter_map(|p| task.index.scope_of_procedure(p))
        .collect();
    let mut filtered = Filtered {
        inner: &mut eval2,
        filter: Filter::CastPenalty {
            graph,
            threshold,
            scopes: hotspot_scopes.clone(),
        },
        skipped: 0,
        evaluated: 0,
    };
    let r_filt = DeltaDebug::new(DdParams::default()).run(&mut filtered);
    let (skipped, evaluated) = (filtered.skipped, filtered.evaluated);
    let s_filt = r_filt.status_summary();

    // Vectorization-report filter (the compiler-feedback variant).
    let mut eval4 = DynamicEvaluator::new(&task).expect("baseline");
    let mut filtered_v = Filtered {
        inner: &mut eval4,
        filter: Filter::VectLoss {
            scopes: hotspot_scopes,
        },
        skipped: 0,
        evaluated: 0,
    };
    let r_vect = DeltaDebug::new(DdParams::default()).run(&mut filtered_v);
    let (v_skipped, v_evaluated) = (filtered_v.skipped, filtered_v.evaluated);
    let s_vect = r_vect.status_summary();

    // Random baseline at the same dynamic-evaluation budget.
    let mut eval3 = DynamicEvaluator::new(&task).expect("baseline");
    let r_rand = RandomSearch::new(s_plain.total, 31).run(&mut eval3);
    let s_rand = r_rand.status_summary();

    let rows = vec![
        vec![
            "delta-debug (paper)".into(),
            s_plain.total.to_string(),
            "0".into(),
            format!("{:.2}x", s_plain.best_speedup),
            r_plain.one_minimal.to_string(),
        ],
        vec![
            "delta-debug + static filter".into(),
            evaluated.to_string(),
            skipped.to_string(),
            format!("{:.2}x", s_filt.best_speedup),
            r_filt.one_minimal.to_string(),
        ],
        vec![
            "delta-debug + vect-report filter".into(),
            v_evaluated.to_string(),
            v_skipped.to_string(),
            format!("{:.2}x", s_vect.best_speedup),
            r_vect.one_minimal.to_string(),
        ],
        vec![
            "random (same budget)".into(),
            s_rand.total.to_string(),
            "0".into(),
            format!("{:.2}x", s_rand.best_speedup),
            "false".into(),
        ],
    ];
    println!("Ablation — static casting-penalty pre-filter (MPAS-A hotspot search)");
    println!(
        "{}",
        ascii_table(
            &[
                "Strategy",
                "dynamic evals",
                "statically skipped",
                "best speedup",
                "1-minimal"
            ],
            &rows
        )
    );
    println!(
        "Both filters run before any compile/run, on the paper's Section-V\n\
         recommendations: the cast filter prices mismatched interprocedural flow\n\
         (calls x elements) inside the hotspot; the vect-report filter rejects\n\
         variants predicted to lose loop vectorization vs. the baseline."
    );
    std::fs::write(
        results_dir().join("ablation_static_filter.txt"),
        format!("{rows:?}"),
    )
    .expect("write");
}
