//! Figure 5 — per-model scatter of every DD-explored hotspot variant on
//! speedup-error axes (plus the threshold lines the search used).

use prose_bench::cache::hotspot_searches;
use prose_bench::report::write_csv;
use prose_bench::validate;
use prose_bench::{bench_size, results_dir};
use prose_search::Status;

fn main() {
    let searches = hotspot_searches(bench_size());
    for ms in &searches {
        let rows: Vec<Vec<String>> = ms
            .variants
            .iter()
            .map(|v| {
                vec![
                    format!("{:?}", v.outcome.status),
                    format!("{:.6}", v.outcome.speedup),
                    format!("{:.6e}", v.outcome.error),
                    format!("{:.4}", v.fraction_single),
                ]
            })
            .collect();
        write_csv(
            &results_dir().join(format!("fig5_{}.csv", ms.model)),
            &["status", "speedup", "rel_error", "frac_32bit"],
            &rows,
        );
        let done = ms
            .variants
            .iter()
            .filter(|v| matches!(v.outcome.status, Status::Pass | Status::FailAccuracy))
            .count();
        println!(
            "{}: {} variants ({} plottable), error threshold {:.3e}, speedup threshold 1.0",
            ms.model,
            ms.variants.len(),
            done,
            ms.error_threshold
        );
        // A terminal mini-scatter: speedup buckets vs fraction lowered.
        for v in ms.variants.iter().take(0) {
            let _ = v;
        }
    }
    let mut ok = true;
    for ms in &searches {
        let checks = match ms.model.as_str() {
            "mpas_a" => validate::mpas_hotspot(ms),
            "adcirc" => validate::adcirc_hotspot(ms),
            "mom6" => validate::mom6_hotspot(ms),
            _ => vec![],
        };
        ok &= validate::report(&ms.model, &checks);
    }
    println!(
        "\noverall: {}",
        if ok {
            "all checks PASS"
        } else {
            "some checks MISS"
        }
    );
}
