//! Table II — summary metrics for the variants explored by each model's
//! delta-debugging search: counts, outcome percentages, best speedup.

use prose_bench::cache::hotspot_searches;
use prose_bench::report::{ascii_table, write_csv};
use prose_bench::validate;
use prose_bench::{bench_size, results_dir};

fn main() {
    let searches = hotspot_searches(bench_size());
    let mut rows = Vec::new();
    for ms in &searches {
        let s = ms.summary();
        rows.push(vec![
            ms.model.clone(),
            s.total.to_string(),
            format!("{:.1}%", s.pct(s.pass)),
            format!("{:.1}%", s.pct(s.fail)),
            format!("{:.1}%", s.pct(s.timeout)),
            format!("{:.1}%", s.pct(s.error)),
            format!("{:.2}x", s.best_speedup),
            if ms.search.budget_exhausted {
                "budget-cut".into()
            } else {
                "1-minimal".into()
            },
        ]);
    }
    println!("Table II: Summary metrics for variants explored.");
    println!(
        "{}",
        ascii_table(
            &[
                "Model",
                "Total",
                "Pass",
                "Fail",
                "Timeout",
                "Error",
                "Speedup",
                "Termination"
            ],
            &rows
        )
    );
    println!("Paper reference:");
    println!("  MPAS-A  48  37.5% 56.2%  6.3%  0.0%  1.95x");
    println!("  ADCIRC  74  36.4% 33.8%  0.0% 29.7%  1.12x");
    println!("  MOM6   858  17.2% 31.0%  0.0% 51.7%  1.04x (12-hour cutoff)");
    write_csv(
        &results_dir().join("table2.csv"),
        &[
            "model",
            "total",
            "pass_pct",
            "fail_pct",
            "timeout_pct",
            "error_pct",
            "best_speedup",
        ],
        &searches
            .iter()
            .map(|ms| {
                let s = ms.summary();
                vec![
                    ms.model.clone(),
                    s.total.to_string(),
                    format!("{:.3}", s.pct(s.pass)),
                    format!("{:.3}", s.pct(s.fail)),
                    format!("{:.3}", s.pct(s.timeout)),
                    format!("{:.3}", s.pct(s.error)),
                    format!("{:.4}", s.best_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mut ok = true;
    for ms in &searches {
        let checks = match ms.model.as_str() {
            "mpas_a" => validate::mpas_hotspot(ms),
            "adcirc" => validate::adcirc_hotspot(ms),
            "mom6" => validate::mom6_hotspot(ms),
            _ => vec![],
        };
        ok &= validate::report(&ms.model, &checks);
    }
    println!(
        "\noverall: {}",
        if ok {
            "all checks PASS"
        } else {
            "some checks MISS (see above)"
        }
    );
}
