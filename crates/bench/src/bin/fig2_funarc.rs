//! Figure 2 — the funarc motivating example: brute-force enumeration of all
//! 2^8 = 256 mixed-precision variants on speedup-error axes, the optimal
//! frontier, and (Figure 3) the diff of the frontier variant at the 4e-4
//! error threshold.

use prose_bench::report::{f, write_csv};
use prose_bench::{bench_size, results_dir};
use prose_core::tuner::{config_to_map, tune_brute_force, PerfScope};
use prose_search::Status;

fn main() {
    let spec = prose_models::funarc::funarc(bench_size());
    let model = spec.load().expect("funarc loads");
    let task = model.task(PerfScope::WholeModel, 7).unwrap();
    let outcome = tune_brute_force(&task).expect("baseline runs");
    assert_eq!(outcome.variants.len(), 256, "2^8 variants");

    // CSV: one row per variant.
    let rows: Vec<Vec<String>> = outcome
        .variants
        .iter()
        .map(|v| {
            vec![
                v.config
                    .iter()
                    .map(|b| if *b { '1' } else { '0' })
                    .collect(),
                format!("{:.6}", v.outcome.speedup),
                format!("{:.6e}", v.outcome.error),
                format!("{:.4}", v.fraction_single),
            ]
        })
        .collect();
    write_csv(
        &results_dir().join("fig2_funarc.csv"),
        &["config_bits", "speedup", "rel_error", "frac_32bit"],
        &rows,
    );

    // The optimal frontier: variants not dominated in (speedup up, error down).
    let mut done: Vec<_> = outcome
        .variants
        .iter()
        .filter(|v| matches!(v.outcome.status, Status::Pass | Status::FailAccuracy))
        .collect();
    done.sort_by(|a, b| b.outcome.speedup.total_cmp(&a.outcome.speedup));
    let mut frontier = Vec::new();
    let mut best_err = f64::INFINITY;
    for v in &done {
        if v.outcome.error < best_err {
            best_err = v.outcome.error;
            frontier.push(*v);
        }
    }
    println!(
        "Figure 2: funarc — {} variants, {} on the optimal frontier",
        done.len(),
        frontier.len()
    );
    for v in &frontier {
        println!(
            "  frontier: speedup {:>6} error {:>10} ({}% 32-bit)",
            f(v.outcome.speedup),
            f(v.outcome.error),
            (v.fraction_single * 100.0) as u32
        );
    }
    // Paper: ~67% of variants are worse than the original on both axes
    // (speedup < 1 AND error > 0) — casting overhead.
    let both_worse = done
        .iter()
        .filter(|v| v.outcome.speedup < 1.0 && v.outcome.error > 0.0)
        .count();
    println!(
        "\n{:.0}% of variants are worse than the original on BOTH axes (paper: ~67%)",
        100.0 * both_worse as f64 / done.len() as f64
    );

    // Figure 3: the diff of the best variant within the 4e-4 error budget.
    let pick = done
        .iter()
        .filter(|v| v.outcome.error <= 4.0e-4)
        .max_by(|a, b| a.outcome.speedup.total_cmp(&b.outcome.speedup))
        .expect("a variant within the 4e-4 budget exists");
    println!(
        "\nFigure 3: frontier variant at error<=4e-4: speedup {:.3}, error {:.2e}",
        pick.outcome.speedup, pick.outcome.error
    );
    let map = config_to_map(&model.index, &model.atoms, &pick.config);
    let variant = prose_transform::make_variant(&model.program, &model.index, &map)
        .expect("variant transforms");
    let original = prose_fortran::unparse(&model.program);
    let diff = prose_transform::diff::changed_hunks(&original, &variant.text, 1);
    println!("{diff}");
    std::fs::write(results_dir().join("fig3_diff.txt"), &diff).expect("write diff");
    let uniform32 = done
        .iter()
        .find(|v| v.config.iter().all(|b| *b))
        .expect("uniform-32 variant evaluated");
    println!(
        "uniform 32-bit: speedup {:.3}, error {:.2e}  -> frontier variant has {:.1}x less error",
        uniform32.outcome.speedup,
        uniform32.outcome.error,
        uniform32.outcome.error / pick.outcome.error
    );
}
