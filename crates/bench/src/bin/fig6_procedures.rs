//! Figure 6 — per-procedure performance: for each hotspot procedure, the
//! speedup (baseline avg cycles/call over variant avg cycles/call) of every
//! *unique procedure variant* explored by the search.

use prose_bench::cache::hotspot_searches;
use prose_bench::report::{ascii_table, write_csv};
use prose_bench::{bench_size, results_dir};
use std::collections::HashMap;

fn main() {
    let searches = hotspot_searches(bench_size());
    for ms in &searches {
        let baseline: HashMap<&str, (f64, u64)> = ms
            .baseline_procs
            .iter()
            .map(|(p, c, n)| (p.as_str(), (*c, *n)))
            .collect();
        // Every per-variant sample, tagged with the procedure-restricted
        // fingerprint (the paper's "unique procedure variants"). Samples
        // with the same fingerprint can still differ — a wrapper on the
        // caller side changes this procedure's per-call time without
        // touching its own variables (the flux collapse) — so the range is
        // reported per sample, not per fingerprint average.
        let mut csv = Vec::new();
        let mut fingerprints: HashMap<String, std::collections::HashSet<u64>> = HashMap::new();
        let mut per_proc_range: HashMap<String, (f64, f64)> = HashMap::new();
        for v in &ms.variants {
            for ps in &v.per_proc {
                if ps.calls == 0 {
                    continue;
                }
                let Some((bc, bn)) = baseline.get(ps.proc.as_str()) else {
                    continue;
                };
                if *bn == 0 {
                    continue;
                }
                let base_per_call = bc / *bn as f64;
                let var_per_call = ps.per_call();
                if var_per_call <= 0.0 {
                    continue;
                }
                let speedup = base_per_call / var_per_call;
                fingerprints
                    .entry(ps.proc.clone())
                    .or_default()
                    .insert(ps.fingerprint);
                let r = per_proc_range
                    .entry(ps.proc.clone())
                    .or_insert((f64::INFINITY, 0.0));
                r.0 = r.0.min(speedup);
                r.1 = r.1.max(speedup);
                csv.push(vec![
                    ps.proc.clone(),
                    format!("{:016x}", ps.fingerprint),
                    format!("{:.6}", speedup),
                ]);
            }
        }
        csv.sort();
        let per_proc_counts: HashMap<String, usize> = fingerprints
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect();
        let mut rows = Vec::new();
        write_csv(
            &results_dir().join(format!("fig6_{}.csv", ms.model)),
            &["procedure", "fingerprint", "per_call_speedup"],
            &csv,
        );
        let share: HashMap<&str, f64> = {
            let total: f64 = ms.baseline_procs.iter().map(|(_, c, _)| c).sum();
            ms.baseline_procs
                .iter()
                .map(|(p, c, _)| (p.as_str(), c / total))
                .collect()
        };
        let mut procs: Vec<&String> = per_proc_counts.keys().collect();
        procs.sort();
        for p in procs {
            let (lo, hi) = per_proc_range[p];
            rows.push(vec![
                p.clone(),
                format!(
                    "{:.1}%",
                    100.0 * share.get(p.as_str()).copied().unwrap_or(0.0)
                ),
                per_proc_counts[p].to_string(),
                format!("{lo:.3}"),
                format!("{hi:.3}"),
            ]);
        }
        println!("\nFigure 6 — {} (per-procedure unique variants)", ms.model);
        println!(
            "{}",
            ascii_table(
                &[
                    "Procedure",
                    "% hotspot CPU",
                    "unique variants",
                    "min speedup",
                    "max speedup"
                ],
                &rows
            )
        );
    }
    println!("Paper reference: MPAS flux variants slow to 0.03-0.1x; ADCIRC jcg bimodal (<=1x and 3-10x);");
    println!("MOM6 flux_adjust variants slow to 0.01-0.1x; peror/pjac best ~1.1-1.2x.");
}
