//! The artifact-appendix validation checklists: the paper's own
//! reproduction criteria, checked programmatically after each regeneration.

use crate::cache::ModelSearch;
use prose_search::Status;

/// One validation property.
pub struct Check {
    pub name: String,
    pub passed: bool,
    pub detail: String,
}

/// Print a checklist and return whether all passed.
pub fn report(title: &str, checks: &[Check]) -> bool {
    println!("\nValidation — {title}");
    let mut all = true;
    for c in checks {
        let mark = if c.passed { "PASS" } else { "MISS" };
        println!("  [{mark}] {} ({})", c.name, c.detail);
        all &= c.passed;
    }
    all
}

fn check(name: &str, passed: bool, detail: String) -> Check {
    Check {
        name: name.into(),
        passed,
        detail,
    }
}

/// Completed variants (ran to the end, with measured speedup/error).
fn completed(ms: &ModelSearch) -> Vec<&prose_core::VariantRecord> {
    ms.variants
        .iter()
        .filter(|v| matches!(v.outcome.status, Status::Pass | Status::FailAccuracy))
        .collect()
}

/// MPAS-A §IV-B checklist (artifact appendix).
pub fn mpas_hotspot(ms: &ModelSearch) -> Vec<Check> {
    let s = ms.summary();
    let done = completed(ms);
    let cluster = |lo: f64, hi: f64, smin: f64, smax: f64| -> (usize, usize) {
        let members: Vec<_> = done
            .iter()
            .filter(|v| v.fraction_single >= lo && v.fraction_single < hi)
            .collect();
        let inside = members
            .iter()
            .filter(|v| v.outcome.speedup >= smin && v.outcome.speedup < smax)
            .count();
        (inside, members.len())
    };
    let (lo_in, lo_n) = cluster(0.0, 0.3, 0.0, 1.000001);
    let (hi_in, hi_n) = cluster(0.9, 1.01, 1.8, f64::INFINITY);
    let (mid_in, mid_n) = cluster(0.5, 0.9, 0.7, 1.8);
    vec![
        check(
            "best speedup ~1.9x",
            s.best_speedup > 1.7 && s.best_speedup < 2.3,
            format!("measured {:.2}", s.best_speedup),
        ),
        check(
            "most variants <30% 32-bit have <=1x speedup",
            lo_n == 0 || lo_in * 2 >= lo_n,
            format!("{lo_in}/{lo_n}"),
        ),
        check(
            "most variants >90% 32-bit have >=1.8x speedup",
            hi_n > 0 && hi_in * 2 >= hi_n,
            format!("{hi_in}/{hi_n}"),
        ),
        check(
            "variants 50-89% 32-bit have 0.7-1.8x speedup",
            mid_n == 0 || mid_in * 2 >= mid_n,
            format!("{mid_in}/{mid_n}"),
        ),
        check(
            "search found a 1-minimal variant",
            ms.search.one_minimal,
            format!(
                "remaining 64-bit: {}",
                ms.search.final_config.iter().filter(|b| !**b).count()
            ),
        ),
    ]
}

/// ADCIRC §IV-B checklist.
pub fn adcirc_hotspot(ms: &ModelSearch) -> Vec<Check> {
    let s = ms.summary();
    vec![
        check(
            "best speedup ~1.1x (small)",
            s.best_speedup > 1.0 && s.best_speedup < 1.5,
            format!("measured {:.2}", s.best_speedup),
        ),
        check(
            "no timeouts",
            s.timeout == 0,
            format!("{} timeouts", s.timeout),
        ),
    ]
}

/// MOM6 §IV-B checklist.
pub fn mom6_hotspot(ms: &ModelSearch) -> Vec<Check> {
    let s = ms.summary();
    let done = completed(ms);
    let near_uniform_slow = done
        .iter()
        .filter(|v| v.fraction_single > 0.98)
        .map(|v| v.outcome.speedup)
        .collect::<Vec<_>>();
    vec![
        check(
            "best speedup < 1.4x",
            s.best_speedup < 1.4,
            format!("measured {:.2}", s.best_speedup),
        ),
        check(
            ">98% 32-bit executable variants are slowdowns",
            near_uniform_slow.iter().all(|s| *s < 1.0) || near_uniform_slow.is_empty(),
            format!(
                "{:?}",
                near_uniform_slow
                    .iter()
                    .map(|x| format!("{x:.2}"))
                    .collect::<Vec<_>>()
            ),
        ),
    ]
}

/// MPAS-A §IV-C (whole-model) checklist.
pub fn mpas_whole_model(ms: &ModelSearch) -> Vec<Check> {
    let s = ms.summary();
    let done = completed(ms);
    let low = done
        .iter()
        .filter(|v| v.fraction_single > 0.9)
        .collect::<Vec<_>>();
    let low_slow = low.iter().filter(|v| v.outcome.speedup < 0.6).count();
    let high = done
        .iter()
        .filter(|v| v.fraction_single < 0.5)
        .collect::<Vec<_>>();
    let high_ok = high
        .iter()
        .filter(|v| v.outcome.speedup >= 0.75 && v.outcome.speedup <= 1.05)
        .count();
    vec![
        check(
            "best speedup < 1.1x",
            s.best_speedup < 1.1,
            format!("measured {:.2}", s.best_speedup),
        ),
        check(
            "most variants >90% 32-bit have <0.6x speedup",
            low.is_empty() || low_slow * 2 >= low.len(),
            format!("{low_slow}/{}", low.len()),
        ),
        check(
            "most variants <50% 32-bit have ~0.8-1x speedup",
            high.is_empty() || high_ok * 2 >= high.len(),
            format!("{high_ok}/{}", high.len()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_flags_misses() {
        let checks = vec![
            check("a", true, "ok".into()),
            check("b", false, "nope".into()),
        ];
        assert!(!report("test", &checks));
        let checks = vec![check("a", true, "ok".into())];
        assert!(report("test", &checks));
    }
}
