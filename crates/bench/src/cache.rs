//! Search-result caching: the expensive delta-debugging runs execute once
//! and every figure/table binary reuses them.
//!
//! Two layers cooperate here. `searches.json` caches whole finished
//! searches (coarse: hit or miss). Underneath it, each search appends a
//! trial journal (`trials_<model>.jsonl` in the same results directory),
//! which memoizes *individual variant evaluations* — so even when
//! `searches.json` is deleted or a search is interrupted, a re-run replays
//! already-measured configurations from the journal instead of re-running
//! the interpreter. `prose-report` summarizes those journals.

use crate::{results_dir, search_scope, variant_budget};
use prose_core::evaluator::VariantRecord;
use prose_core::tuner::{tune, PerfScope, TuningTask};
use prose_models::ModelSize;
use prose_search::{SearchResult, StatusSummary};
use prose_trace::Counters;
use serde::{Deserialize, Serialize};

/// Everything a figure needs from one model's search.
#[derive(Debug, Serialize, Deserialize)]
pub struct ModelSearch {
    pub model: String,
    /// Paths of the atoms, aligned with config bit positions.
    pub atom_paths: Vec<String>,
    pub baseline_hotspot_cycles: f64,
    pub baseline_total_cycles: f64,
    pub hotspot_share: f64,
    /// Baseline per-procedure (cycles, calls) for the hotspot procedures.
    pub baseline_procs: Vec<(String, f64, u64)>,
    pub search: SearchResult,
    pub variants: Vec<VariantRecord>,
    pub error_threshold: f64,
    /// Wall-clock seconds the search took on this machine.
    pub wall_seconds: f64,
    /// Observability counters from the tuning run (cache hits/misses,
    /// search memo hits, interpreter op totals). Defaults to empty when
    /// loading caches written before journaling existed.
    #[serde(default)]
    pub metrics: Counters,
}

impl ModelSearch {
    pub fn summary(&self) -> StatusSummary {
        self.search.status_summary()
    }
}

/// Run (or load) the three hotspot-guided case-study searches.
pub fn hotspot_searches(size: ModelSize) -> Vec<ModelSearch> {
    load_or_run("searches.json", || {
        crate::case_study_models(size)
            .into_iter()
            .map(|spec| run_search(&spec.name.clone(), spec, search_scope(), size))
            .collect()
    })
}

/// Run (or load) the whole-model-guided MPAS-A search (Figure 7).
pub fn whole_model_search(size: ModelSize) -> ModelSearch {
    let mut v = load_or_run("search_whole_model.json", || {
        vec![run_search(
            "mpas_a",
            prose_models::mpas::mpas_a(size),
            PerfScope::WholeModel,
            size,
        )]
    });
    v.remove(0)
}

fn run_search(
    name: &str,
    spec: prose_core::tuner::ModelSpec,
    scope: PerfScope,
    _size: ModelSize,
) -> ModelSearch {
    eprintln!("[prose-bench] running {name} search ({scope:?})...");
    let model = spec.load().expect("model loads");
    let mut task: TuningTask = model.task(scope, 20_240_417).expect("task builds");
    task.max_variants = variant_budget(name);
    task.journal = Some(results_dir().join(format!("trials_{name}.jsonl")));
    task.variant_path = crate::variant_path();
    task.crosscheck = crate::crosscheck();
    task.workers = crate::workers();
    task.deadline_ms = crate::deadline_ms();
    task.retry_attempts = crate::retry_attempts();
    let t0 = std::time::Instant::now();
    let outcome = tune(&task).expect("baseline runs");
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "[prose-bench]   {} variants in {:.1}s, best speedup {:.2}",
        outcome.search.trace.len(),
        wall,
        outcome.search.status_summary().best_speedup
    );
    eprintln!(
        "[prose-bench]   journal {}: {} preloaded, {} cache hits, {} evaluated",
        task.journal.as_ref().expect("set above").display(),
        outcome.metrics.get("cache_preloaded"),
        outcome.metrics.get("cache_hits"),
        outcome.metrics.get("cache_misses")
    );
    let baseline_procs = {
        // Re-run the baseline cheaply to list per-proc baselines.
        let eval = prose_core::DynamicEvaluator::new(&task).expect("baseline");
        model
            .spec
            .target_procs
            .iter()
            .filter_map(|p| {
                eval.baseline
                    .outcome
                    .timers
                    .get(p)
                    .map(|t| (p.clone(), t.cycles, t.calls))
            })
            .collect()
    };
    ModelSearch {
        model: name.to_string(),
        atom_paths: model
            .atoms
            .iter()
            .map(|a| model.index.fp_var_path(*a))
            .collect(),
        baseline_hotspot_cycles: outcome.baseline_hotspot_cycles,
        baseline_total_cycles: outcome.baseline_total_cycles,
        hotspot_share: outcome.hotspot_share,
        baseline_procs,
        search: outcome.search,
        variants: outcome.variants,
        error_threshold: task.error_threshold,
        wall_seconds: wall,
        metrics: outcome.metrics,
    }
}

fn load_or_run<T, F>(file: &str, run: F) -> T
where
    T: Serialize + for<'de> Deserialize<'de>,
    F: FnOnce() -> T,
{
    let path = results_dir().join(file);
    if path.exists() {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(v) = serde_json::from_str(&text) {
                eprintln!("[prose-bench] loaded cached {}", path.display());
                return v;
            }
        }
    }
    let v = run();
    std::fs::write(&path, serde_json::to_string(&v).expect("serialize")).expect("write cache");
    eprintln!("[prose-bench] wrote {}", path.display());
    v
}
