//! ASCII tables and CSV emission.

use std::fmt::Write as _;
use std::path::Path;

/// Render an ASCII table with a header row.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Write a CSV file (header + rows) into the results dir.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) {
    let mut text = headers.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// Format a float compactly for tables.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_aligns_columns() {
        let t = ascii_table(
            &["Model", "Speedup"],
            &[
                vec!["mpas_a".into(), "1.95".into()],
                vec!["adcirc".into(), "1.12".into()],
            ],
        );
        assert!(t.contains("| Model "));
        assert!(t.contains("| mpas_a "));
        let lines: Vec<&str> = t.lines().collect();
        let lens: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(lens.len(), 1, "all lines same width:\n{t}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.953), "1.953");
        assert_eq!(f(1.4e2), "1.400e2");
        assert_eq!(f(0.0005), "5.000e-4");
    }
}
