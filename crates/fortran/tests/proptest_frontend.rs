//! Property tests for the Fortran front end: round trips over a structured
//! AST generator, and lexer total-ness over adversarial byte soup.

use proptest::prelude::*;
use prose_fortran::ast::*;
use prose_fortran::span::Span;
use prose_fortran::{analyze, lexer, parse_program, unparse};

// ---------- structured generators over the AST itself --------------------

fn arb_name() -> impl Strategy<Value = String> {
    // Avoid statement-head keywords so generated statements stay
    // unambiguous at parse time; everything else is fair game (Fortran has
    // no reserved words, but our pretty-printer writes canonical forms).
    "[a-z][a-z0-9_]{0,6}".prop_filter("no keywords", |s| {
        ![
            "if",
            "do",
            "end",
            "call",
            "return",
            "exit",
            "cycle",
            "stop",
            "print",
            "else",
            "elseif",
            "endif",
            "enddo",
            "allocate",
            "deallocate",
            "module",
            "contains",
            "program",
            "use",
            "implicit",
            "real",
            "integer",
            "logical",
            "character",
            "double",
            "then",
            "while",
            "function",
            "subroutine",
            "result",
            "only",
        ]
        .contains(&s.as_str())
    })
}

/// Finite, round-trippable f64 values (positive; negation is exercised
/// through unary operators so literal signs stay canonical).
fn arb_real() -> impl Strategy<Value = f64> {
    prop_oneof![
        (1u32..9999u32).prop_map(|n| n as f64 / 128.0),
        (1u32..999u32).prop_map(|n| n as f64 * 1024.0),
        Just(0.0),
        Just(0.1),
        Just(std::f64::consts::PI),
    ]
}

fn arb_expr(vars: Vec<String>) -> impl Strategy<Value = Expr> {
    let leaf = {
        let vars = vars.clone();
        prop_oneof![
            arb_real().prop_map(|v| Expr::RealLit {
                value: v,
                precision: FpPrecision::Double
            }),
            arb_real().prop_map(|v| Expr::RealLit {
                value: v,
                precision: FpPrecision::Single
            }),
            (0u32..1000).prop_map(|v| Expr::IntLit(v as i64)),
            proptest::sample::select(vars).prop_map(Expr::Var),
        ]
    };
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Pow)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::un(UnOp::Neg, e)),
            inner.clone().prop_map(|e| Expr::NameRef {
                name: "abs".into(),
                args: vec![e]
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::NameRef {
                name: "max".into(),
                args: vec![a, b]
            }),
        ]
    })
}

fn arb_stmt(vars: Vec<String>) -> impl Strategy<Value = Stmt> {
    let assign = {
        let vars = vars.clone();
        (proptest::sample::select(vars.clone()), arb_expr(vars)).prop_map(|(t, e)| Stmt::Assign {
            target: LValue::Var(t),
            value: e,
            span: Span::default(),
        })
    };
    let leaf = assign;
    leaf.prop_recursive(2, 12, 3, move |inner| {
        let vars2 = vars.clone();
        let vars3 = vars2.clone();
        prop_oneof![
            // if / else
            (
                arb_expr(vars2.clone()).prop_map(|e| Expr::bin(
                    BinOp::Lt,
                    e,
                    Expr::RealLit {
                        value: 1.0,
                        precision: FpPrecision::Double
                    }
                )),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::option::of(proptest::collection::vec(inner.clone(), 1..3)),
            )
                .prop_map(|(c, body, els)| Stmt::If {
                    arms: vec![(c, body)],
                    else_body: els,
                    span: Span::default(),
                }),
            // counted do over a fresh small range
            (proptest::collection::vec(inner, 1..3)).prop_map(move |body| Stmt::Do {
                var: "i".into(),
                start: Expr::IntLit(1),
                end: Expr::IntLit(3),
                step: None,
                body,
                span: Span::default(),
            }),
            (arb_expr(vars3)).prop_map(|e| Stmt::Print {
                items: vec![e],
                span: Span::default()
            }),
        ]
    })
}

fn arb_program_ast() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_name(), 2..5),
        proptest::collection::vec(arb_name(), 1..3),
    )
        .prop_flat_map(|(mut vars, extra)| {
            vars.extend(extra);
            vars.sort();
            vars.dedup();
            vars.retain(|v| v != "i"); // reserved for the loop counter
            if vars.is_empty() {
                vars.push("zz".into());
            }
            let decls = vec![
                Declaration {
                    type_spec: TypeSpec::Real(FpPrecision::Double),
                    attrs: vec![],
                    entities: vars
                        .iter()
                        .map(|v| EntityDecl {
                            name: v.clone(),
                            dims: None,
                            init: None,
                        })
                        .collect(),
                    span: Span::default(),
                },
                Declaration {
                    type_spec: TypeSpec::Integer,
                    attrs: vec![],
                    entities: vec![EntityDecl {
                        name: "i".into(),
                        dims: None,
                        init: None,
                    }],
                    span: Span::default(),
                },
            ];
            proptest::collection::vec(arb_stmt(vars), 1..8).prop_map(move |body| Program {
                modules: vec![],
                main: Some(MainProgram {
                    name: "t".into(),
                    uses: vec![],
                    decls: decls.clone(),
                    body,
                    procedures: vec![],
                    span: Span::default(),
                }),
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core front-end contract: unparse(ast) re-parses to the same AST,
    /// for ASTs built directly (not via the parser), covering operator
    /// nesting, literal formats, and statement structures the model
    /// sources may never exercise.
    #[test]
    fn ast_unparse_parse_round_trip(p in arb_program_ast()) {
        let text = unparse(&p);
        let reparsed = parse_program(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(p, reparsed, "{}", text);
    }

    /// Generated programs pass semantic analysis (they are closed over
    /// their declared variables by construction).
    #[test]
    fn generated_programs_analyze(p in arb_program_ast()) {
        analyze(&p).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// The lexer is total over printable-ASCII soup: it either tokenizes or
    /// returns a structured error, but never panics, and token lines are
    /// monotonically non-decreasing.
    #[test]
    fn lexer_never_panics(s in "[ -~\n]{0,200}") {
        if let Ok(tokens) = lexer::lex(&s) {
            let mut last = 0;
            for t in &tokens {
                prop_assert!(t.line >= last);
                last = t.line;
            }
        }
    }

    /// Lexing the unparse of a valid program always succeeds.
    #[test]
    fn unparsed_text_always_lexes(p in arb_program_ast()) {
        let text = unparse(&p);
        prop_assert!(lexer::lex(&text).is_ok());
    }
}
