//! Pinned regression cases for the front end.
//!
//! These reconstruct inputs that property testing once surfaced, as plain
//! unit tests. A proptest-regressions seed file is only replayable while
//! the generator can still produce the saved case; once the generator
//! changes (e.g. `arb_program_ast` now reserves `i` for loop counters and
//! never declares it twice), stale seeds fail for the wrong reason. Unit
//! tests keep the interesting input alive independent of the generator.

use prose_fortran::ast::*;
use prose_fortran::span::Span;
use prose_fortran::{analyze, parse_program, unparse};

/// The shrunken program a historical proptest seed recorded: an if/else
/// whose else-arm assigns from `max(0.0078125d0, 1 + (-0.0))`, with `i`
/// declared both `real(double)` and `integer`.
fn historical_case() -> Program {
    let decls = vec![
        Declaration {
            type_spec: TypeSpec::Real(FpPrecision::Double),
            attrs: vec![],
            entities: ["cd9_0", "e_", "i", "zo"]
                .iter()
                .map(|n| EntityDecl {
                    name: (*n).into(),
                    dims: None,
                    init: None,
                })
                .collect(),
            span: Span::default(),
        },
        Declaration {
            type_spec: TypeSpec::Integer,
            attrs: vec![],
            entities: vec![EntityDecl {
                name: "i".into(),
                dims: None,
                init: None,
            }],
            span: Span::default(),
        },
    ];
    let lit = |v: f64| Expr::RealLit {
        value: v,
        precision: FpPrecision::Double,
    };
    let body = vec![Stmt::If {
        arms: vec![(
            Expr::bin(BinOp::Lt, lit(0.0078125), lit(1.0)),
            vec![Stmt::Assign {
                target: LValue::Var("cd9_0".into()),
                value: lit(0.0078125),
                span: Span::default(),
            }],
        )],
        else_body: Some(vec![Stmt::Assign {
            target: LValue::Var("cd9_0".into()),
            value: Expr::NameRef {
                name: "max".into(),
                args: vec![
                    lit(0.0078125),
                    Expr::bin(
                        BinOp::Add,
                        Expr::IntLit(1),
                        Expr::un(
                            UnOp::Neg,
                            Expr::RealLit {
                                value: 0.0,
                                precision: FpPrecision::Single,
                            },
                        ),
                    ),
                ],
            },
            span: Span::default(),
        }]),
        span: Span::default(),
    }];
    Program {
        modules: vec![],
        main: Some(MainProgram {
            name: "t".into(),
            uses: vec![],
            decls,
            body,
            procedures: vec![],
            span: Span::default(),
        }),
    }
}

/// The syntactic round trip must survive this shape: nested intrinsic
/// call, mixed int/real arithmetic, negated zero single-precision
/// literal, if/else — even though the program is semantically invalid.
#[test]
fn historical_case_unparse_parse_round_trips() {
    let p = historical_case();
    let text = unparse(&p);
    let reparsed = parse_program(&text).expect("unparsed text re-parses");
    assert_eq!(p, reparsed, "round trip diverged for:\n{text}");
}

/// Semantic analysis must keep rejecting the duplicate declaration of
/// `i`, which is exactly why this case could not stay a proptest seed.
#[test]
fn historical_case_is_rejected_by_sema() {
    let e = analyze(&historical_case()).expect_err("duplicate `i` must be rejected");
    assert!(
        e.to_string().contains("duplicate declaration of `i`"),
        "unexpected error: {e}"
    );
}
