//! Error types shared by the lexer, parser, and semantic analyzer.

use std::fmt;

/// Result alias for all front-end operations.
pub type Result<T> = std::result::Result<T, FortranError>;

/// An error produced while lexing, parsing, or analyzing Fortran source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FortranError {
    /// A character or malformed literal the lexer cannot tokenize.
    Lex { line: u32, message: String },
    /// A token sequence the parser cannot derive.
    Parse { line: u32, message: String },
    /// A name-resolution or type error found during semantic analysis.
    Sema { line: u32, message: String },
}

impl FortranError {
    pub fn lex(line: u32, message: impl Into<String>) -> Self {
        FortranError::Lex {
            line,
            message: message.into(),
        }
    }

    pub fn parse(line: u32, message: impl Into<String>) -> Self {
        FortranError::Parse {
            line,
            message: message.into(),
        }
    }

    pub fn sema(line: u32, message: impl Into<String>) -> Self {
        FortranError::Sema {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line the error refers to.
    pub fn line(&self) -> u32 {
        match self {
            FortranError::Lex { line, .. }
            | FortranError::Parse { line, .. }
            | FortranError::Sema { line, .. } => *line,
        }
    }
}

impl fmt::Display for FortranError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FortranError::Lex { line, message } => {
                write!(f, "lex error at line {line}: {message}")
            }
            FortranError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FortranError::Sema { line, message } => {
                write!(f, "semantic error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for FortranError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_line_and_message() {
        let e = FortranError::parse(42, "expected `::`");
        assert_eq!(e.to_string(), "parse error at line 42: expected `::`");
        assert_eq!(e.line(), 42);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FortranError::lex(1, "x"), FortranError::lex(1, "x"));
        assert_ne!(FortranError::lex(1, "x"), FortranError::sema(1, "x"));
    }
}
